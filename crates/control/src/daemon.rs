//! The PowerDial daemon: one control process driving many applications.
//!
//! The paper's server-consolidation experiments run *many* instrumented
//! applications under a single PowerDial controller. This module provides
//! that multi-application runtime:
//!
//! ```text
//!  app 0 ──beat──► SPSC ring ─┐
//!  app 1 ──beat──► SPSC ring ─┤  shard 0 (worker thread) ─┐
//!  app 2 ──beat──► SPSC ring ─┼─►                         ├─► tick()
//!  app 3 ──beat──► SPSC ring ─┤  shard 1 (worker thread) ─┘
//!     ⋮                       ⋮
//! ```
//!
//! * Each registered application gets a lock-free
//!   [`powerdial_heartbeats::channel`] SPSC ring; the application side
//!   ([`AppHandle`]) pushes one `Copy` beat record per unit of work —
//!   wait-free, allocation-free, no syscalls.
//! * Applications are **sharded** across worker threads round-robin (the
//!   first [`DaemonConfig::inline_apps`] land on the caller's inline shard,
//!   so tiny fleets skip the cross-thread round trip entirely). Once per
//!   actuation quantum ([`PowerDialDaemon::tick`]) every shard drains each
//!   of its channels in one batch into a reused scratch buffer and steps
//!   the existing O(1) [`PowerDialRuntime`] through the **batched decision
//!   kernel**, so control decisions are batched per quantum exactly as the
//!   paper's actuator prescribes.
//! * Decisions flow back through a handful of per-app atomics (latest knob
//!   setting, gain, achieved speedup, expected QoS loss), read by the
//!   application without any lock.
//!
//! # The batched decision kernel
//!
//! The runtime's decide-before-observe ordering only *consumes* an
//! observed rate at a quantum boundary (`beat_in_quantum == 0`); interior
//! beats walk the already-planned per-beat schedule and ignore their
//! observation. [`DaemonShard::run_quantum`] exploits that: boundary beats
//! are stepped individually, and each maximal run of interior beats is
//! folded in one pass — [`PowerDialRuntime::advance_in_quantum`] skips the
//! schedule walk, `SlidingWindow::push_slice` folds the span's latencies.
//! The result is **bit-identical** to the per-beat walk (which
//! [`DaemonShard::run_quantum_with`] and [`naive::SerialMutexDaemon`]
//! preserve); the `daemon_batch_equivalence` suite pins the relationship
//! under ragged drains, idle-skip, and the drain cap.
//!
//! # Fairness: the per-quantum drain cap
//!
//! With [`DaemonConfig::drain_cap`] set, a shard drains at most that many
//! beats from one app per quantum; the rest stay in the ring for the next
//! quantum. One flooded ring therefore delays its shard-mates by a bounded
//! amount of work instead of an entire backlog. Beats are never dropped by
//! the cap — they are deferred (the ring's own backpressure still applies
//! to the producer). `0` disables the cap.
//!
//! # Idle channels: the silent-streak skip
//!
//! With [`DaemonConfig::idle_skip_limit`] set to `k`, an app whose drain
//! has come up empty `k` quanta in a row is polled only every `k + 1`
//! quanta afterwards (the skipped quanta never touch the app's transport —
//! no cache line, no shm page). The first non-empty drain resets the
//! streak. Worst-case added decision latency for a waking app is `k`
//! quanta; `0` (the default) disables skipping, which is the right call
//! whenever bounded reaction latency matters more than idle cost (e.g. the
//! chaos harness's recovery-latency assertions).
//!
//! # The spin→yield→park ladder
//!
//! Driver loops that tick continuously (the supervisor's serve loop, a
//! dedicated daemon process) burn a core even when every channel is idle.
//! [`IdleLadder`] encodes the standard escalation: a few empty iterations
//! **spin** (lowest wake latency), further emptiness **yields** the core,
//! and a persistently idle daemon **parks** in bounded, exponentially
//! growing sleeps (capped at 1 ms so a waking fleet is never more than a
//! millisecond away). Any work resets the ladder to spinning.
//!
//! The per-quantum drain loop ([`DaemonShard::run_quantum`]) is
//! steady-state allocation-free — the `no_alloc` integration test steps a
//! shard under a counting allocator to prove it — and a shard whose
//! scratch buffer was grown by a flood shrinks it back on an amortized
//! cold path (every [`SHRINK_EPOCH_QUANTA`] quanta) once the flood
//! subsides. The serial, mutex-guarded baseline the benchmarks compare
//! against is [`naive::SerialMutexDaemon`].
//!
//! With `workers: 0` the daemon runs **inline**: no threads are spawned and
//! [`PowerDialDaemon::tick`] processes every shard on the calling thread.
//! This mode is deterministic (used by the consolidation experiments and
//! the equivalence tests); threaded mode has the same per-app semantics but
//! interleaves beat arrival with draining.
//!
//! # Fault containment and self-healing
//!
//! The daemon extends the paper's "keep applications responsive while the
//! environment misbehaves" guarantee to its own tenants. Faults are
//! contained at two nested perimeters, each with an explicit state
//! machine:
//!
//! ```text
//!  app:    Healthy ──panic / poisoned window──► Quarantined ──reap──► Evicted
//!            │  ▲                                   │
//!            │  └──── (never: quarantine is         └─ channel parked,
//!            │         one-way until eviction)         safe-state published
//!            ▼
//!          served every quantum
//!
//!  shard:  Live ──panic escaping containment / injected kill──► Dead
//!            ▲                                                    │
//!            └──────── respawn_dead(): fresh thread, ◄────────────┘
//!                      surviving slots migrated intact
//!                      (state: Respawned ≡ Live)
//! ```
//!
//! * **Per-app isolation.** Each app's per-quantum drain+decision step
//!   runs under a [`std::panic::catch_unwind`] guard (one guard per fleet
//!   *sweep*, with a cursor naming the slot mid-step, so blame stays
//!   per-app while the hot path stays batched and pays no per-slot
//!   landing pad). A panic, or a typed
//!   [`powerdial_heartbeats::WindowOverflow`] from a poisoned latency
//!   stream, blames exactly one app: it transitions to
//!   [`QuarantineReason`]-typed quarantine — its channel is parked (never
//!   drained or stepped again), its decision block publishes the
//!   configured safe state ([`DaemonConfig::safe_point`]) so the client
//!   ladder degrades cleanly, and the shard keeps serving its neighbors
//!   in the same quantum. Quarantine is one-way: the slot stays parked
//!   until [`PowerDialDaemon::unregister`]/[`PowerDialDaemon::reap_dead`]
//!   evicts it (a reaper treats a quarantined app's undrained backlog as
//!   forfeit — it would never be processed anyway).
//! * **Shard resurrection.** When a worker thread does die (a panic
//!   escaping containment, an injected kill), the facade marks the shard
//!   dead — [`PowerDialDaemon::try_tick`] surfaces the death once as
//!   [`ControlError::ShardDead`], registration routes around the corpse —
//!   and [`PowerDialDaemon::respawn_dead`] resurrects it: the worker's
//!   shard state is recovered through the poisoned mutex, the slot that
//!   was mid-step (if any) is quarantined, and a fresh thread is spawned
//!   *at the same shard index* with every surviving app's
//!   `AppShared`/segment binding migrated intact — runtimes, windows, and
//!   undrained transports included, so decisions resume bit-identically
//!   and no beat is lost beyond channel capacity. (The PR 6 shm
//!   warm-start block stays current throughout and remains the recovery
//!   path for *daemon-process* death, where in-heap state cannot
//!   survive.) Incidents are counted on the facade and traced as
//!   `shard_dead`/`shard_respawned`/`migrated` records.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use powerdial_heartbeats::channel::{beat_channel, BeatConsumer, BeatSample, BeatTransport};
use powerdial_heartbeats::shm::{
    DecisionRead, ShmConsumer, ShmDecision, ShmPeerProbe, ShmWarmState, WarmRead,
};
use powerdial_heartbeats::telemetry::{
    DecisionTraceRecord, DecisionTraceRing, LatencyHistogram, TraceReason,
};
use powerdial_heartbeats::{BeatProducer, HeartbeatTag, SlidingWindow, Timestamp, WindowOverflow};
use powerdial_knobs::{KnobTable, PointIdx};

use crate::error::ControlError;
use crate::runtime::{IndexedDecision, PowerDialRuntime, RuntimeConfig};
use crate::telemetry::{
    AppTelemetryReport, IncidentCounts, ShardTelemetry, TelemetrySnapshot, QOS_PPM_SCALE,
};

/// Identifier of an application registered with a [`PowerDialDaemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(u64);

impl AppId {
    /// Returns the raw identifier value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value (for the telemetry tests).
    #[cfg(test)]
    pub(crate) const fn from_raw(value: u64) -> Self {
        AppId(value)
    }
}

/// Configuration of a [`PowerDialDaemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Worker threads to shard applications across. `0` runs the daemon
    /// inline: ticks process every shard on the calling thread.
    pub workers: usize,
    /// Capacity, in beat records, of each application's SPSC channel.
    /// Should comfortably exceed the number of beats an application emits
    /// per actuation quantum; beats beyond it are rejected (backpressure).
    pub channel_capacity: usize,
    /// Sliding-window size, in heartbeats, for the daemon-side rate
    /// estimate fed to each application's controller (the paper uses 20).
    pub window_size: usize,
    /// In threaded mode, the first `inline_apps` registered applications
    /// are placed on the caller's inline shard instead of a worker, so a
    /// small fleet pays zero cross-thread round trips per tick. Decisions
    /// are placement-independent (the shards run identical control code);
    /// only which thread does the work changes. Ignored in inline mode
    /// (`workers: 0`), where everything is inline anyway.
    pub inline_apps: usize,
    /// Silent-streak threshold for skipping idle channels: after this many
    /// consecutive empty drains an app is polled only every
    /// `idle_skip_limit + 1` quanta (worst-case added decision latency for
    /// a waking app: `idle_skip_limit` quanta). `0` disables skipping.
    pub idle_skip_limit: u32,
    /// Maximum beats drained from one app per quantum (the fairness cap);
    /// excess beats stay queued for the next quantum. `0` means uncapped.
    pub drain_cap: usize,
    /// Telemetry instrumentation (on by default): per-app beat-latency
    /// and QoS-loss histograms recorded on the drain path (allocation-
    /// free; see [`powerdial_heartbeats::telemetry`]) plus a per-shard
    /// decision trace, exported off the drain path by
    /// [`PowerDialDaemon::telemetry_snapshot`]. Disable only when the
    /// last few ns/beat matter more than observability.
    pub telemetry: bool,
    /// Capacity, in records, of each shard's [`DecisionTraceRing`].
    /// Ignored (no ring) when `telemetry` is off; `0` keeps histograms
    /// but disables tracing.
    pub trace_capacity: usize,
    /// Knob-table point index published for a quarantined application —
    /// the configured safe state its clients degrade to. The default `0`
    /// is the baseline (speedup 1.0, zero QoS loss) point of every table
    /// the calibrator emits; an out-of-range index is clamped to the
    /// app's table at quarantine time.
    pub safe_point: u32,
}

impl DaemonConfig {
    /// Default channel capacity: several quanta of the paper's default
    /// 20-beat quantum.
    pub const DEFAULT_CHANNEL_CAPACITY: usize = 256;

    /// Default [`DaemonConfig::inline_apps`]: fleets up to this size never
    /// pay a cross-thread round trip per tick.
    pub const DEFAULT_INLINE_APPS: usize = 4;

    /// Default [`DaemonConfig::trace_capacity`]: a few dozen quanta of
    /// history per shard at fleet scale, a few KiB of fixed storage.
    pub const DEFAULT_TRACE_CAPACITY: usize = 256;

    /// A configuration with `workers` worker threads and the default
    /// channel capacity and window size.
    pub fn with_workers(workers: usize) -> Self {
        DaemonConfig {
            workers,
            ..DaemonConfig::default()
        }
    }

    /// Validates the configuration.
    fn validate(&self) -> Result<(), ControlError> {
        if self.channel_capacity == 0 {
            return Err(ControlError::ZeroChannelCapacity);
        }
        if self.window_size == 0 {
            return Err(ControlError::ZeroWindowSize);
        }
        Ok(())
    }
}

impl Default for DaemonConfig {
    /// One worker per available core (capped at 8 — the per-quantum work is
    /// memory-bound well before that), default channel capacity, and the
    /// paper's 20-beat window.
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        DaemonConfig {
            workers,
            channel_capacity: DaemonConfig::DEFAULT_CHANNEL_CAPACITY,
            window_size: 20,
            inline_apps: DaemonConfig::DEFAULT_INLINE_APPS,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        }
    }
}

/// Why an application was quarantined (the typed `Quarantined { reason }`
/// state of the fault-containment machine — see the module docs).
///
/// Readable lock-free from the app side via
/// [`DecisionView::quarantine_reason`]/[`AppHandle::quarantine_reason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuarantineReason {
    /// A panic unwound out of the app's drain+decision step and was
    /// caught by the per-app containment guard.
    Panic,
    /// The app's latency stream overflowed its sliding window's summed
    /// nanoseconds ([`powerdial_heartbeats::WindowOverflow`]) — a poison
    /// producer, not an organic workload.
    WindowOverflow,
}

impl QuarantineReason {
    /// Stable lowercase name (used in diagnostics).
    pub const fn as_str(self) -> &'static str {
        match self {
            QuarantineReason::Panic => "panic",
            QuarantineReason::WindowOverflow => "window_overflow",
        }
    }

    /// Encoding stored in the shared atomic (0 = healthy).
    const fn code(self) -> u64 {
        match self {
            QuarantineReason::Panic => 1,
            QuarantineReason::WindowOverflow => 2,
        }
    }

    const fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(QuarantineReason::Panic),
            2 => Some(QuarantineReason::WindowOverflow),
            _ => None,
        }
    }
}

/// Decision state shared between a daemon shard and an [`AppHandle`],
/// published through atomics so neither side ever blocks the other.
#[derive(Debug, Default)]
struct AppShared {
    /// `(decision_count << 32) | point_idx`. A single atomic so the "is
    /// there a decision yet" flag and the setting index can never tear;
    /// the count wraps at 2³² (it only signals freshness/presence).
    decision: AtomicU64,
    /// Bit pattern of the latest decision's knob gain (f64).
    gain_bits: AtomicU64,
    /// Bit pattern of the latest quantum's achieved speedup (f64).
    achieved_speedup_bits: AtomicU64,
    /// Bit pattern of the latest quantum's expected QoS loss (f64).
    qos_loss_bits: AtomicU64,
    /// Total beats the daemon has processed for this application.
    beats_processed: AtomicU64,
    /// [`QuarantineReason::code`] once the app is quarantined (0 =
    /// healthy). Written exactly once, by the owning shard.
    quarantined: AtomicU64,
}

impl AppShared {
    fn latest_point(&self) -> Option<PointIdx> {
        let packed = self.decision.load(Ordering::Acquire);
        if packed >> 32 == 0 {
            None
        } else {
            Some(PointIdx::new(packed as u32))
        }
    }

    fn latest_gain(&self) -> Option<f64> {
        self.latest_point()
            .map(|_| f64::from_bits(self.gain_bits.load(Ordering::Acquire)))
    }

    fn achieved_speedup(&self) -> Option<f64> {
        self.latest_point()
            .map(|_| f64::from_bits(self.achieved_speedup_bits.load(Ordering::Acquire)))
    }

    fn expected_qos_loss(&self) -> Option<f64> {
        self.latest_point()
            .map(|_| f64::from_bits(self.qos_loss_bits.load(Ordering::Acquire)))
    }

    fn beats_processed(&self) -> u64 {
        self.beats_processed.load(Ordering::Acquire)
    }

    fn quarantine_reason(&self) -> Option<QuarantineReason> {
        QuarantineReason::from_code(self.quarantined.load(Ordering::Acquire))
    }
}

/// A read-only view of the daemon's latest control decision for one
/// application.
///
/// This is the decision-side half of an [`AppHandle`], separated so
/// shm-registered applications ([`PowerDialDaemon::register_shm`]) — whose
/// beat *producer* lives in another process — still expose the daemon's
/// decisions to in-process observers (experiment drivers, benchmarks,
/// equivalence tests). All reads are lock-free atomic loads.
#[derive(Debug, Clone)]
pub struct DecisionView {
    id: AppId,
    shared: Arc<AppShared>,
}

impl DecisionView {
    /// The application's daemon-assigned identifier.
    pub fn id(&self) -> AppId {
        self.id
    }

    /// Index (into the app's knob table) of the latest decided setting, or
    /// `None` before the daemon has processed any beat.
    pub fn latest_point(&self) -> Option<PointIdx> {
        self.shared.latest_point()
    }

    /// The latest decided knob gain (instantaneous speedup), or `None`
    /// before the first decision.
    pub fn latest_gain(&self) -> Option<f64> {
        self.shared.latest_gain()
    }

    /// The achieved (time-averaged) speedup of the most recent quantum the
    /// daemon planned for this app, or `None` before the first decision.
    pub fn achieved_speedup(&self) -> Option<f64> {
        self.shared.achieved_speedup()
    }

    /// The expected QoS loss of the most recent planned quantum, or `None`
    /// before the first decision.
    pub fn expected_qos_loss(&self) -> Option<f64> {
        self.shared.expected_qos_loss()
    }

    /// Total beats the daemon has processed for this application.
    pub fn beats_processed(&self) -> u64 {
        self.shared.beats_processed()
    }

    /// Why this application was quarantined, or `None` while it is
    /// healthy. Once `Some`, the decision accessors serve the configured
    /// safe state and no further beats will ever be processed.
    pub fn quarantine_reason(&self) -> Option<QuarantineReason> {
        self.shared.quarantine_reason()
    }
}

/// The application side of a daemon registration: push beats in, read the
/// latest control decision out. Both directions are lock-free.
///
/// The handle is `Send` but not `Sync`/`Clone` — it owns the single
/// producer half of the app's SPSC channel, so exactly one thread emits
/// beats (move the handle to hand it off).
#[derive(Debug)]
pub struct AppHandle {
    id: AppId,
    producer: BeatProducer,
    shared: Arc<AppShared>,
    next_tag: HeartbeatTag,
    last_timestamp: Option<Timestamp>,
}

impl AppHandle {
    /// The application's daemon-assigned identifier.
    pub fn id(&self) -> AppId {
        self.id
    }

    /// Emits one heartbeat at `now`: builds the beat record (sequence tag
    /// and latency since the previous beat) and pushes it onto the
    /// channel. Wait-free and allocation-free.
    ///
    /// # Errors
    ///
    /// Returns the rejected record when the channel is full. The beat
    /// still counts for latency bookkeeping (the next accepted beat's
    /// latency spans the gap), so a drop degrades the rate estimate
    /// smoothly instead of corrupting it.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous beat.
    pub fn beat(&mut self, now: Timestamp) -> Result<(), BeatSample> {
        let latency = match self.last_timestamp {
            Some(last) => now - last,
            None => powerdial_heartbeats::TimestampDelta::ZERO,
        };
        let sample = BeatSample {
            tag: self.next_tag,
            timestamp: now,
            latency,
        };
        self.next_tag = self.next_tag.next();
        self.last_timestamp = Some(now);
        self.producer.try_push(sample)
    }

    /// Pushes an already-built beat record (e.g. one derived from a
    /// [`powerdial_heartbeats::HeartbeatRecord`] via
    /// [`BeatSample::from_record`]) without touching the handle's own
    /// tag/timestamp bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns the rejected record when the channel is full.
    pub fn push_sample(&mut self, sample: BeatSample) -> Result<(), BeatSample> {
        self.producer.try_push(sample)
    }

    /// Index (into the app's knob table) of the latest decided setting, or
    /// `None` before the daemon has processed any beat.
    pub fn latest_point(&self) -> Option<PointIdx> {
        self.shared.latest_point()
    }

    /// The latest decided knob gain (instantaneous speedup), or `None`
    /// before the first decision.
    pub fn latest_gain(&self) -> Option<f64> {
        self.shared.latest_gain()
    }

    /// The achieved (time-averaged) speedup of the most recent quantum the
    /// daemon planned for this app, or `None` before the first decision.
    pub fn achieved_speedup(&self) -> Option<f64> {
        self.shared.achieved_speedup()
    }

    /// The expected QoS loss of the most recent planned quantum, or `None`
    /// before the first decision.
    pub fn expected_qos_loss(&self) -> Option<f64> {
        self.shared.expected_qos_loss()
    }

    /// Total beats the daemon has processed for this application.
    pub fn beats_processed(&self) -> u64 {
        self.shared.beats_processed()
    }

    /// Beats rejected by the channel so far (backpressure).
    pub fn beats_rejected(&self) -> u64 {
        self.producer.rejected()
    }

    /// Why this application was quarantined, or `None` while it is
    /// healthy. A quarantined app's beats are never drained again; its
    /// decision accessors serve the configured safe state.
    pub fn quarantine_reason(&self) -> Option<QuarantineReason> {
        self.shared.quarantine_reason()
    }

    /// A standalone view of this app's decision state (what
    /// [`PowerDialDaemon::register_shm`] returns for cross-process apps).
    pub fn decision_view(&self) -> DecisionView {
        DecisionView {
            id: self.id,
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A beat source a daemon shard drains: the seam over which the in-heap
/// SPSC ring and the cross-process shared-memory segment are
/// interchangeable. The control code downstream of a drain is identical —
/// where the bytes lived is invisible to it.
#[derive(Debug)]
enum BeatSource {
    /// In-heap lock-free SPSC ring ([`powerdial_heartbeats::channel`]).
    Channel(BeatConsumer),
    /// Cross-process shared-memory segment
    /// ([`powerdial_heartbeats::shm`]).
    Shm(ShmConsumer),
}

impl BeatSource {
    /// The transport behind this source, as the
    /// [`BeatTransport`] seam both variants implement.
    fn transport(&mut self) -> &mut dyn BeatTransport {
        match self {
            BeatSource::Channel(consumer) => consumer,
            BeatSource::Shm(consumer) => consumer,
        }
    }

    fn drain_into_capped(&mut self, out: &mut Vec<BeatSample>, cap: usize) -> usize {
        self.transport().drain_into_capped(out, cap)
    }
}

/// Daemon-side control state for one application: the O(1) runtime, the
/// daemon's own sliding-window rate estimate, and the shared decision
/// atomics. Separated from the channel so the lock-free shard and the
/// mutex-guarded baseline run *identical* control code.
#[derive(Debug)]
struct ControlState {
    runtime: PowerDialRuntime,
    window: SlidingWindow,
    shared: Arc<AppShared>,
    decisions: u64,
    /// Observed rate inherited from a crashed predecessor daemon's
    /// warm-start block. Primes the decide-before-observe step only while
    /// this daemon's own window is still empty (the window never empties
    /// once a sample lands, so the seed naturally expires); without it the
    /// first post-adoption quantum would skip its controller update and the
    /// integrator would diverge from an uninterrupted run forever.
    seed_rate: Option<f64>,
}

/// The decision kernels are the daemon's per-beat hot path: implicit
/// overflow semantics are banned here (clippy `arithmetic_side_effects`);
/// every index/counter op is an explicit `wrapping_*` with its bound
/// argued in place.
#[deny(clippy::arithmetic_side_effects)]
impl ControlState {
    /// Processes one batch of drained beats: for each beat, read the
    /// current windowed rate, step the runtime (decide *before* observing
    /// the beat's own latency — the same ordering as the single-app serial
    /// loop, so decision sequences are beat-for-beat identical), then fold
    /// the latency into the window. Publishes the final decision of the
    /// batch to the shared atomics.
    ///
    /// # Errors
    ///
    /// A poisoned latency stream that overflows the window's summed
    /// nanoseconds surfaces as [`WindowOverflow`]; nothing is published
    /// for the batch and the caller quarantines the app.
    fn process_drained(
        &mut self,
        id: AppId,
        samples: &[BeatSample],
        on_decision: &mut impl FnMut(AppId, IndexedDecision),
    ) -> Result<u64, WindowOverflow> {
        if samples.is_empty() {
            return Ok(0);
        }
        let mut last = None;
        for sample in samples {
            let observed = self
                .window
                .rate()?
                .map(|r| r.beats_per_second())
                .or(self.seed_rate);
            let decision = self.runtime.on_heartbeat_idx(observed);
            on_decision(id, decision);
            // The first beat of a stream has no predecessor; its zero
            // latency is a convention, not an observation (mirrors
            // `HeartbeatMonitor::try_heartbeat`).
            if sample.tag.value() != 0 {
                self.window.push(sample.latency);
            }
            last = Some(decision);
        }
        let decision = last.expect("non-empty batch");
        self.publish_batch(decision, samples.len());
        Ok(samples.len() as u64)
    }

    /// The batched counterpart of [`ControlState::process_drained`]:
    /// boundary beats (where the runtime consumes an observation and
    /// replans) are stepped individually, and every maximal run of
    /// interior beats is folded in one pass —
    /// [`PowerDialRuntime::advance_in_quantum`] advances the schedule
    /// walk, [`SlidingWindow::push_slice`] folds the latencies. Interior
    /// beats never consult the window's rate, because the per-beat path
    /// computes and then *ignores* it for them; skipping the computation
    /// is therefore exact, and the published decision sequence is
    /// bit-identical to the per-beat path's (pinned by the
    /// `daemon_batch_equivalence` suite).
    ///
    /// `lat_scratch` is the caller's reused latency buffer (grows to at
    /// most one drain's worth of beats; steady-state allocation-free).
    ///
    /// # Errors
    ///
    /// [`WindowOverflow`] under the same poisoned-stream condition as
    /// [`ControlState::process_drained`] — the overflow is only *observed*
    /// at a boundary beat's rate read, so the batched and per-beat paths
    /// blame the same drain (both quarantine within the quantum that
    /// drained the poison).
    fn process_drained_batched(
        &mut self,
        samples: &[BeatSample],
        lat_scratch: &mut Vec<powerdial_heartbeats::TimestampDelta>,
    ) -> Result<u64, WindowOverflow> {
        if samples.is_empty() {
            return Ok(0);
        }
        let quantum = self.runtime.quantum_heartbeats();
        let mut last = None;
        let mut i = 0usize;
        while i < samples.len() {
            let beat_in_quantum = self.runtime.beat_in_quantum();
            if beat_in_quantum == 0 {
                // Boundary beat: decide before observing, exactly as the
                // per-beat path does.
                let observed = self
                    .window
                    .rate()?
                    .map(|r| r.beats_per_second())
                    .or(self.seed_rate);
                let decision = self.runtime.on_heartbeat_idx(observed);
                if samples[i].tag.value() != 0 {
                    self.window.push(samples[i].latency);
                }
                last = Some(decision);
                // `i < samples.len()` (loop guard), so the increment
                // cannot wrap.
                i = i.wrapping_add(1);
            } else {
                // Interior span: everything up to the next boundary (or the
                // end of the drain), folded in one step. The runtime keeps
                // `beat_in_quantum < quantum`, and `i < samples.len()` by
                // the loop guard, so neither subtraction underflows.
                let span = (quantum.wrapping_sub(beat_in_quantum) as usize)
                    .min(samples.len().wrapping_sub(i));
                let decision = self.runtime.advance_in_quantum(span as u32);
                lat_scratch.clear();
                lat_scratch.extend(
                    samples[i..i.wrapping_add(span)]
                        .iter()
                        .filter(|s| s.tag.value() != 0)
                        .map(|s| s.latency),
                );
                self.window.push_slice(lat_scratch);
                last = Some(decision);
                i = i.wrapping_add(span);
            }
        }
        let decision = last.expect("non-empty batch");
        self.publish_batch(decision, samples.len());
        Ok(samples.len() as u64)
    }

    /// Publication tail shared by the per-beat and batched kernels: store
    /// the batch's final decision and the current schedule's aggregates
    /// into the shared atomics.
    fn publish_batch(&mut self, decision: IndexedDecision, batch_len: usize) {
        let schedule = self
            .runtime
            .current_schedule()
            .expect("schedule exists after stepping");
        let qos_loss = schedule.expected_qos_loss(self.runtime.table());
        // The packed sequence only signals presence/freshness; skip the
        // masked value 0 on wraparound so `latest_point` stays `Some`.
        self.decisions = self.decisions.wrapping_add(1);
        if self.decisions & 0xFFFF_FFFF == 0 {
            self.decisions = self.decisions.wrapping_add(1);
        }
        self.shared
            .gain_bits
            .store(decision.gain.to_bits(), Ordering::Release);
        self.shared
            .achieved_speedup_bits
            .store(schedule.achieved_speedup.to_bits(), Ordering::Release);
        self.shared
            .qos_loss_bits
            .store(qos_loss.to_bits(), Ordering::Release);
        self.shared.decision.store(
            (self.decisions & 0xFFFF_FFFF) << 32 | u64::from(decision.point_idx.as_usize() as u32),
            Ordering::Release,
        );
        self.shared
            .beats_processed
            .fetch_add(batch_len as u64, Ordering::AcqRel);
    }
}

/// Per-app hot-path telemetry: the two fixed-footprint histograms the
/// drain loop records into, boxed so an `AppSlot` stays small for the
/// shard's slot-scan locality (the box is one pointer; the histograms
/// are ~8 KiB that only the owning app's drain touches).
#[derive(Debug)]
struct SlotTelemetry {
    /// Per-beat latency distribution, nanoseconds.
    beat_latency_ns: LatencyHistogram,
    /// Per-quantum expected QoS loss, parts per million.
    qos_loss_ppm: LatencyHistogram,
    /// Timestamp of the last beat folded into a decision (stamps the
    /// trace record of a reap/unregister, which has no beat of its own).
    last_beat: Timestamp,
    /// Set for an adopted app until its first processed quantum, whose
    /// trace record is tagged [`TraceReason::WarmStart`].
    warm_start_pending: bool,
}

impl SlotTelemetry {
    fn new(warm_start_pending: bool) -> Box<SlotTelemetry> {
        Box::new(SlotTelemetry {
            beat_latency_ns: LatencyHistogram::new(),
            qos_loss_ppm: LatencyHistogram::new(),
            last_beat: Timestamp::from_nanos(0),
            warm_start_pending,
        })
    }

    /// Warms the histogram cache lines `record_telemetry` will touch.
    /// At fleet scale the per-app histograms exceed L2, so the drain
    /// loop issues this right after draining — the decision kernel's
    /// work then overlaps the line fills instead of the record path
    /// stalling on them.
    #[inline]
    fn prefetch(&self) {
        self.beat_latency_ns.prefetch();
        self.qos_loss_ppm.prefetch();
    }
}

/// One application owned by a shard: its beat source plus control state.
#[derive(Debug)]
struct AppSlot {
    id: AppId,
    consumer: BeatSource,
    control: ControlState,
    /// Consecutive quanta whose drain came up empty (the silent streak).
    silent_streak: u32,
    /// Quanta left to skip before the next poll of an idle app.
    skip_countdown: u32,
    /// Hot-path metric state; `None` when telemetry is disabled.
    telemetry: Option<Box<SlotTelemetry>>,
    /// `Some` once the app is quarantined: the slot is parked (its
    /// transport is never drained and its runtime never stepped again)
    /// until eviction. One-way — see the module's containment diagram.
    quarantined: Option<QuarantineReason>,
    /// Fault-injection hook ([`PowerDialDaemon::inject_app_panic`] /
    /// [`DaemonShard::arm_panic`]): the next processing step panics
    /// inside the containment guard.
    panic_armed: bool,
}

/// Quanta per scratch-shrink epoch: the amortization period of the
/// cold-path check that returns flood-grown scratch capacity to the
/// steady-state working set.
pub const SHRINK_EPOCH_QUANTA: u32 = 64;

/// Floor below which scratch capacity is never shrunk (pointless churn).
const SHRINK_FLOOR: usize = 64;

/// A shard of the daemon: the set of applications one worker owns, plus
/// the scratch buffers their channels drain into.
///
/// Exposed publicly so tests and benchmarks can drive the exact per-quantum
/// drain loop the worker threads run — on the calling thread, under a
/// counting allocator, or single-stepped for equivalence checks.
#[derive(Debug, Default)]
pub struct DaemonShard {
    apps: Vec<AppSlot>,
    scratch: Vec<BeatSample>,
    /// Latency buffer of the batched kernel (one interior span at a time).
    lat_scratch: Vec<powerdial_heartbeats::TimestampDelta>,
    /// Silent-streak threshold for skipping idle apps (0 = disabled).
    idle_skip_limit: u32,
    /// Per-app, per-quantum drain cap (0 = uncapped).
    drain_cap: usize,
    /// Largest single drain observed in the current shrink epoch.
    epoch_peak: usize,
    /// Quanta run in the current shrink epoch.
    epoch_quanta: u32,
    /// Decision trace of this shard's apps (capacity 0 = disabled).
    trace: DecisionTraceRing,
    /// Knob-table point published for quarantined apps (see
    /// [`DaemonConfig::safe_point`]); clamped to each app's table at
    /// quarantine time.
    safe_point: u32,
    /// The app whose drain+decision step is currently executing, recorded
    /// before the containment guard runs it. A panic *inside* the guard
    /// quarantines the app and clears this; a panic that somehow escapes
    /// (or an injected worker crash) leaves it set, so the façade's
    /// resurrection path can blame exactly one app when it recovers the
    /// shard from the dead worker.
    in_flight: Option<u64>,
}

impl DaemonShard {
    /// Creates an empty shard with default tuning (no idle skipping, no
    /// drain cap).
    pub fn new() -> Self {
        DaemonShard::default()
    }

    /// Creates an empty shard with the given idle-skip threshold and drain
    /// cap (see [`DaemonConfig::idle_skip_limit`] and
    /// [`DaemonConfig::drain_cap`]), without a decision trace.
    pub fn with_tuning(idle_skip_limit: u32, drain_cap: usize) -> Self {
        DaemonShard {
            idle_skip_limit,
            drain_cap,
            ..DaemonShard::default()
        }
    }

    /// [`DaemonShard::with_tuning`] plus a decision-trace ring of
    /// `trace_capacity` records (see [`DaemonConfig::trace_capacity`]).
    pub fn with_telemetry(idle_skip_limit: u32, drain_cap: usize, trace_capacity: usize) -> Self {
        DaemonShard {
            idle_skip_limit,
            drain_cap,
            trace: DecisionTraceRing::with_capacity(trace_capacity),
            ..DaemonShard::default()
        }
    }

    /// Sets the knob point published for quarantined apps (builder form;
    /// see [`DaemonConfig::safe_point`]).
    #[must_use]
    pub fn with_safe_point(mut self, safe_point: u32) -> Self {
        self.safe_point = safe_point;
        self
    }

    /// Current capacity of the shard's drain scratch buffer, in beat
    /// records — observable so tests can pin the flood-then-shrink
    /// behavior.
    pub fn scratch_capacity(&self) -> usize {
        self.scratch.capacity()
    }

    /// Number of applications this shard owns.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when the shard owns no applications.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    fn push_slot(&mut self, slot: AppSlot) {
        self.apps.push(slot);
    }

    fn remove(&mut self, id: AppId) -> bool {
        match self.apps.iter().position(|slot| slot.id == id) {
            Some(index) => {
                let slot = self.apps.swap_remove(index);
                // A reaped/unregistered shm app's decision and warm-start
                // blocks are reset before the daemon lets go of the
                // mapping, so the segment's next tenant starts from
                // `Empty` — neither a previous app's stale knob setting
                // nor its controller trajectory leaks into a reuse.
                if let BeatSource::Shm(consumer) = &slot.consumer {
                    consumer.reset_decision();
                    consumer.reset_warm_state();
                }
                if let Some(telemetry) = &slot.telemetry {
                    let shared = &slot.control.shared;
                    self.trace.push(DecisionTraceRecord {
                        seq: 0,
                        timestamp: telemetry.last_beat,
                        app: slot.id.value(),
                        point_idx: shared.decision.load(Ordering::Acquire) as u32,
                        reason: TraceReason::SafeReset,
                        gain: f64::from_bits(shared.gain_bits.load(Ordering::Acquire)),
                        achieved_speedup: f64::from_bits(
                            shared.achieved_speedup_bits.load(Ordering::Acquire),
                        ),
                        qos_loss: f64::from_bits(shared.qos_loss_bits.load(Ordering::Acquire)),
                    });
                }
                true
            }
            None => false,
        }
    }

    /// Resets an app's idle-skip bookkeeping so the next quantum polls
    /// its transport unconditionally. Used by the reaper when a skipped
    /// slot's producer died with beats still pending — the countdown
    /// must not delay draining (and thus reaping) the corpse. Returns
    /// `false` when the shard does not own `id`.
    fn wake(&mut self, id: AppId) -> bool {
        match self.apps.iter_mut().find(|slot| slot.id == id) {
            Some(slot) => {
                slot.silent_streak = 0;
                slot.skip_countdown = 0;
                true
            }
            None => false,
        }
    }

    /// Arms the explicit fault-injection hook: `id`'s next processing
    /// step panics *inside* the containment guard, exercising the
    /// quarantine path end to end. Test-only by convention — production
    /// code has no reason to call it. Returns `false` when the shard does
    /// not own `id`.
    pub fn arm_panic(&mut self, id: AppId) -> bool {
        match self.apps.iter_mut().find(|slot| slot.id == id) {
            Some(slot) => {
                slot.panic_armed = true;
                true
            }
            None => false,
        }
    }

    /// Quarantine state of `id`: `Some(reason)` once the app has been
    /// quarantined, `None` while healthy (or when the shard does not own
    /// `id`).
    pub fn quarantine_reason(&self, id: AppId) -> Option<QuarantineReason> {
        self.apps
            .iter()
            .find(|slot| slot.id == id)
            .and_then(|slot| slot.quarantined)
    }

    /// Number of quarantined apps currently parked on this shard.
    pub fn quarantined_count(&self) -> usize {
        self.apps
            .iter()
            .filter(|slot| slot.quarantined.is_some())
            .count()
    }

    /// True when this shard owns `id`.
    fn contains(&self, id: AppId) -> bool {
        self.apps.iter().any(|slot| slot.id == id)
    }

    /// Parks a faulty app: records the blame, publishes the configured
    /// safe-state so the app (and, for shm apps, its client-side ladder)
    /// lands on a known-good knob setting instead of whatever the fault
    /// left behind, and resets the shm warm-start block so a successor
    /// daemon cold-starts this app rather than warm-starting from
    /// possibly-poisoned controller state. One-way: the slot is skipped by
    /// every subsequent quantum until it is evicted (unregister/reap).
    ///
    /// Runs *outside* the containment guard on state the guard protects
    /// (shared atomics, the knob table, the segment's seqlocked blocks) —
    /// all of which stay structurally valid across an unwind out of the
    /// control kernels.
    fn quarantine_slot(
        slot: &mut AppSlot,
        safe_point: u32,
        trace: &mut DecisionTraceRing,
        reason: QuarantineReason,
    ) {
        slot.quarantined = Some(reason);
        let table = slot.control.runtime.table();
        let point = PointIdx::new(safe_point.min(table.len().saturating_sub(1) as u32));
        let speedup = table.speedup_of(point);
        let qos_loss = table.point(point).qos_loss.value();
        let shared = &slot.control.shared;
        shared.gain_bits.store(speedup.to_bits(), Ordering::Release);
        shared
            .achieved_speedup_bits
            .store(speedup.to_bits(), Ordering::Release);
        shared
            .qos_loss_bits
            .store(qos_loss.to_bits(), Ordering::Release);
        // Publish through the same packed-sequence word as a healthy
        // decision so `latest_point` observers see a *fresh* safe decision
        // rather than the fault's leftovers (skip the masked value 0, as
        // `publish_batch` does).
        slot.control.decisions = slot.control.decisions.wrapping_add(1);
        if slot.control.decisions & 0xFFFF_FFFF == 0 {
            slot.control.decisions = slot.control.decisions.wrapping_add(1);
        }
        shared.decision.store(
            (slot.control.decisions & 0xFFFF_FFFF) << 32 | u64::from(point.as_usize() as u32),
            Ordering::Release,
        );
        shared.quarantined.store(reason.code(), Ordering::Release);
        if let BeatSource::Shm(consumer) = &slot.consumer {
            // The client reads a *published* safe decision (its ladder
            // serves it as `Published`, not a fallback) within its next
            // decision poll.
            consumer.publish_decision(ShmDecision {
                point_idx: point.as_usize() as u32,
                gain_bits: speedup.to_bits(),
                achieved_speedup_bits: speedup.to_bits(),
                qos_loss_bits: qos_loss.to_bits(),
            });
            consumer.reset_warm_state();
        }
        trace.push(DecisionTraceRecord {
            seq: 0,
            timestamp: slot
                .telemetry
                .as_deref()
                .map(|t| t.last_beat)
                .unwrap_or(Timestamp::from_nanos(0)),
            app: slot.id.value(),
            point_idx: point.as_usize() as u32,
            reason: TraceReason::Quarantined,
            gain: speedup,
            achieved_speedup: speedup,
            qos_loss,
        });
    }

    /// Drains one app's transport, honoring the idle-skip streak and the
    /// drain cap. Returns `None` when the app was skipped without touching
    /// its transport, `Some(drained)` otherwise. Shared by the batched and
    /// per-beat quantum loops so both see identical drains.
    fn drain_slot(
        slot: &mut AppSlot,
        scratch: &mut Vec<BeatSample>,
        idle_skip_limit: u32,
        drain_cap: usize,
    ) -> Option<usize> {
        if idle_skip_limit > 0 && slot.silent_streak >= idle_skip_limit {
            if slot.skip_countdown > 0 {
                slot.skip_countdown -= 1;
                return None;
            }
            slot.skip_countdown = idle_skip_limit;
        }
        let cap = if drain_cap == 0 {
            usize::MAX
        } else {
            drain_cap
        };
        let drained = slot.consumer.drain_into_capped(scratch, cap);
        if drained == 0 {
            slot.silent_streak = slot.silent_streak.saturating_add(1);
        } else {
            slot.silent_streak = 0;
            slot.skip_countdown = 0;
        }
        Some(drained)
    }

    /// Amortized cold-path scratch maintenance: once per
    /// [`SHRINK_EPOCH_QUANTA`] quanta, if the scratch capacity exceeds
    /// four times the epoch's largest drain, shrink it to twice that peak.
    /// In steady state the capacity tracks the working set and the check
    /// never fires (`shrink_to` counts as a realloc, and the `no_alloc`
    /// suites must stay green); after a flood subsides, one epoch later
    /// the burst-sized buffer is returned.
    fn maintain_scratch(&mut self, quantum_peak: usize) {
        self.epoch_peak = self.epoch_peak.max(quantum_peak);
        self.epoch_quanta += 1;
        if self.epoch_quanta < SHRINK_EPOCH_QUANTA {
            return;
        }
        let watermark = self.epoch_peak.max(SHRINK_FLOOR) * 2;
        if self.scratch.capacity() > watermark * 2 {
            self.scratch.shrink_to(watermark);
        }
        if self.lat_scratch.capacity() > watermark * 2 {
            self.lat_scratch.shrink_to(watermark);
        }
        self.epoch_peak = 0;
        self.epoch_quanta = 0;
    }

    /// Runs one actuation quantum: drains every app's channel in one batch
    /// (at most [`DaemonConfig::drain_cap`] beats, skipping apps deep in a
    /// silent streak) and steps its controller through the batched
    /// decision kernel. Returns the total beats processed. Steady-state
    /// allocation-free: the scratch buffers and every runtime's planning
    /// buffer are reused in place.
    ///
    /// **Fault containment.** The sweep over the fleet runs under a
    /// `catch_unwind` guard — one guard per *sweep*, not per app, so at
    /// fleet scale the landing-pad setup amortizes to nothing and the
    /// only per-slot cost is keeping the sweep cursor current. A panic
    /// (or a poisoned latency stream overflowing the rate window) blames
    /// exactly one app — the cursor names the slot that was mid-step
    /// when the guard tripped — that app is
    /// [quarantined](DaemonShard::quarantine_reason) and the sweep
    /// *resumes with its neighbor*, so every other app in the same
    /// quantum keeps being served; their decision sequences are
    /// bit-identical to a no-fault run, because the faulty slot's step
    /// shares no control state with its neighbors (the scratch buffers
    /// are refilled per slot).
    pub fn run_quantum(&mut self) -> u64 {
        let DaemonShard {
            apps,
            scratch,
            lat_scratch,
            idle_skip_limit,
            drain_cap,
            trace,
            safe_point,
            in_flight,
            ..
        } = self;
        let mut beats = 0u64;
        let mut peak = 0usize;
        let mut idx = 0usize;
        while idx < apps.len() {
            // Everything the guarded sweep mutates lives in plain memory
            // the outer frame still owns, so the values written before a
            // panic (processed counts, the cursor, `in_flight`) survive
            // the unwind and the culprit is `apps[idx]`.
            let sweep = catch_unwind(AssertUnwindSafe(|| {
                while idx < apps.len() {
                    let slot = &mut apps[idx];
                    if slot.quarantined.is_some() {
                        idx += 1;
                        continue;
                    }
                    // Idle-skip fast path — the `None` branch of
                    // `drain_slot`, hoisted: pure slot-field arithmetic
                    // that cannot panic, so a parked fleet pays no blame
                    // bookkeeping at all.
                    if *idle_skip_limit > 0
                        && slot.silent_streak >= *idle_skip_limit
                        && slot.skip_countdown > 0
                    {
                        slot.skip_countdown -= 1;
                        idx += 1;
                        continue;
                    }
                    // From here a step can genuinely panic: record which
                    // slot, so an *escaped* panic (worker death) still
                    // blames the app mid-step. Cleared once per sweep —
                    // nothing between slots can trip the guard.
                    *in_flight = Some(slot.id.value());
                    if slot.panic_armed {
                        slot.panic_armed = false;
                        panic!("injected app panic (fault-injection hook)");
                    }
                    if let Some(drained) =
                        Self::drain_slot(slot, scratch, *idle_skip_limit, *drain_cap)
                    {
                        if drained > 0 {
                            if let Some(telemetry) = &slot.telemetry {
                                telemetry.prefetch();
                            }
                        }
                        match slot.control.process_drained_batched(scratch, lat_scratch) {
                            Ok(processed) => {
                                Self::publish_shm(slot, processed);
                                Self::record_telemetry(slot, scratch, trace, processed);
                                peak = peak.max(drained);
                                beats += processed;
                            }
                            Err(WindowOverflow) => {
                                Self::quarantine_slot(
                                    slot,
                                    *safe_point,
                                    trace,
                                    QuarantineReason::WindowOverflow,
                                );
                            }
                        }
                    }
                    idx += 1;
                }
                *in_flight = None;
            }));
            if sweep.is_err() {
                // The slot the cursor names panicked mid-step: contain
                // the blast there and resume the sweep with its neighbor.
                *in_flight = None;
                Self::quarantine_slot(&mut apps[idx], *safe_point, trace, QuarantineReason::Panic);
                idx += 1;
            }
        }
        self.maintain_scratch(peak);
        beats
    }

    /// Hot-path telemetry tail of a processed drain: fold each observed
    /// beat latency and the quantum's QoS loss into the slot's
    /// histograms, and append one decision-trace record. Histogram
    /// records and the ring push are allocation-free (the `no_alloc`
    /// suites run with telemetry enabled); a disabled slot costs one
    /// `None` check.
    #[inline]
    fn record_telemetry(
        slot: &mut AppSlot,
        samples: &[BeatSample],
        trace: &mut DecisionTraceRing,
        processed: u64,
    ) {
        let Some(telemetry) = slot.telemetry.as_deref_mut() else {
            return;
        };
        if processed == 0 {
            return;
        }
        // First-beat zero latency is a convention, not an observation
        // (the same tag-0 rule the control window applies).
        telemetry.beat_latency_ns.record_all(
            samples
                .iter()
                .filter(|sample| sample.tag.value() != 0)
                .map(|sample| sample.latency.as_nanos()),
        );
        let shared = &slot.control.shared;
        let qos_loss = f64::from_bits(shared.qos_loss_bits.load(Ordering::Acquire));
        let qos_ppm = if qos_loss.is_finite() && qos_loss > 0.0 {
            (qos_loss * QOS_PPM_SCALE) as u64
        } else {
            0
        };
        telemetry.qos_loss_ppm.record(qos_ppm);
        if let Some(last) = samples.last() {
            telemetry.last_beat = last.timestamp;
        }
        let reason = if telemetry.warm_start_pending {
            telemetry.warm_start_pending = false;
            TraceReason::WarmStart
        } else {
            TraceReason::Boundary
        };
        trace.push(DecisionTraceRecord {
            seq: 0,
            timestamp: telemetry.last_beat,
            app: slot.id.value(),
            point_idx: shared.decision.load(Ordering::Acquire) as u32,
            reason,
            gain: f64::from_bits(shared.gain_bits.load(Ordering::Acquire)),
            achieved_speedup: f64::from_bits(shared.achieved_speedup_bits.load(Ordering::Acquire)),
            qos_loss,
        });
    }

    /// Clones this shard's telemetry (per-app histograms + trace) for a
    /// snapshot. Cold path: runs between quanta, allocates freely, and
    /// never perturbs the histograms it copies.
    pub fn telemetry(&self) -> ShardTelemetry {
        ShardTelemetry {
            apps: self
                .apps
                .iter()
                .filter_map(|slot| {
                    let telemetry = slot.telemetry.as_deref()?;
                    Some(AppTelemetryReport {
                        app: slot.id,
                        beats: slot.control.shared.beats_processed.load(Ordering::Acquire),
                        beat_latency_ns: telemetry.beat_latency_ns.clone(),
                        qos_loss_ppm: telemetry.qos_loss_ppm.clone(),
                    })
                })
                .collect(),
            trace: self.trace.to_vec(),
        }
    }

    /// Re-publication of a processed quantum's decision through an shm
    /// app's segment (atomics only — the quantum loop stays
    /// allocation-free). No-op for in-heap channels or empty drains.
    fn publish_shm(slot: &AppSlot, processed: u64) {
        if processed > 0 {
            if let BeatSource::Shm(consumer) = &slot.consumer {
                let shared = &slot.control.shared;
                consumer.publish_decision(ShmDecision {
                    point_idx: shared.decision.load(Ordering::Acquire) as u32,
                    gain_bits: shared.gain_bits.load(Ordering::Acquire),
                    achieved_speedup_bits: shared.achieved_speedup_bits.load(Ordering::Acquire),
                    qos_loss_bits: shared.qos_loss_bits.load(Ordering::Acquire),
                });
                // Keep the segment's warm-start block current so a
                // successor daemon resumes from this actuation if we die
                // after this store.
                // `publish_shm` only runs after a successfully processed
                // batch, so the window cannot be in overflow here; treat
                // the impossible case as "no rate yet".
                let rate = slot
                    .control
                    .window
                    .rate()
                    .ok()
                    .flatten()
                    .map(|r| r.beats_per_second())
                    .unwrap_or(0.0);
                consumer.publish_warm_state(ShmWarmState {
                    point_idx: shared.decision.load(Ordering::Acquire) as u32,
                    speedup_bits: slot.control.runtime.controller().speedup().to_bits(),
                    observed_rate_bits: rate.to_bits(),
                    beat_in_quantum: u64::from(slot.control.runtime.beat_in_quantum()),
                });
            }
        }
    }

    /// The per-beat reference path: identical drains (idle-skip, drain
    /// cap) and identical decisions to [`DaemonShard::run_quantum`], but
    /// every beat steps the runtime individually and `on_decision` sees
    /// every per-beat decision (tests and diagnostics; the callback runs
    /// on the shard's thread). The batched kernel is property-tested
    /// against this path.
    pub fn run_quantum_with(
        &mut self,
        on_decision: &mut impl FnMut(AppId, IndexedDecision),
    ) -> u64 {
        let DaemonShard {
            apps,
            scratch,
            lat_scratch: _,
            idle_skip_limit,
            drain_cap,
            trace,
            safe_point,
            in_flight,
            ..
        } = self;
        let mut beats = 0;
        let mut peak = 0usize;
        for slot in apps.iter_mut() {
            if slot.quarantined.is_some() {
                continue;
            }
            *in_flight = Some(slot.id.value());
            let step = catch_unwind(AssertUnwindSafe(
                || -> Result<Option<(usize, u64)>, WindowOverflow> {
                    if slot.panic_armed {
                        slot.panic_armed = false;
                        panic!("injected app panic (fault-injection hook)");
                    }
                    let Some(drained) =
                        Self::drain_slot(slot, scratch, *idle_skip_limit, *drain_cap)
                    else {
                        return Ok(None);
                    };
                    if drained > 0 {
                        if let Some(telemetry) = &slot.telemetry {
                            telemetry.prefetch();
                        }
                    }
                    let processed = slot
                        .control
                        .process_drained(slot.id, scratch, on_decision)?;
                    // Cross-process apps read decisions back through the
                    // segment's seqlock-protected decision block. Publish by
                    // *re-reading* the bits `process_drained` just stored
                    // into the shared atomics — the same words
                    // `DecisionView` serves — so a decision seen via shm is
                    // bit-identical to the in-process view by construction.
                    Self::publish_shm(slot, processed);
                    Self::record_telemetry(slot, scratch, trace, processed);
                    Ok(Some((drained, processed)))
                },
            ));
            *in_flight = None;
            match step {
                Ok(Ok(None)) => {}
                Ok(Ok(Some((drained, processed)))) => {
                    peak = peak.max(drained);
                    beats += processed;
                }
                Ok(Err(WindowOverflow)) => {
                    Self::quarantine_slot(
                        slot,
                        *safe_point,
                        trace,
                        QuarantineReason::WindowOverflow,
                    );
                }
                Err(_panic) => {
                    Self::quarantine_slot(slot, *safe_point, trace, QuarantineReason::Panic);
                }
            }
        }
        self.maintain_scratch(peak);
        beats
    }

    /// The planned per-beat knob indices of `id`'s current quantum (empty
    /// before its first beat), for equivalence tests.
    pub fn planned_beat_indices(&self, id: AppId) -> Option<&[PointIdx]> {
        self.apps
            .iter()
            .find(|slot| slot.id == id)
            .map(|slot| slot.control.runtime.planned_beat_indices())
    }

    /// Number of quanta `id`'s runtime has planned so far.
    pub fn quanta_planned(&self, id: AppId) -> Option<u64> {
        self.apps
            .iter()
            .find(|slot| slot.id == id)
            .map(|slot| slot.control.runtime.quanta_planned())
    }
}

/// Commands sent from the daemon façade to a worker thread. Every command
/// except `Shutdown` is acknowledged on the worker's ack channel.
enum Command {
    Register(Box<AppSlot>),
    Unregister(AppId),
    /// Reset an app's idle-skip state so the next tick polls it.
    Wake(AppId),
    /// Send the shard's telemetry back on the provided channel (the ack
    /// still follows, as for every command).
    Telemetry(mpsc::Sender<ShardTelemetry>),
    Tick,
    /// Arm the explicit fault-injection hook: `id`'s next processing step
    /// panics inside the containment guard (test-only by convention).
    ArmPanic(AppId),
    /// Panic the worker thread itself, simulating a shard death whose
    /// panic escaped containment (test-only by convention). Never
    /// acknowledged — the sender observes the death on the ack channel.
    Crash,
    Shutdown,
}

/// One spawned worker: its command/ack channels, join handle, and a
/// façade-side handle on the shard itself.
struct Worker {
    commands: mpsc::Sender<Command>,
    acks: mpsc::Receiver<u64>,
    thread: Option<JoinHandle<()>>,
    /// The worker's shard. In steady state only the worker thread touches
    /// it (one uncontended lock per command); the façade's clone exists so
    /// that when the thread dies, [`PowerDialDaemon::respawn_dead`] can
    /// recover the surviving apps' live state and migrate them onto a
    /// fresh worker instead of orphaning them.
    shard: Arc<Mutex<DaemonShard>>,
    /// Set when a send or receive on the worker's channels fails — the
    /// thread panicked and is gone. A dead worker is never commanded
    /// again; its apps stay parked on the dead shard until
    /// [`PowerDialDaemon::respawn_dead`] migrates them, and the rest of
    /// the daemon keeps going.
    dead: bool,
    /// Applications currently placed on this worker. Workers with zero
    /// apps are not ticked (no cross-thread round trip for empty shards).
    apps: usize,
}

/// The sharded multi-application PowerDial daemon.
///
/// # Example
///
/// ```
/// use powerdial_control::{ControllerConfig, DaemonConfig, PowerDialDaemon, RuntimeConfig};
/// use powerdial_heartbeats::Timestamp;
/// use powerdial_knobs::{CalibrationPoint, KnobTable, ConfigParameter, ParameterSpace};
/// use powerdial_qos::{QosLoss, QosLossBound};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let space = ParameterSpace::builder()
/// #     .parameter(ConfigParameter::new("k", vec![0.0, 1.0], 0.0)?)
/// #     .build()?;
/// # let points = vec![
/// #     CalibrationPoint { setting_index: 0, setting: space.setting(0).unwrap(),
/// #                        speedup: 1.0, qos_loss: QosLoss::new(0.0) },
/// #     CalibrationPoint { setting_index: 1, setting: space.setting(1).unwrap(),
/// #                        speedup: 2.0, qos_loss: QosLoss::new(0.05) },
/// # ];
/// # let table = KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED)?;
/// // Inline mode (workers: 0) keeps everything on this thread.
/// let mut daemon = PowerDialDaemon::new(DaemonConfig {
///     workers: 0,
///     ..DaemonConfig::default()
/// })?;
/// let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0)?);
/// let mut app = daemon.register(config, table)?;
///
/// // The application emits beats; the daemon controls once per quantum.
/// for beat in 0..40u64 {
///     app.beat(Timestamp::from_millis(beat * 50)).unwrap(); // 20 beats/s: too slow
///     if beat % 20 == 19 {
///         daemon.tick();
///     }
/// }
/// assert_eq!(app.beats_processed(), 40);
/// assert!(app.latest_gain().unwrap() >= 1.0);
/// # Ok(())
/// # }
/// ```
pub struct PowerDialDaemon {
    config: DaemonConfig,
    /// Threaded mode: one worker per shard.
    workers: Vec<Worker>,
    /// Inline mode (`workers: 0`): the single shard, ticked on the caller.
    inline_shard: DaemonShard,
    /// Where each app lives and (for shm apps) its liveness probe.
    placements: HashMap<u64, Placement>,
    next_id: u64,
    next_worker: usize,
    total_beats: u64,
    ticks: u64,
    /// Worker indices awaiting a tick ack (reused across ticks so the tick
    /// loop never allocates).
    tick_pending: Vec<usize>,
    /// Reused buffer for [`PowerDialDaemon::reap_dead`]'s dead-app scan —
    /// the every-supervision-cycle empty case touches no allocator.
    reap_scratch: Vec<AppId>,
    /// Reused buffer for the reaper's wake pass (dead producer, beats
    /// still pending, slot possibly idle-skipped): `(app, worker)` pairs
    /// whose skip state must be cleared so the next tick drains them.
    wake_scratch: Vec<(AppId, usize)>,
    /// Worker threads found dead so far (lifetime count; monotonic).
    shard_deaths: u64,
    /// Dead workers respawned by [`PowerDialDaemon::respawn_dead`].
    shard_respawns: u64,
    /// Apps migrated off dead shards onto their replacements.
    apps_migrated: u64,
}

/// Facade-side record of one registered app: which shard owns it, plus —
/// for shm-backed apps — a probe of its segment, kept here so the reaper
/// can check peer liveness without a round-trip to the owning worker.
#[derive(Debug)]
struct Placement {
    /// Owning worker index (`usize::MAX` = inline shard).
    worker: usize,
    /// Segment probe for shm-backed apps; `None` for in-heap channels.
    probe: Option<ShmPeerProbe>,
    /// The app's shared decision state, mirrored here so the façade can
    /// observe quarantine without a round-trip to the owning worker (the
    /// reaper and the incident counters both read it).
    shared: Arc<AppShared>,
}

impl std::fmt::Debug for PowerDialDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerDialDaemon")
            .field("config", &self.config)
            .field("apps", &self.placements.len())
            .field("ticks", &self.ticks)
            .field("total_beats", &self.total_beats)
            .finish()
    }
}

impl PowerDialDaemon {
    /// Creates a daemon and spawns its worker threads (none in inline
    /// mode).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroChannelCapacity`] or
    /// [`ControlError::ZeroWindowSize`] for an invalid configuration.
    pub fn new(config: DaemonConfig) -> Result<Self, ControlError> {
        config.validate()?;
        let workers: Vec<Worker> = (0..config.workers)
            .map(|index| Self::spawn_worker(index, &config).expect("spawn daemon worker"))
            .collect();
        let tick_pending = Vec::with_capacity(workers.len());
        Ok(PowerDialDaemon {
            config,
            workers,
            inline_shard: DaemonShard::with_telemetry(
                config.idle_skip_limit,
                config.drain_cap,
                if config.telemetry {
                    config.trace_capacity
                } else {
                    0
                },
            )
            .with_safe_point(config.safe_point),
            placements: HashMap::new(),
            next_id: 0,
            next_worker: 0,
            total_beats: 0,
            ticks: 0,
            tick_pending,
            reap_scratch: Vec::new(),
            wake_scratch: Vec::new(),
            shard_deaths: 0,
            shard_respawns: 0,
            apps_migrated: 0,
        })
    }

    /// Builds one worker: its shard (shared with the façade through an
    /// `Arc<Mutex>` for post-mortem recovery), channels, and thread. Used
    /// both at construction and by [`PowerDialDaemon::respawn_dead`];
    /// spawn failure is fatal at construction but survivable during
    /// resurrection (the recovered apps fall back to the inline shard).
    fn spawn_worker(index: usize, config: &DaemonConfig) -> std::io::Result<Worker> {
        let (command_tx, command_rx) = mpsc::channel::<Command>();
        let (ack_tx, ack_rx) = mpsc::channel::<u64>();
        let shard = Arc::new(Mutex::new(
            DaemonShard::with_telemetry(
                config.idle_skip_limit,
                config.drain_cap,
                if config.telemetry {
                    config.trace_capacity
                } else {
                    0
                },
            )
            .with_safe_point(config.safe_point),
        ));
        let thread_shard = Arc::clone(&shard);
        let thread = std::thread::Builder::new()
            .name(format!("powerdial-shard-{index}"))
            .spawn(move || worker_main(thread_shard, command_rx, ack_tx))?;
        Ok(Worker {
            commands: command_tx,
            acks: ack_rx,
            thread: Some(thread),
            shard,
            dead: false,
            apps: 0,
        })
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Registers an application: builds its SPSC channel and O(1) runtime,
    /// assigns it to a shard round-robin, and returns the application-side
    /// handle.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroQuantum`] when the runtime configuration
    /// has a zero-heartbeat quantum.
    pub fn register(
        &mut self,
        config: RuntimeConfig,
        table: KnobTable,
    ) -> Result<AppHandle, ControlError> {
        let (producer, consumer) = beat_channel(self.config.channel_capacity);
        let (id, shared) = self.register_source(
            config,
            table,
            BeatSource::Channel(consumer),
            None,
            None,
            None,
        )?;
        Ok(AppHandle {
            id,
            producer,
            shared,
            next_tag: HeartbeatTag::default(),
            last_timestamp: None,
        })
    }

    /// Registers an application whose beats arrive from *another process*
    /// through a shared-memory segment: the daemon takes ownership of the
    /// attached [`ShmConsumer`] and drains it exactly like an in-heap
    /// channel — the control path downstream of the drain is identical.
    ///
    /// Returns a [`DecisionView`] (there is no producer half to hand back:
    /// the producing process attaches its own
    /// [`powerdial_heartbeats::shm::ShmProducer`] to the segment). The
    /// daemon keeps a liveness probe of the segment, so
    /// [`PowerDialDaemon::reap_dead`] can detect and unregister apps whose
    /// producing process died.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroQuantum`] when the runtime configuration
    /// has a zero-heartbeat quantum.
    pub fn register_shm(
        &mut self,
        config: RuntimeConfig,
        table: KnobTable,
        consumer: ShmConsumer,
    ) -> Result<DecisionView, ControlError> {
        let probe = consumer.probe();
        let (id, shared) = self.register_source(
            config,
            table,
            BeatSource::Shm(consumer),
            Some(probe),
            None,
            None,
        )?;
        Ok(DecisionView { id, shared })
    }

    /// Registers an application by *adopting* a shared-memory segment left
    /// behind by a crashed predecessor daemon (the segment arrives back over
    /// the broker's reattach hello; the consumer role was claimed via
    /// [`ShmConsumer::adopt`], stepping over the dead claimant).
    ///
    /// Recovery happens here, not in the transport layer, because only the
    /// daemon knows the knob table needed to validate and re-synthesize
    /// decisions:
    ///
    /// 1. **Warm start.** The segment's warm-start block (the predecessor's
    ///    last actuation: point index, controller speedup, observed rate,
    ///    beat-in-quantum) is read under its seqlock. A consistent block
    ///    whose point index is in range and whose speedup is finite
    ///    warm-starts this daemon's controller
    ///    ([`PowerDialRuntime::warm_start`]); a torn, empty, or implausible
    ///    block falls back to a cold controller — recovery never trusts
    ///    garbage into the control law.
    /// 2. **Torn-decision healing.** If the predecessor died *mid-publish*
    ///    of the decision block, the application is stuck reading
    ///    last-known-good forever. A warm point re-synthesizes the decision
    ///    from the table (gain = achieved = `speedup_of(point)`, QoS loss
    ///    from the table); with no warm state the block is reset to Empty so
    ///    the app degrades cleanly instead of spinning on a torn seqlock.
    /// 3. **Continuity.** A consistent published decision also seeds this
    ///    daemon's [`DecisionView`]/shared state, so in-process observers of
    ///    the successor see the predecessor's last decision immediately
    ///    instead of `None` until the first new quantum.
    ///
    /// Beats the application pushed across the outage are still in the ring
    /// (they live in the segment, not the dead process) and are drained on
    /// the first tick — nothing is lost beyond channel capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroQuantum`] when the runtime configuration
    /// has a zero-heartbeat quantum.
    pub fn register_shm_adopted(
        &mut self,
        config: RuntimeConfig,
        table: KnobTable,
        consumer: ShmConsumer,
    ) -> Result<DecisionView, ControlError> {
        let probe = consumer.probe();
        let warm = match consumer.read_warm_state() {
            WarmRead::Ready(w)
                if (w.point_idx as usize) < table.len()
                    && f64::from_bits(w.speedup_bits).is_finite() =>
            {
                Some(w)
            }
            _ => None,
        };
        // Heal a decision block the predecessor tore mid-publish: re-publish
        // from warm state when we have it, otherwise reset to Empty so the
        // client's ladder degrades instead of retrying a torn read forever.
        if matches!(probe.read_decision(), DecisionRead::Torn) {
            match warm {
                Some(w) => {
                    let speedup = table.speedup_of(PointIdx::new(w.point_idx));
                    consumer.publish_decision(ShmDecision {
                        point_idx: w.point_idx,
                        gain_bits: speedup.to_bits(),
                        achieved_speedup_bits: speedup.to_bits(),
                        qos_loss_bits: table
                            .point(PointIdx::new(w.point_idx))
                            .qos_loss
                            .value()
                            .to_bits(),
                    });
                }
                None => consumer.reset_decision(),
            }
        }
        let seed = match probe.read_decision() {
            DecisionRead::Ready(d) if (d.point_idx as usize) < table.len() => Some(d),
            _ => None,
        };
        let (id, shared) = self.register_source(
            config,
            table,
            BeatSource::Shm(consumer),
            Some(probe),
            warm,
            seed,
        )?;
        Ok(DecisionView { id, shared })
    }

    /// Shared registration path for both transports. `warm` restores the
    /// controller's integrator and primes the first quantum's observed rate
    /// (adoption path); `seed` pre-publishes a predecessor's decision into
    /// the shared state so observers see it before the first quantum.
    fn register_source(
        &mut self,
        config: RuntimeConfig,
        table: KnobTable,
        consumer: BeatSource,
        probe: Option<ShmPeerProbe>,
        warm: Option<ShmWarmState>,
        seed: Option<ShmDecision>,
    ) -> Result<(AppId, Arc<AppShared>), ControlError> {
        let mut runtime = PowerDialRuntime::new(config, table)?;
        let mut seed_rate = None;
        if let Some(w) = warm {
            // Speedup finiteness was validated by the adoption path; a
            // failure here (non-finite after a racing scribble) just means
            // a cold start.
            let _ = runtime.warm_start(f64::from_bits(w.speedup_bits));
            let rate = f64::from_bits(w.observed_rate_bits);
            if rate.is_finite() && rate > 0.0 {
                seed_rate = Some(rate);
            }
        }
        let shared = Arc::new(AppShared::default());
        let mut decisions = 0u64;
        if let Some(d) = seed {
            shared.gain_bits.store(d.gain_bits, Ordering::Release);
            shared
                .achieved_speedup_bits
                .store(d.achieved_speedup_bits, Ordering::Release);
            shared
                .qos_loss_bits
                .store(d.qos_loss_bits, Ordering::Release);
            shared
                .decision
                .store((1u64 << 32) | u64::from(d.point_idx), Ordering::Release);
            decisions = 1;
        }
        let id = AppId(self.next_id);
        self.next_id += 1;
        let slot = AppSlot {
            id,
            consumer,
            control: ControlState {
                runtime,
                window: SlidingWindow::new(self.config.window_size),
                shared: Arc::clone(&shared),
                decisions,
                seed_rate,
            },
            // Fresh slots always start with cleared idle-skip bookkeeping
            // — in particular an *adopted* segment must not inherit a
            // predecessor's skip streak, or its backlog of outage beats
            // would wait out a countdown it never earned.
            silent_streak: 0,
            skip_countdown: 0,
            telemetry: self
                .config
                .telemetry
                .then(|| SlotTelemetry::new(warm.is_some())),
            quarantined: None,
            panic_armed: false,
        };
        let worker = match self.pick_worker() {
            None => {
                self.inline_shard.push_slot(slot);
                usize::MAX
            }
            Some(index) => {
                match self.workers[index]
                    .commands
                    .send(Command::Register(Box::new(slot)))
                {
                    Err(mpsc::SendError(Command::Register(slot))) => {
                        // The worker died between the liveness check and the
                        // send: the slot came back, fall back to inline.
                        self.mark_dead(index);
                        self.inline_shard.push_slot(*slot);
                        usize::MAX
                    }
                    Err(_) => unreachable!("a failed send returns the sent command"),
                    Ok(()) => {
                        if self.workers[index].acks.recv().is_err() {
                            // Died holding the slot; the app stays parked
                            // on the dead shard until `respawn_dead`
                            // migrates it (same degraded contract as a
                            // death mid-quantum).
                            self.mark_dead(index);
                        }
                        self.workers[index].apps += 1;
                        index
                    }
                }
            }
        };
        self.placements.insert(
            id.0,
            Placement {
                worker,
                probe,
                shared: Arc::clone(&shared),
            },
        );
        Ok((id, shared))
    }

    /// Records a worker-death transition exactly once (idempotent), so
    /// the incident counter matches the number of distinct shard deaths.
    fn mark_dead(&mut self, worker: usize) {
        if !self.workers[worker].dead {
            self.workers[worker].dead = true;
            self.shard_deaths += 1;
        }
    }

    /// Chooses the worker for a new app: `None` places it on the inline
    /// shard — always in inline mode, for the first
    /// [`DaemonConfig::inline_apps`] registrations in threaded mode (small
    /// fleets skip the cross-thread round trip), and whenever every worker
    /// is dead. Otherwise round-robin over live workers.
    fn pick_worker(&mut self) -> Option<usize> {
        if self.workers.is_empty() || self.inline_shard.len() < self.config.inline_apps {
            return None;
        }
        for _ in 0..self.workers.len() {
            let index = self.next_worker;
            self.next_worker = (self.next_worker + 1) % self.workers.len();
            if !self.workers[index].dead {
                return Some(index);
            }
        }
        None
    }

    /// Removes an application from its shard. Beats still in its channel
    /// are discarded; the application's handle keeps working but nothing
    /// drains its channel any more (pushes eventually see backpressure).
    /// For shm apps the consumer (and with it this process's mapping) is
    /// dropped. Returns `false` if `id` was never registered or already
    /// removed.
    pub fn unregister(&mut self, id: AppId) -> bool {
        match self.placements.remove(&id.0) {
            Some(Placement {
                worker: usize::MAX, ..
            }) => self.inline_shard.remove(id),
            Some(Placement { worker, .. }) => {
                let removed = self.command(worker, Command::Unregister(id)) == Some(1);
                if removed {
                    self.workers[worker].apps -= 1;
                }
                removed
            }
            None => false,
        }
    }

    /// Reaps abandoned shared-memory applications: every shm-registered
    /// app whose producing process has died **and** whose segment has been
    /// fully drained is unregistered, and the reaped ids are returned.
    ///
    /// Beats the producer managed to publish before dying survive in the
    /// segment, so the reap protocol is: [`PowerDialDaemon::tick`] first
    /// (collect the stragglers), then `reap_dead`. An app with a dead
    /// producer but pending beats is deliberately left for the next
    /// tick+reap round rather than losing its tail — but its idle-skip
    /// state is cleared here, so that next tick is guaranteed to drain
    /// it even if the slot was deep in a skip countdown (liveness is
    /// probed from the façade and is independent of skip state; without
    /// the wake, a SIGKILLed producer behind an idle-skipped segment
    /// would sit unreaped for up to `idle_skip_limit` extra quanta).
    /// Called every supervision cycle, so the overwhelmingly common
    /// nothing-is-dead case is allocation-free: the scan reuses an
    /// internal scratch buffer and returns an empty `Vec` (which holds no
    /// heap block) when it found nothing. Only a cycle that actually reaps
    /// — rare by definition — pays for the returned list (the scratch's
    /// allocation is handed to the caller).
    pub fn reap_dead(&mut self) -> Vec<AppId> {
        self.reap_scratch.clear();
        self.wake_scratch.clear();
        for (id, placement) in &self.placements {
            if let Some(probe) = placement.probe.as_ref() {
                // Liveness is probed from the façade, so a slot deep in
                // an idle-skip streak is judged exactly like any other —
                // skipping a poll must never postpone noticing a death.
                if probe.producer_state().is_dead() {
                    // A quarantined app's ring is never drained again, so
                    // waiting for `pending() == 0` would park the corpse
                    // forever: its backlog is forfeit, reap immediately
                    // (freeing the slot — and the segment — for reuse).
                    if probe.pending() == 0 || placement.shared.quarantine_reason().is_some() {
                        self.reap_scratch.push(AppId(*id));
                    } else {
                        // The producer died with beats still in the ring.
                        // Clear the slot's skip countdown so the *next*
                        // tick drains the stragglers and the reap after
                        // it collects the corpse — instead of idling out
                        // up to `idle_skip_limit` quanta first.
                        self.wake_scratch.push((AppId(*id), placement.worker));
                    }
                }
            }
        }
        for index in 0..self.wake_scratch.len() {
            let (id, worker) = self.wake_scratch[index];
            if worker == usize::MAX {
                self.inline_shard.wake(id);
            } else {
                self.command(worker, Command::Wake(id));
            }
        }
        if self.reap_scratch.is_empty() {
            return Vec::new();
        }
        let dead = std::mem::take(&mut self.reap_scratch);
        for id in &dead {
            self.unregister(*id);
        }
        dead
    }

    /// Runs one actuation quantum across every shard (in parallel in
    /// threaded mode) and returns the total beats processed. Blocks until
    /// every live shard has finished its quantum.
    ///
    /// Degraded, never panicking: a worker found dead (its thread
    /// panicked) is skipped from then on and its beats are simply absent
    /// from the count — the other shards keep being served. Use
    /// [`PowerDialDaemon::try_tick`] to observe a death when it happens.
    pub fn tick(&mut self) -> u64 {
        self.tick_impl().0
    }

    /// [`PowerDialDaemon::tick`] that surfaces a worker death: returns
    /// [`ControlError::ShardDead`] (naming the first dead shard) on the
    /// tick that *detects* the death, after still collecting every live
    /// shard's quantum. Subsequent ticks skip the dead shard silently and
    /// return `Ok` again, so a supervision loop can log the event once and
    /// keep serving the surviving shards.
    ///
    /// # Errors
    ///
    /// [`ControlError::ShardDead`] when a worker thread was newly found
    /// dead during this tick.
    pub fn try_tick(&mut self) -> Result<u64, ControlError> {
        match self.tick_impl() {
            (_, Some(shard)) => Err(ControlError::ShardDead { shard }),
            (beats, None) => Ok(beats),
        }
    }

    /// Shared tick body: broadcast to live, non-empty workers first (so
    /// their shards run concurrently with the inline shard), run the
    /// inline shard, then collect acks. Returns the beats processed by the
    /// shards that answered plus the first worker newly discovered dead,
    /// if any. Allocation-free: the pending list is a reused buffer.
    fn tick_impl(&mut self) -> (u64, Option<usize>) {
        let mut newly_dead = None;
        self.tick_pending.clear();
        for index in 0..self.workers.len() {
            if self.workers[index].dead || self.workers[index].apps == 0 {
                continue;
            }
            match self.workers[index].commands.send(Command::Tick) {
                Ok(()) => self.tick_pending.push(index),
                Err(_) => {
                    self.mark_dead(index);
                    newly_dead.get_or_insert(index);
                }
            }
        }
        let mut beats = self.inline_shard.run_quantum();
        for pending in 0..self.tick_pending.len() {
            let index = self.tick_pending[pending];
            match self.workers[index].acks.recv() {
                Ok(shard_beats) => beats += shard_beats,
                Err(_) => {
                    self.mark_dead(index);
                    newly_dead.get_or_insert(index);
                }
            }
        }
        self.total_beats += beats;
        self.ticks += 1;
        (beats, newly_dead)
    }

    /// Number of applications currently registered.
    pub fn app_count(&self) -> usize {
        self.placements.len()
    }

    /// Total beats processed across all ticks.
    pub fn total_beats(&self) -> u64 {
        self.total_beats
    }

    /// Number of ticks (actuation quanta) run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Collects a [`TelemetrySnapshot`] across every shard: per-app
    /// beat-latency and QoS-loss histograms, exact fleet-wide rollups,
    /// and the merged decision trace. Render it with
    /// [`TelemetrySnapshot::to_json`].
    ///
    /// Cold path by design: the walk runs between quanta (worker shards
    /// answer a `Telemetry` command from their command loop, the inline
    /// shard is read directly), clones histogram state rather than
    /// draining it, and is the one telemetry operation allowed to
    /// allocate. Dead workers are skipped — their apps' metrics are
    /// absent from the snapshot, matching the daemon's degraded-shard
    /// contract. With [`DaemonConfig::telemetry`] off the snapshot is
    /// empty (no apps, no trace).
    pub fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        let mut shards = Vec::with_capacity(self.workers.len() + 1);
        shards.push(self.inline_shard.telemetry());
        for index in 0..self.workers.len() {
            if self.workers[index].apps == 0 {
                continue;
            }
            if self.workers[index].dead {
                // The worker can't answer a command, but its shard
                // outlives it: read the telemetry post-mortem through the
                // façade's handle (the corpse's apps stay visible until
                // `respawn_dead` migrates them).
                let guard = self.workers[index]
                    .shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                shards.push(guard.telemetry());
                continue;
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            if self.command(index, Command::Telemetry(reply_tx)).is_none() {
                continue;
            }
            // The ack arrived, so the worker's send preceded it; a recv
            // failure here means the receiver outlived a poisoned send
            // and the shard contributed nothing.
            if let Ok(shard) = reply_rx.try_recv() {
                shards.push(shard);
            }
        }
        TelemetrySnapshot::from_shards(self.ticks, self.total_beats, shards, self.incident_counts())
    }

    /// Worker threads in use (0 = inline mode).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker threads still alive (dead = panicked mid-quantum). Equals
    /// [`PowerDialDaemon::workers`] until a shard dies.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.dead).count()
    }

    /// Resurrects every dead worker: joins the corpse, recovers its shard
    /// post-mortem, blames (quarantines) the app whose step was in flight
    /// when the thread died, reconciles the shard's slots against the
    /// façade's placements, and migrates the surviving apps — *live*
    /// control state, not a warm-start rebuild — onto a freshly spawned
    /// thread at the same worker index, so every placement stays valid.
    /// Returns the number of shards respawned.
    ///
    /// Call it from the supervision loop next to
    /// [`PowerDialDaemon::reap_dead`]; a fleet then resumes full service
    /// within one supervision cycle of a shard death, losing nothing
    /// beyond what died mid-quantum (beats still in the survivors'
    /// channels are drained by the next tick — they live in the channels,
    /// not the dead thread).
    ///
    /// If spawning the replacement thread fails, the recovered apps fall
    /// back onto the inline shard instead (service continuity over
    /// parallelism); the worker then stays dead.
    pub fn respawn_dead(&mut self) -> usize {
        let mut respawned = 0;
        for index in 0..self.workers.len() {
            if self.workers[index].dead {
                respawned += usize::from(self.respawn_worker(index));
            }
        }
        respawned
    }

    /// Resurrects one dead worker (see [`PowerDialDaemon::respawn_dead`]).
    /// Returns `true` when a replacement thread now serves the shard's
    /// surviving apps at the same index.
    fn respawn_worker(&mut self, index: usize) -> bool {
        // Join the corpse first: afterwards no other thread can hold a
        // clone of the shard handle, so the unwrap below cannot race.
        if let Some(thread) = self.workers[index].thread.take() {
            let _ = thread.join();
        }
        let placeholder = Arc::new(Mutex::new(DaemonShard::new()));
        let old_arc = std::mem::replace(&mut self.workers[index].shard, placeholder);
        let mut shard = match Arc::try_unwrap(old_arc) {
            // An injected `Crash` panics while holding the lock, so the
            // mutex is typically poisoned — the state under it is exactly
            // what the dead worker last saw, and recovery wants it.
            Ok(mutex) => mutex
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            Err(arc) => {
                // Unreachable after the join; put the handle back and
                // leave the worker parked rather than lose its apps.
                self.workers[index].shard = arc;
                return false;
            }
        };
        // Blame exactly one app: the step that was executing when the
        // thread died. Contained faults never reach this path (the
        // quantum loop clears `in_flight` after each guard); only a panic
        // that escaped containment — e.g. an injected worker crash —
        // leaves it set.
        if let Some(blamed) = shard.in_flight.take() {
            let DaemonShard {
                apps,
                trace,
                safe_point,
                ..
            } = &mut shard;
            if let Some(slot) = apps.iter_mut().find(|slot| slot.id.value() == blamed) {
                if slot.quarantined.is_none() {
                    DaemonShard::quarantine_slot(slot, *safe_point, trace, QuarantineReason::Panic);
                }
            }
        }
        // Reconcile both directions. Apps unregistered while the worker
        // was dead lost their placement but kept their slot: evict them
        // now (resetting their segments, as a live unregister would).
        let stale: Vec<AppId> = shard
            .apps
            .iter()
            .map(|slot| slot.id)
            .filter(|id| !self.placements.contains_key(&id.value()))
            .collect();
        for id in stale {
            shard.remove(id);
        }
        // Apps registered toward the dead worker whose `Register` command
        // died in the channel never reached the shard: their slot (and
        // channel) is gone, so the registration is void.
        self.placements
            .retain(|id, placement| placement.worker != index || shard.contains(AppId(*id)));
        // Incident trace: the death, the respawn, and one record per
        // migrated app (records materialize when the shard is recovered,
        // which is also the only point the façade can touch its trace).
        let incident = |reason: TraceReason, app: u64| DecisionTraceRecord {
            seq: 0,
            timestamp: Timestamp::from_nanos(0),
            app,
            point_idx: 0,
            reason,
            gain: 0.0,
            achieved_speedup: 0.0,
            qos_loss: 0.0,
        };
        shard
            .trace
            .push(incident(TraceReason::ShardDead, index as u64));
        let survivors = shard.apps.len() as u64;
        match Self::spawn_worker(index, &self.config) {
            Ok(replacement) => {
                shard
                    .trace
                    .push(incident(TraceReason::ShardRespawned, index as u64));
                {
                    let DaemonShard { apps, trace, .. } = &mut shard;
                    for slot in apps.iter() {
                        trace.push(incident(TraceReason::Migrated, slot.id.value()));
                    }
                }
                let old = std::mem::replace(&mut self.workers[index], replacement);
                drop(old);
                // Move the recovered shard — apps, trace, scratch — into
                // the replacement wholesale: migration preserves live
                // controller state bit-for-bit, which is strictly stronger
                // than the warm-start block a cross-process successor
                // would rebuild from.
                *self.workers[index]
                    .shard
                    .lock()
                    .expect("fresh shard mutex cannot be poisoned") = shard;
                self.workers[index].apps = survivors as usize;
                self.shard_respawns += 1;
                self.apps_migrated += survivors;
                true
            }
            Err(_) => {
                // No replacement thread: fall back to the inline shard so
                // the survivors keep being served, just not in parallel.
                for record in shard.trace.iter() {
                    self.inline_shard.trace.push(*record);
                }
                for slot in shard.apps.drain(..) {
                    if let Some(placement) = self.placements.get_mut(&slot.id.value()) {
                        placement.worker = usize::MAX;
                    }
                    self.inline_shard
                        .trace
                        .push(incident(TraceReason::Migrated, slot.id.value()));
                    self.inline_shard.push_slot(slot);
                }
                self.workers[index].apps = 0;
                self.apps_migrated += survivors;
                false
            }
        }
    }

    /// Fault-injection hook (test-only by convention): arms `id` so its
    /// next processing step panics *inside* the per-app containment
    /// guard. Returns `false` for an unknown app or one parked on a dead
    /// shard.
    pub fn inject_app_panic(&mut self, id: AppId) -> bool {
        match self.placements.get(&id.0).map(|placement| placement.worker) {
            None => false,
            Some(usize::MAX) => self.inline_shard.arm_panic(id),
            Some(worker) => self.command(worker, Command::ArmPanic(id)) == Some(1),
        }
    }

    /// Fault-injection hook (test-only by convention): kills worker
    /// `worker`'s thread with a panic that escapes containment — the
    /// thread dies holding its shard lock, the worst case resurrection
    /// must handle. Returns `true` once the worker is observed dead.
    pub fn inject_worker_panic(&mut self, worker: usize) -> bool {
        if worker >= self.workers.len() || self.workers[worker].dead {
            return false;
        }
        // `Crash` is never acknowledged: `command` observes the death on
        // the ack channel and marks the worker dead.
        let _ = self.command(worker, Command::Crash);
        self.workers[worker].dead
    }

    /// Quarantine state of `id` as the façade observes it (through the
    /// app's shared decision atomics — no round-trip to the owning
    /// worker). `None` while healthy or for an unknown id.
    pub fn quarantine_reason(&self, id: AppId) -> Option<QuarantineReason> {
        self.placements
            .get(&id.0)
            .and_then(|placement| placement.shared.quarantine_reason())
    }

    /// Number of currently quarantined (parked but not yet evicted) apps.
    pub fn quarantined_apps(&self) -> usize {
        self.placements
            .values()
            .filter(|placement| placement.shared.quarantine_reason().is_some())
            .count()
    }

    /// Worker-thread deaths observed so far (lifetime count).
    pub fn shard_deaths(&self) -> u64 {
        self.shard_deaths
    }

    /// Dead workers successfully resurrected by
    /// [`PowerDialDaemon::respawn_dead`].
    pub fn shard_respawns(&self) -> u64 {
        self.shard_respawns
    }

    /// Apps migrated off dead shards (onto replacements or the inline
    /// shard).
    pub fn apps_migrated(&self) -> u64 {
        self.apps_migrated
    }

    /// The fault-containment incident counters, as embedded in
    /// [`PowerDialDaemon::telemetry_snapshot`]'s `incidents` section.
    pub fn incident_counts(&self) -> IncidentCounts {
        IncidentCounts {
            shard_deaths: self.shard_deaths,
            shard_respawns: self.shard_respawns,
            apps_migrated: self.apps_migrated,
            quarantined_apps: self.quarantined_apps() as u64,
        }
    }

    /// In inline mode (`workers: 0`), the daemon's single shard, for tests
    /// and diagnostics that need to observe per-beat decisions via
    /// [`DaemonShard::run_quantum_with`]. `None` in threaded mode.
    ///
    /// Quanta run directly on the shard bypass the daemon's
    /// [`PowerDialDaemon::total_beats`]/[`PowerDialDaemon::ticks`]
    /// bookkeeping.
    pub fn inline_shard_mut(&mut self) -> Option<&mut DaemonShard> {
        if self.workers.is_empty() {
            Some(&mut self.inline_shard)
        } else {
            None
        }
    }

    /// Sends a command to a worker and waits for its acknowledgement.
    /// `None` when the worker is (or is discovered to be) dead — the
    /// command had no effect.
    fn command(&mut self, worker: usize, command: Command) -> Option<u64> {
        if self.workers[worker].dead {
            return None;
        }
        if self.workers[worker].commands.send(command).is_err() {
            self.mark_dead(worker);
            return None;
        }
        match self.workers[worker].acks.recv() {
            Ok(ack) => Some(ack),
            Err(_) => {
                self.mark_dead(worker);
                None
            }
        }
    }
}

impl Drop for PowerDialDaemon {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // The worker may already be gone if it panicked; ignore errors.
            let _ = worker.commands.send(Command::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// Worker thread body: obey commands against the shared shard (one
/// uncontended lock per command — the façade only contends for it during
/// post-mortem recovery, when this thread is already gone), acknowledging
/// each one.
fn worker_main(
    shard: Arc<Mutex<DaemonShard>>,
    commands: mpsc::Receiver<Command>,
    acks: mpsc::Sender<u64>,
) {
    while let Ok(command) = commands.recv() {
        // A poisoned mutex here would mean a previous command's panic
        // escaped — unreachable today (the quantum loop contains panics
        // and a `Crash` kills the thread for good), but recovering the
        // guard is the conservative choice either way.
        let mut guard = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ack = match command {
            Command::Register(slot) => {
                guard.push_slot(*slot);
                0
            }
            Command::Unregister(id) => u64::from(guard.remove(id)),
            Command::Wake(id) => u64::from(guard.wake(id)),
            Command::Telemetry(reply) => {
                // A dropped receiver just means the façade gave up on
                // the snapshot; the ack below keeps the protocol in
                // lockstep either way.
                let _ = reply.send(guard.telemetry());
                0
            }
            Command::Tick => guard.run_quantum(),
            Command::ArmPanic(id) => u64::from(guard.arm_panic(id)),
            // Deliberately panics while *holding the lock*: the façade's
            // resurrection path must cope with a poisoned shard mutex,
            // the worst-case a real escaped panic would leave behind.
            Command::Crash => panic!("injected worker crash (fault-injection hook)"),
            Command::Shutdown => break,
        };
        drop(guard);
        if acks.send(ack).is_err() {
            break;
        }
    }
}

/// Where an [`IdleLadder`] currently sits: the escalation stage an idle
/// driver loop is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Busy-spin with [`std::hint::spin_loop`]: lowest wake latency, one
    /// core burned. The first rung after any work.
    Spin,
    /// Yield the core to the scheduler each iteration.
    Yield,
    /// Sleep in exponentially growing, bounded naps (up to
    /// [`IdleLadder::MAX_PARK`]): a persistently idle daemon stops burning
    /// a core, yet a waking fleet is never more than one nap away.
    Park,
}

/// The spin→yield→park escalation for driver loops that tick a daemon
/// continuously (the supervisor's serve loop, a dedicated daemon process).
///
/// Call [`IdleLadder::idle`] after an iteration that found no work — it
/// spins, yields, or naps according to the current rung and escalates.
/// Call [`IdleLadder::reset`] after an iteration that *did* work (beats
/// drained, an attach served) to drop back to spinning. The ladder is
/// pure policy over `std` primitives; it holds no handle to the daemon.
#[derive(Debug)]
pub struct IdleLadder {
    idle_streak: u32,
    park: std::time::Duration,
}

impl IdleLadder {
    /// Idle iterations spent spinning before the ladder yields.
    pub const SPIN_LIMIT: u32 = 64;
    /// Idle iterations spent yielding before the ladder parks.
    pub const YIELD_LIMIT: u32 = 64;
    /// First nap length once the ladder parks.
    pub const INITIAL_PARK: std::time::Duration = std::time::Duration::from_micros(50);
    /// Nap length cap: the worst-case extra latency a waking fleet sees.
    pub const MAX_PARK: std::time::Duration = std::time::Duration::from_millis(1);

    /// A ladder at its lowest rung (spinning).
    pub fn new() -> Self {
        IdleLadder {
            idle_streak: 0,
            park: IdleLadder::INITIAL_PARK,
        }
    }

    /// The rung the next [`IdleLadder::idle`] call will act on.
    pub fn rung(&self) -> LadderRung {
        if self.idle_streak < IdleLadder::SPIN_LIMIT {
            LadderRung::Spin
        } else if self.idle_streak < IdleLadder::SPIN_LIMIT + IdleLadder::YIELD_LIMIT {
            LadderRung::Yield
        } else {
            LadderRung::Park
        }
    }

    /// Records an idle iteration: spin, yield, or nap according to the
    /// current rung, escalate, and return the rung that was acted on.
    pub fn idle(&mut self) -> LadderRung {
        let rung = self.rung();
        match rung {
            LadderRung::Spin => std::hint::spin_loop(),
            LadderRung::Yield => std::thread::yield_now(),
            LadderRung::Park => {
                std::thread::sleep(self.park);
                self.park = (self.park * 2).min(IdleLadder::MAX_PARK);
            }
        }
        self.idle_streak = self.idle_streak.saturating_add(1);
        rung
    }

    /// Records a productive iteration: back to spinning, nap length reset.
    pub fn reset(&mut self) {
        self.idle_streak = 0;
        self.park = IdleLadder::INITIAL_PARK;
    }
}

impl Default for IdleLadder {
    fn default() -> Self {
        IdleLadder::new()
    }
}

pub mod naive {
    //! The serial, mutex-guarded multi-app baseline.
    //!
    //! What the daemon looked like before the lock-free rework: every
    //! application's beats go through a `Mutex<VecDeque>` channel
    //! ([`MutexChannel`]), and one thread drains and controls every
    //! application in sequence. Kept for the `multiapp` benchmark (the
    //! speedup denominator) and for equivalence tests — the control code
    //! itself is *shared* with the lock-free shard, so any divergence
    //! between the two is a channel bug, not a control bug.

    use super::{AppId, AppShared, ControlState, DaemonConfig};
    use crate::error::ControlError;
    use crate::runtime::{PowerDialRuntime, RuntimeConfig};
    use powerdial_heartbeats::channel::BeatSample;
    use powerdial_heartbeats::naive::MutexChannel;
    use powerdial_heartbeats::{HeartbeatTag, SlidingWindow, Timestamp};
    use powerdial_knobs::KnobTable;
    use std::sync::Arc;

    /// The application-side handle of a [`SerialMutexDaemon`] registration:
    /// same surface as [`super::AppHandle`], but every beat takes the
    /// channel mutex.
    #[derive(Debug, Clone)]
    pub struct NaiveAppHandle {
        id: AppId,
        channel: MutexChannel<BeatSample>,
        shared: Arc<AppShared>,
        next_tag: HeartbeatTag,
        last_timestamp: Option<Timestamp>,
    }

    impl NaiveAppHandle {
        /// The application's daemon-assigned identifier.
        pub fn id(&self) -> AppId {
            self.id
        }

        /// Emits one heartbeat at `now` (locks the channel mutex).
        ///
        /// # Errors
        ///
        /// Returns the rejected record when the channel is full.
        pub fn beat(&mut self, now: Timestamp) -> Result<(), BeatSample> {
            let latency = match self.last_timestamp {
                Some(last) => now - last,
                None => powerdial_heartbeats::TimestampDelta::ZERO,
            };
            let sample = BeatSample {
                tag: self.next_tag,
                timestamp: now,
                latency,
            };
            self.next_tag = self.next_tag.next();
            self.last_timestamp = Some(now);
            self.channel.try_push(sample)
        }

        /// The latest decided knob gain, or `None` before the first
        /// decision.
        pub fn latest_gain(&self) -> Option<f64> {
            self.shared.latest_gain()
        }

        /// Total beats the daemon has processed for this application.
        pub fn beats_processed(&self) -> u64 {
            self.shared.beats_processed()
        }
    }

    /// One app of the serial daemon: mutex channel + the shared control
    /// state.
    struct NaiveSlot {
        id: AppId,
        channel: MutexChannel<BeatSample>,
        control: ControlState,
    }

    /// The pre-optimization multi-app runtime: mutex-guarded channels, one
    /// thread, apps drained and controlled strictly in sequence.
    pub struct SerialMutexDaemon {
        config: DaemonConfig,
        apps: Vec<NaiveSlot>,
        scratch: Vec<BeatSample>,
        next_id: u64,
        total_beats: u64,
    }

    impl SerialMutexDaemon {
        /// Creates a serial daemon (the `workers` field of the
        /// configuration is ignored — there is exactly one, the caller).
        ///
        /// # Errors
        ///
        /// Returns [`ControlError::ZeroChannelCapacity`] or
        /// [`ControlError::ZeroWindowSize`] for an invalid configuration.
        pub fn new(config: DaemonConfig) -> Result<Self, ControlError> {
            config.validate()?;
            Ok(SerialMutexDaemon {
                config,
                apps: Vec::new(),
                scratch: Vec::new(),
                next_id: 0,
                total_beats: 0,
            })
        }

        /// Registers an application, returning its mutex-channel handle.
        ///
        /// # Errors
        ///
        /// Returns [`ControlError::ZeroQuantum`] when the runtime
        /// configuration has a zero-heartbeat quantum.
        pub fn register(
            &mut self,
            config: RuntimeConfig,
            table: KnobTable,
        ) -> Result<NaiveAppHandle, ControlError> {
            let runtime = PowerDialRuntime::new(config, table)?;
            let channel = MutexChannel::new(self.config.channel_capacity);
            let shared = Arc::new(AppShared::default());
            let id = AppId(self.next_id);
            self.next_id += 1;
            self.apps.push(NaiveSlot {
                id,
                channel: channel.clone(),
                control: ControlState {
                    runtime,
                    window: SlidingWindow::new(self.config.window_size),
                    shared: Arc::clone(&shared),
                    decisions: 0,
                    seed_rate: None,
                },
            });
            Ok(NaiveAppHandle {
                id,
                channel,
                shared,
                next_tag: HeartbeatTag::default(),
                last_timestamp: None,
            })
        }

        /// Runs one actuation quantum over every app, serially, on the
        /// calling thread. Returns the total beats processed.
        ///
        /// # Panics
        ///
        /// On a poisoned latency stream whose summed nanoseconds overflow
        /// the rate window — the baseline has no quarantine machinery (the
        /// sharded daemon parks such an app instead).
        pub fn tick(&mut self) -> u64 {
            let mut beats = 0;
            for slot in &mut self.apps {
                slot.channel.drain_into(&mut self.scratch);
                beats += slot
                    .control
                    .process_drained(slot.id, &self.scratch, &mut |_, _| {})
                    .expect("window latency sum overflow in serial baseline");
            }
            self.total_beats += beats;
            beats
        }

        /// Number of applications registered.
        pub fn app_count(&self) -> usize {
            self.apps.len()
        }

        /// Total beats processed across all ticks.
        pub fn total_beats(&self) -> u64 {
            self.total_beats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::runtime::RuntimeConfig;
    use powerdial_knobs::{CalibrationPoint, ConfigParameter, ParameterSpace};
    use powerdial_qos::{QosLoss, QosLossBound};

    fn test_table() -> KnobTable {
        let speedups = [1.0, 2.0, 4.0];
        let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
            .build()
            .unwrap();
        let points = speedups
            .iter()
            .enumerate()
            .map(|(i, &s)| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: s,
                qos_loss: QosLoss::new((s - 1.0) * 0.02),
            })
            .collect();
        KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
    }

    fn runtime_config() -> RuntimeConfig {
        RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
    }

    fn inline_daemon() -> PowerDialDaemon {
        PowerDialDaemon::new(DaemonConfig {
            workers: 0,
            channel_capacity: 64,
            window_size: 20,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            PowerDialDaemon::new(DaemonConfig {
                workers: 0,
                channel_capacity: 0,
                window_size: 20,
                inline_apps: 0,
                idle_skip_limit: 0,
                drain_cap: 0,
                telemetry: true,
                trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
                safe_point: 0,
            }),
            Err(ControlError::ZeroChannelCapacity)
        ));
        assert!(matches!(
            PowerDialDaemon::new(DaemonConfig {
                workers: 0,
                channel_capacity: 8,
                window_size: 0,
                inline_apps: 0,
                idle_skip_limit: 0,
                drain_cap: 0,
                telemetry: true,
                trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
                safe_point: 0,
            }),
            Err(ControlError::ZeroWindowSize)
        ));
        assert!(DaemonConfig::default().workers >= 1);
        assert_eq!(DaemonConfig::with_workers(3).workers, 3);
    }

    #[test]
    fn inline_daemon_controls_a_slow_app() {
        let mut daemon = inline_daemon();
        let mut app = daemon.register(runtime_config(), test_table()).unwrap();
        assert_eq!(daemon.app_count(), 1);
        assert!(app.latest_point().is_none());
        assert!(app.latest_gain().is_none());

        // 20 beats/s against a 30 beats/s target: the controller must ask
        // for speedup, so boosted settings appear.
        let mut now = Timestamp::ZERO;
        let mut boosted = false;
        for _ in 0..10 {
            for _ in 0..20 {
                now += powerdial_heartbeats::TimestampDelta::from_millis(50);
                app.beat(now).unwrap();
            }
            daemon.tick();
            if app.latest_gain().unwrap_or(1.0) > 1.0 {
                boosted = true;
            }
        }
        assert!(boosted, "slow app should receive a boosted setting");
        assert_eq!(app.beats_processed(), 200);
        assert_eq!(daemon.total_beats(), 200);
        assert_eq!(daemon.ticks(), 10);
        assert!(app.achieved_speedup().unwrap() >= 1.0);
        assert!(app.expected_qos_loss().unwrap() >= 0.0);
        assert_eq!(app.beats_rejected(), 0);
    }

    #[test]
    fn threaded_daemon_matches_inline_daemon() {
        // Same beat streams through a 2-worker daemon and the inline one:
        // per-app decision state must end identical (the shards run the
        // same code; only the thread that runs it differs).
        let mut threaded = PowerDialDaemon::new(DaemonConfig {
            workers: 2,
            channel_capacity: 64,
            window_size: 20,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap();
        let mut inline = inline_daemon();

        let mut threaded_apps: Vec<AppHandle> = (0..4)
            .map(|_| threaded.register(runtime_config(), test_table()).unwrap())
            .collect();
        let mut inline_apps: Vec<AppHandle> = (0..4)
            .map(|_| inline.register(runtime_config(), test_table()).unwrap())
            .collect();
        assert_eq!(threaded.workers(), 2);

        let mut now = Timestamp::ZERO;
        for _ in 0..8 {
            for _ in 0..20 {
                now += powerdial_heartbeats::TimestampDelta::from_millis(40);
                for (app_index, app) in threaded_apps.iter_mut().enumerate() {
                    // Distinct per-app latencies so apps genuinely differ.
                    let offset =
                        powerdial_heartbeats::TimestampDelta::from_millis(app_index as u64);
                    app.beat(now + offset).unwrap();
                }
                for (app_index, app) in inline_apps.iter_mut().enumerate() {
                    let offset =
                        powerdial_heartbeats::TimestampDelta::from_millis(app_index as u64);
                    app.beat(now + offset).unwrap();
                }
            }
            let a = threaded.tick();
            let b = inline.tick();
            assert_eq!(a, b);
        }
        for (threaded_app, inline_app) in threaded_apps.iter().zip(&inline_apps) {
            assert_eq!(threaded_app.beats_processed(), inline_app.beats_processed());
            assert_eq!(threaded_app.latest_point(), inline_app.latest_point());
            assert_eq!(
                threaded_app.latest_gain().unwrap().to_bits(),
                inline_app.latest_gain().unwrap().to_bits()
            );
            assert_eq!(
                threaded_app.achieved_speedup().unwrap().to_bits(),
                inline_app.achieved_speedup().unwrap().to_bits()
            );
        }
    }

    #[test]
    fn unregister_inline_and_threaded() {
        for workers in [0usize, 2] {
            let mut daemon = PowerDialDaemon::new(DaemonConfig {
                workers,
                channel_capacity: 16,
                window_size: 4,
                inline_apps: 0,
                idle_skip_limit: 0,
                drain_cap: 0,
                telemetry: true,
                trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
                safe_point: 0,
            })
            .unwrap();
            let mut a = daemon.register(runtime_config(), test_table()).unwrap();
            let b = daemon.register(runtime_config(), test_table()).unwrap();
            assert_eq!(daemon.app_count(), 2);

            assert!(daemon.unregister(b.id()));
            assert!(!daemon.unregister(b.id()), "double unregister");
            assert_eq!(daemon.app_count(), 1);

            // The remaining app still gets controlled.
            let mut now = Timestamp::ZERO;
            for _ in 0..8 {
                now += powerdial_heartbeats::TimestampDelta::from_millis(10);
                a.beat(now).unwrap();
            }
            assert_eq!(daemon.tick(), 8);
            assert_eq!(a.beats_processed(), 8);
        }
    }

    #[test]
    fn serial_mutex_daemon_matches_lock_free_daemon() {
        // Identical beat streams, identical decisions: the mutex baseline
        // shares the control code, so the only difference is the channel.
        let mut lock_free = inline_daemon();
        let mut serial = naive::SerialMutexDaemon::new(DaemonConfig {
            workers: 0,
            channel_capacity: 64,
            window_size: 20,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap();

        let mut fast_app = lock_free.register(runtime_config(), test_table()).unwrap();
        let mut slow_app = serial.register(runtime_config(), test_table()).unwrap();

        let mut now = Timestamp::ZERO;
        for quantum in 0..12 {
            let period_ms = 20 + (quantum % 5) * 10;
            for _ in 0..20 {
                now += powerdial_heartbeats::TimestampDelta::from_millis(period_ms);
                fast_app.beat(now).unwrap();
                slow_app.beat(now).unwrap();
            }
            assert_eq!(lock_free.tick(), serial.tick());
            assert_eq!(
                fast_app.latest_gain().unwrap().to_bits(),
                slow_app.latest_gain().unwrap().to_bits(),
                "decision diverged at quantum {quantum}"
            );
        }
        assert_eq!(fast_app.beats_processed(), slow_app.beats_processed());
        assert_eq!(serial.app_count(), 1);
        assert_eq!(serial.total_beats(), 240);
    }

    #[test]
    fn shm_backed_app_is_controlled_like_a_channel_app() {
        use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};

        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
        let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

        let mut daemon = inline_daemon();
        let view = daemon
            .register_shm(runtime_config(), test_table(), consumer)
            .unwrap();
        assert_eq!(daemon.app_count(), 1);
        assert!(view.latest_point().is_none());

        // 20 beats/s against a 30 beats/s target, through shared memory.
        let mut now = Timestamp::ZERO;
        let mut tag = HeartbeatTag::default();
        let mut boosted = false;
        for _ in 0..10 {
            for _ in 0..20 {
                let last = now;
                now += powerdial_heartbeats::TimestampDelta::from_millis(50);
                producer
                    .try_push(BeatSample {
                        tag,
                        timestamp: now,
                        latency: if tag.value() == 0 {
                            powerdial_heartbeats::TimestampDelta::ZERO
                        } else {
                            now - last
                        },
                    })
                    .unwrap();
                tag = tag.next();
            }
            daemon.tick();
            if view.latest_gain().unwrap_or(1.0) > 1.0 {
                boosted = true;
            }
        }
        assert!(boosted, "slow shm app should receive a boosted setting");
        assert_eq!(view.beats_processed(), 200);
        assert!(view.achieved_speedup().unwrap() >= 1.0);
        assert!(view.expected_qos_loss().unwrap() >= 0.0);
    }

    #[test]
    fn reap_dead_collects_abandoned_shm_apps() {
        use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
        use std::sync::atomic::Ordering;

        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
        let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

        let mut daemon = inline_daemon();
        let view = daemon
            .register_shm(runtime_config(), test_table(), consumer)
            .unwrap();
        // Channel-backed apps are never reaped.
        let _channel_app = daemon.register(runtime_config(), test_table()).unwrap();
        assert_eq!(daemon.app_count(), 2);

        // Producer alive: nothing to reap.
        assert!(daemon.reap_dead().is_empty());

        // Publish two beats, then simulate the producing process dying by
        // replacing its PID with one that cannot exist.
        for tag in 0..2u64 {
            producer
                .try_push(BeatSample {
                    tag: HeartbeatTag(tag),
                    timestamp: Timestamp::from_millis(tag * 40),
                    latency: powerdial_heartbeats::TimestampDelta::from_millis(40 * tag.min(1)),
                })
                .unwrap();
        }
        segment
            .header()
            .producer_pid
            .store(0x7FFF_FF00, Ordering::Release);

        // Dead producer but undrained beats: the tail is not abandoned.
        assert!(daemon.reap_dead().is_empty());
        assert_eq!(daemon.tick(), 2, "stragglers survive the producer");
        assert_eq!(view.beats_processed(), 2);

        // Drained and dead: reaped.
        assert_eq!(daemon.reap_dead(), vec![view.id()]);
        assert_eq!(daemon.app_count(), 1);
        assert!(daemon.reap_dead().is_empty(), "reap is idempotent");
    }

    /// Regression: idle-skip used to starve death detection. A producer
    /// SIGKILLed while its slot was deep in a skip countdown left its
    /// final beats undrained for up to `idle_skip_limit` further quanta
    /// (the skipped drains never touched the transport), postponing the
    /// reap by the same amount. `reap_dead` now probes liveness
    /// independently of skip state and wakes the slot, so the next
    /// tick+reap round collects the corpse.
    #[test]
    fn killed_producer_behind_idle_skipped_slot_is_reaped_promptly() {
        use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
        use std::sync::atomic::Ordering;

        let limit = 8u32;
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers: 0,
            channel_capacity: 64,
            window_size: 20,
            inline_apps: 0,
            idle_skip_limit: limit,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap();

        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
        let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let view = daemon
            .register_shm(runtime_config(), test_table(), consumer)
            .unwrap();

        // Idle the app until its slot is mid skip-countdown: `limit` empty
        // polls build the streak, one more arms the countdown, one more
        // starts consuming it.
        for _ in 0..limit + 2 {
            assert_eq!(daemon.tick(), 0);
        }

        // The producer publishes two last beats and is SIGKILLed.
        for tag in 0..2u64 {
            producer
                .try_push(BeatSample {
                    tag: HeartbeatTag(tag),
                    timestamp: Timestamp::from_millis(tag * 40),
                    latency: powerdial_heartbeats::TimestampDelta::from_millis(40 * tag.min(1)),
                })
                .unwrap();
        }
        segment
            .header()
            .producer_pid
            .store(0x7FFF_FF00, Ordering::Release);

        // The reaper sees the death through the skip state. No reap yet —
        // the tail is pending — but the slot is woken.
        assert!(daemon.reap_dead().is_empty());
        // The very next tick drains the stragglers despite the countdown
        // (pre-fix: up to `limit` zero-beat quanta first)...
        assert_eq!(daemon.tick(), 2, "wake must defeat the skip countdown");
        assert_eq!(view.beats_processed(), 2);
        // ...and the reap right after it collects the corpse.
        assert_eq!(daemon.reap_dead(), vec![view.id()]);
        assert_eq!(daemon.app_count(), 0);
    }

    #[test]
    fn backpressure_surfaces_on_full_channel() {
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers: 0,
            channel_capacity: 4,
            window_size: 4,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap();
        let mut app = daemon.register(runtime_config(), test_table()).unwrap();
        let mut now = Timestamp::ZERO;
        let mut rejected = 0;
        for _ in 0..10 {
            now += powerdial_heartbeats::TimestampDelta::from_millis(10);
            if app.beat(now).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 6, "capacity-4 channel accepts 4 of 10 beats");
        assert_eq!(app.beats_rejected(), 6);
        assert_eq!(daemon.tick(), 4);
        // After a drain, pushes flow again.
        now += powerdial_heartbeats::TimestampDelta::from_millis(10);
        assert!(app.beat(now).is_ok());
    }

    /// Pushes one 20-beat quantum of 50 ms-spaced beats (20 beats/s against
    /// the 30 beats/s target) into an shm producer.
    fn push_slow_quantum(
        producer: &mut powerdial_heartbeats::shm::ShmProducer,
        now: &mut Timestamp,
        tag: &mut HeartbeatTag,
    ) {
        for _ in 0..20 {
            let last = *now;
            *now += powerdial_heartbeats::TimestampDelta::from_millis(50);
            producer
                .try_push(BeatSample {
                    tag: *tag,
                    timestamp: *now,
                    latency: if tag.value() == 0 {
                        powerdial_heartbeats::TimestampDelta::ZERO
                    } else {
                        *now - last
                    },
                })
                .unwrap();
            *tag = tag.next();
        }
    }

    #[test]
    fn adopted_daemon_resumes_predecessor_state_and_drains_outage_beats() {
        use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
        use std::sync::atomic::Ordering;

        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
        let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

        let mut daemon = inline_daemon();
        let view = daemon
            .register_shm(runtime_config(), test_table(), consumer)
            .unwrap();

        // Five quanta of slow beats: the predecessor daemon publishes
        // decisions and keeps the warm-start block current.
        let mut now = Timestamp::ZERO;
        let mut tag = HeartbeatTag::default();
        for _ in 0..5 {
            push_slow_quantum(&mut producer, &mut now, &mut tag);
            daemon.tick();
        }
        let last_point = view.latest_point().unwrap();
        let last_gain = view.latest_gain().unwrap();
        assert!(matches!(
            segment.header().read_warm_state(),
            WarmRead::Ready(_)
        ));

        // SIGKILL the predecessor: nothing is reset, the consumer claim
        // goes stale. (mem::forget models the kill — Drop never runs — and
        // the PID overwrite models the claimant process no longer existing.)
        std::mem::forget(daemon);
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);

        // The application keeps beating across the outage; beats wait in
        // the ring (they live in the segment, not the dead process).
        push_slow_quantum(&mut producer, &mut now, &mut tag);

        // A successor daemon adopts the segment.
        let adopted = ShmConsumer::adopt(Arc::clone(&segment)).unwrap();
        let mut successor = inline_daemon();
        let view2 = successor
            .register_shm_adopted(runtime_config(), test_table(), adopted)
            .unwrap();

        // The predecessor's final decision is visible *before* the first
        // tick — observers never regress to "no decision yet".
        assert_eq!(view2.latest_point(), Some(last_point));
        assert_eq!(view2.latest_gain().unwrap().to_bits(), last_gain.to_bits());

        // The outage quantum drains in full on the first tick.
        assert_eq!(successor.tick(), 20);
        assert_eq!(view2.beats_processed(), 20);
        assert!(matches!(producer.read_decision(), DecisionRead::Ready(_)));
    }

    #[test]
    fn adopted_daemon_matches_uninterrupted_run_bit_for_bit() {
        use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
        use std::sync::atomic::Ordering;

        // Two identical slow-beat streams. Daemon A runs ten quanta
        // uninterrupted; daemon B is killed after five and a warm-started
        // successor finishes the rest. Warm start restores the integrator
        // bit-exactly and seeds the first quantum's observed rate from the
        // warm block, so the successor's decisions are bit-identical to the
        // uninterrupted run from the first post-crash quantum onward.
        let seg_a =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
        let seg_b =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
        let mut producer_a = ShmProducer::attach(Arc::clone(&seg_a)).unwrap();
        let mut producer_b = ShmProducer::attach(Arc::clone(&seg_b)).unwrap();
        let consumer_a = ShmConsumer::attach(Arc::clone(&seg_a)).unwrap();
        let consumer_b = ShmConsumer::attach(Arc::clone(&seg_b)).unwrap();

        let mut daemon_a = inline_daemon();
        let mut daemon_b = inline_daemon();
        let view_a = daemon_a
            .register_shm(runtime_config(), test_table(), consumer_a)
            .unwrap();
        let view_b = daemon_b
            .register_shm(runtime_config(), test_table(), consumer_b)
            .unwrap();

        let mut now_a = Timestamp::ZERO;
        let mut tag_a = HeartbeatTag::default();
        let mut now_b = Timestamp::ZERO;
        let mut tag_b = HeartbeatTag::default();
        for _ in 0..5 {
            push_slow_quantum(&mut producer_a, &mut now_a, &mut tag_a);
            push_slow_quantum(&mut producer_b, &mut now_b, &mut tag_b);
            daemon_a.tick();
            daemon_b.tick();
        }
        assert_eq!(
            view_a.latest_gain().unwrap().to_bits(),
            view_b.latest_gain().unwrap().to_bits()
        );

        // Kill daemon B; its app beats on through the outage.
        std::mem::forget(daemon_b);
        seg_b
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        push_slow_quantum(&mut producer_b, &mut now_b, &mut tag_b);

        let adopted = ShmConsumer::adopt(Arc::clone(&seg_b)).unwrap();
        let mut successor = inline_daemon();
        let view_b2 = successor
            .register_shm_adopted(runtime_config(), test_table(), adopted)
            .unwrap();

        for quantum in 5..10 {
            push_slow_quantum(&mut producer_a, &mut now_a, &mut tag_a);
            daemon_a.tick();
            if quantum > 5 {
                // Quantum 5's beats were already pushed during the outage.
                push_slow_quantum(&mut producer_b, &mut now_b, &mut tag_b);
            }
            successor.tick();
            assert_eq!(view_a.latest_point(), view_b2.latest_point());
            assert_eq!(
                view_a.latest_gain().unwrap().to_bits(),
                view_b2.latest_gain().unwrap().to_bits(),
                "gain diverged at quantum {quantum}"
            );
            assert_eq!(
                view_a.achieved_speedup().unwrap().to_bits(),
                view_b2.achieved_speedup().unwrap().to_bits(),
                "achieved speedup diverged at quantum {quantum}"
            );
        }
        assert_eq!(view_b2.beats_processed(), 100);
    }

    #[test]
    fn adoption_heals_torn_decision_block() {
        use powerdial_heartbeats::shm::{
            Segment, SegmentGeometry, ShmConsumer, ShmProducer, ShmWarmState,
        };
        use std::sync::atomic::Ordering;

        // Predecessor died mid-publish (odd decision seq) but its warm
        // block survived: adoption re-synthesizes the decision from the
        // knob table so the app is not stuck on a torn seqlock forever.
        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
        let producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        segment.header().publish_warm_state(ShmWarmState {
            point_idx: 2,
            speedup_bits: 4.0f64.to_bits(),
            observed_rate_bits: 20.0f64.to_bits(),
            beat_in_quantum: 0,
        });
        segment.header().decision_seq.store(3, Ordering::Release);
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        assert!(matches!(producer.read_decision(), DecisionRead::Torn));

        let adopted = ShmConsumer::adopt(Arc::clone(&segment)).unwrap();
        let mut daemon = inline_daemon();
        let view = daemon
            .register_shm_adopted(runtime_config(), test_table(), adopted)
            .unwrap();
        match producer.read_decision() {
            DecisionRead::Ready(d) => {
                assert_eq!(d.point_idx, 2);
                assert_eq!(f64::from_bits(d.gain_bits), 4.0);
                assert_eq!(f64::from_bits(d.achieved_speedup_bits), 4.0);
                assert_eq!(f64::from_bits(d.qos_loss_bits), (4.0 - 1.0) * 0.02);
            }
            other => panic!("expected healed decision, got {other:?}"),
        }
        assert_eq!(view.latest_point(), Some(PointIdx::new(2)));
        assert_eq!(view.latest_gain(), Some(4.0));
        drop(daemon);

        // Torn decision and *no* warm state: the block is reset to Empty so
        // the application degrades per its ladder instead of spinning.
        let seg2 =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
        let producer2 = ShmProducer::attach(Arc::clone(&seg2)).unwrap();
        seg2.header().decision_seq.store(7, Ordering::Release);
        seg2.header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        assert!(matches!(producer2.read_decision(), DecisionRead::Torn));

        let adopted2 = ShmConsumer::adopt(Arc::clone(&seg2)).unwrap();
        let mut daemon2 = inline_daemon();
        let view2 = daemon2
            .register_shm_adopted(runtime_config(), test_table(), adopted2)
            .unwrap();
        assert!(matches!(producer2.read_decision(), DecisionRead::Empty));
        assert!(view2.latest_point().is_none());
    }

    #[test]
    fn reap_and_reregister_churn_resets_segment_state() {
        use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
        use std::sync::atomic::Ordering;

        // Repeated register → producer death → reap → re-register cycles on
        // one segment: every round must release the consumer claim and
        // reset both seqlock blocks, or state from a dead tenant leaks into
        // the next one.
        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
        let mut daemon = inline_daemon();
        for round in 0..5u64 {
            let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
            let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
            let view = daemon
                .register_shm(runtime_config(), test_table(), consumer)
                .unwrap();
            assert_eq!(daemon.app_count(), 1, "round {round}");

            let base = Timestamp::from_millis(round * 10_000);
            for tag in 0..2u64 {
                producer
                    .try_push(BeatSample {
                        tag: HeartbeatTag(tag),
                        timestamp: base
                            + powerdial_heartbeats::TimestampDelta::from_millis(tag * 40),
                        latency: powerdial_heartbeats::TimestampDelta::from_millis(40 * tag.min(1)),
                    })
                    .unwrap();
            }
            assert_eq!(daemon.tick(), 2, "round {round}");
            assert!(matches!(
                segment.header().read_decision(),
                DecisionRead::Ready(_)
            ));
            assert!(matches!(
                segment.header().read_warm_state(),
                WarmRead::Ready(_)
            ));

            // The producing process dies; tick-then-reap collects the app.
            segment
                .header()
                .producer_pid
                .store(0x7FFF_FF00, Ordering::Release);
            assert_eq!(daemon.reap_dead(), vec![view.id()], "round {round}");
            assert_eq!(daemon.app_count(), 0);

            // Claims released and blocks reset for the segment's next tenant.
            assert_eq!(segment.header().consumer_pid.load(Ordering::Acquire), 0);
            assert!(matches!(
                segment.header().read_decision(),
                DecisionRead::Empty
            ));
            assert!(matches!(
                segment.header().read_warm_state(),
                WarmRead::Empty
            ));

            // Free the producer role for the next round (the dead-PID
            // sentinel was stored over this process's live claim, so Drop
            // must not run — it would CAS the wrong value).
            std::mem::forget(producer);
            segment.header().producer_pid.store(0, Ordering::Release);
            segment.header().producer_nonce.store(0, Ordering::Release);
        }
    }
}
