//! The Unix-socket attach broker: how *unrelated* processes join the
//! daemon.
//!
//! Forked children inherit a segment mapping and tmpfile attachers share
//! a path, but the deployment the paper assumes — arbitrary instrumented
//! applications joining one long-running controller — needs neither
//! ancestry nor a shared filesystem location per app. The broker closes
//! that gap: the daemon binds a well-known Unix socket, a connecting
//! application speaks the fixed-size hello protocol
//! ([`powerdial_heartbeats::shm::fdpass`]), and on success the broker
//! creates a fresh memfd-backed segment, registers its consumer side with
//! the daemon, and passes the file descriptor back over `SCM_RIGHTS` —
//! the application maps it and attaches its producer side, and from then
//! on the socket is out of the picture: beats and decisions flow through
//! shared memory alone.
//!
//! The same socket also serves **crash recovery**: a client that survived
//! a daemon crash sends a hello with
//! [`powerdial_heartbeats::shm::HELLO_FLAG_REATTACH`] set and its
//! *existing* segment fd riding in the hello's own `SCM_RIGHTS` ancillary
//! data. The broker maps and validates that segment, adopts the consumer
//! role the dead predecessor left stale, and hands the adopted consumer to
//! the registration callback as [`AttachRequest::Reattach`] — a granted
//! reattach reply carries no fd back, and no beat pushed across the outage
//! is lost beyond ring capacity.
//!
//! # Robustness posture
//!
//! Every failure is contained to the one connection that caused it:
//!
//! * a **malformed or truncated hello** (wrong magic, reserved flags,
//!   zero capacity, short read, peer gone) is answered with a typed
//!   refusal where possible and the connection dropped — the accept loop
//!   keeps serving;
//! * a **slow or silent client** is bounded by the per-connection
//!   read/write timeout, so one stalled peer cannot wedge the broker
//!   (slow-loris containment);
//! * a **connection storm** beyond [`BrokerConfig::max_apps`] is refused
//!   with [`HelloStatus::Busy`] — a cheap, fixed-cost reply — rather than
//!   queueing unbounded registrations;
//! * **fd exhaustion** (or any segment-creation failure) refuses that one
//!   attach with [`HelloStatus::Resources`]; the broker itself holds no
//!   per-refusal state and survives;
//! * a client that vanishes **after** registration but before the fd
//!   reaches it is surfaced as [`AttachOutcome::GrantAbandoned`] so the
//!   caller can unregister the orphan instead of leaking it (the producer
//!   slot would read `Absent` forever — the reaper only fires on *dead*
//!   claimants).
//!
//! The `broker_faults` integration suite injects each of these.

use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use powerdial_heartbeats::shm::{
    recv_exact_with_fd, send_with_fd, HelloReply, HelloRequest, HelloStatus, Segment,
    SegmentGeometry, ShmConsumer, ShmError, HELLO_FLAGS_KNOWN, HELLO_REQUEST_LEN,
};

use crate::daemon::DecisionView;
use crate::error::ControlError;

/// Errors of the broker itself (listener-level). Per-connection failures
/// are *outcomes* ([`AttachOutcome`]), not errors — they must not tear
/// down the accept loop.
#[derive(Debug)]
pub enum BrokerError {
    /// Binding the listening socket failed.
    Bind {
        /// The socket path that could not be bound.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The socket path is owned by a *live* broker; refusing to steal it.
    AlreadyRunning {
        /// The contested socket path.
        path: PathBuf,
    },
    /// The accept loop hit a non-transient listener error.
    Listener(std::io::Error),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Bind { path, source } => {
                write!(f, "binding broker socket {}: {source}", path.display())
            }
            BrokerError::AlreadyRunning { path } => {
                write!(
                    f,
                    "a live broker already serves {} (refusing to steal its socket)",
                    path.display()
                )
            }
            BrokerError::Listener(source) => write!(f, "broker accept loop: {source}"),
        }
    }
}

impl std::error::Error for BrokerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BrokerError::Bind { source, .. } | BrokerError::Listener(source) => Some(source),
            BrokerError::AlreadyRunning { .. } => None,
        }
    }
}

/// Configuration of an [`AttachBroker`].
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// The Unix socket path to serve. Conventions: root daemons use
    /// `/run/powerdial/broker.sock`, per-user daemons
    /// `$XDG_RUNTIME_DIR/powerdial/broker.sock` (see the deployment note
    /// in [`powerdial_heartbeats::shm`]).
    pub socket_path: PathBuf,
    /// Registrations beyond this are refused with [`HelloStatus::Busy`]
    /// (connection-storm backpressure).
    pub max_apps: usize,
    /// Per-connection read/write timeout: the longest one peer can hold
    /// the broker's attention.
    pub connection_timeout: Duration,
    /// Requested ring capacities are clamped to this before rounding up
    /// to a power of two.
    pub max_capacity: u64,
}

impl BrokerConfig {
    /// A configuration serving `socket_path` with defaults: 1024 apps,
    /// 100 ms per-connection timeout, 4096-record capacity ceiling.
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        BrokerConfig {
            socket_path: socket_path.into(),
            max_apps: 1024,
            connection_timeout: Duration::from_millis(100),
            max_capacity: 4096,
        }
    }
}

/// One validated attach handed to the registration callback: either a
/// fresh registration (broker-created segment) or a crash-recovery
/// reattach (the client's surviving segment, already adopted over the
/// dead predecessor's consumer claim).
///
/// The callback decides what registration means — typically
/// `PowerDialDaemon::register_shm` for [`AttachRequest::Fresh`] and
/// `PowerDialDaemon::register_shm_adopted` (warm start, torn-decision
/// healing) for [`AttachRequest::Reattach`].
#[derive(Debug)]
pub enum AttachRequest {
    /// A newly created segment's consumer side.
    Fresh(ShmConsumer),
    /// A consumer adopted from a segment a crashed daemon left behind.
    Reattach(ShmConsumer),
}

impl AttachRequest {
    /// The consumer side, whichever way it arrived.
    pub fn into_consumer(self) -> ShmConsumer {
        match self {
            AttachRequest::Fresh(consumer) | AttachRequest::Reattach(consumer) => consumer,
        }
    }
}

/// What became of one accepted connection.
#[derive(Debug)]
pub enum AttachOutcome {
    /// Hello accepted, segment registered, fd delivered.
    Granted(DecisionView),
    /// Hello judged and refused with this status; connection closed.
    Refused(HelloStatus),
    /// The peer disappeared (EOF, timeout, reset) before a verdict.
    Disconnected,
    /// The app was registered but the peer vanished before the fd reached
    /// it. The caller should unregister the returned app: its producer
    /// slot will stay `Absent` forever, which the dead-peer reaper does
    /// not collect.
    GrantAbandoned(DecisionView),
}

/// The daemon-side attach broker: a non-blocking accept loop over a Unix
/// listening socket, polled from the daemon's control thread between
/// actuation quanta.
///
/// The broker does not own the daemon — segment *registration* is
/// delegated to the `register` callback of [`AttachBroker::poll_accept`],
/// so the caller decides each app's runtime configuration and knob table
/// (and so the broker is testable without a daemon).
pub struct AttachBroker {
    listener: UnixListener,
    config: BrokerConfig,
    /// Registrations granted through this broker (drives the Busy check
    /// together with the caller-reported count).
    granted: usize,
}

impl std::fmt::Debug for AttachBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttachBroker")
            .field("socket_path", &self.config.socket_path)
            .field("granted", &self.granted)
            .finish()
    }
}

impl AttachBroker {
    /// Binds the broker's listening socket.
    ///
    /// A pre-existing socket file is adopted only when it is *stale*: the
    /// broker probe-connects first, and a successful connect means a live
    /// broker owns the path ([`BrokerError::AlreadyRunning`] — a
    /// configuration error, not something to steal). A refused connect
    /// marks the file as debris from a crashed daemon; it is unlinked and
    /// the path rebound.
    ///
    /// # Errors
    ///
    /// [`BrokerError::AlreadyRunning`] or [`BrokerError::Bind`].
    pub fn bind(config: BrokerConfig) -> Result<Self, BrokerError> {
        let path = &config.socket_path;
        let listener = match UnixListener::bind(path) {
            Ok(listener) => listener,
            Err(err) if err.kind() == std::io::ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    return Err(BrokerError::AlreadyRunning { path: path.clone() });
                }
                std::fs::remove_file(path).map_err(|source| BrokerError::Bind {
                    path: path.clone(),
                    source,
                })?;
                UnixListener::bind(path).map_err(|source| BrokerError::Bind {
                    path: path.clone(),
                    source,
                })?
            }
            Err(source) => {
                return Err(BrokerError::Bind {
                    path: path.clone(),
                    source,
                })
            }
        };
        listener
            .set_nonblocking(true)
            .map_err(BrokerError::Listener)?;
        Ok(AttachBroker {
            listener,
            config,
            granted: 0,
        })
    }

    /// The socket path this broker serves.
    pub fn socket_path(&self) -> &Path {
        &self.config.socket_path
    }

    /// Attaches granted through this broker so far.
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// True when the socket file no longer exists (or is no longer a
    /// socket) — someone removed it out from under the accept loop. The
    /// listener fd keeps working for already-queued connections, but no
    /// new client can reach it; the daemon should rebind.
    pub fn socket_missing(&self) -> bool {
        !matches!(
            std::fs::metadata(&self.config.socket_path),
            Ok(metadata) if {
                use std::os::unix::fs::FileTypeExt;
                metadata.file_type().is_socket()
            }
        )
    }

    /// Serves at most one pending connection, without blocking when none
    /// is pending.
    ///
    /// `current_apps` is the daemon's live registration count (the Busy
    /// threshold compares it against [`BrokerConfig::max_apps`]);
    /// `register` turns a validated [`AttachRequest`] — fresh segment or
    /// crash-recovery reattach — into a daemon registration and is called
    /// only after the hello (and, for a reattach, the adopted segment)
    /// has been fully validated.
    ///
    /// Returns `Ok(None)` when no connection was pending, otherwise the
    /// connection's [`AttachOutcome`]. Per-connection failures never
    /// surface as `Err` — only listener-level breakage does.
    ///
    /// # Errors
    ///
    /// [`BrokerError::Listener`] for non-transient `accept` failures
    /// (`EINTR` is retried — a signal landing on the daemon's control
    /// thread must not read as listener breakage).
    pub fn poll_accept(
        &mut self,
        current_apps: usize,
        register: impl FnOnce(AttachRequest) -> Result<DecisionView, ControlError>,
    ) -> Result<Option<AttachOutcome>, BrokerError> {
        let stream = loop {
            match self.listener.accept() {
                Ok((stream, _addr)) => break stream,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                // A peer that connected and reset before we accepted is
                // that peer's problem, not the listener's.
                Err(err) if err.kind() == std::io::ErrorKind::ConnectionAborted => {
                    return Ok(Some(AttachOutcome::Disconnected))
                }
                Err(err) => return Err(BrokerError::Listener(err)),
            }
        };
        Ok(Some(self.serve(stream, current_apps, register)))
    }

    /// Runs one connection through hello → verdict → (maybe) fd transfer.
    fn serve(
        &mut self,
        stream: UnixStream,
        current_apps: usize,
        register: impl FnOnce(AttachRequest) -> Result<DecisionView, ControlError>,
    ) -> AttachOutcome {
        // Bound this peer's hold on the broker. A failure to set the
        // timeout would unbound the reads below, so it is a refusal.
        if stream
            .set_read_timeout(Some(self.config.connection_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.config.connection_timeout))
                .is_err()
        {
            return AttachOutcome::Disconnected;
        }

        // The hello read harvests any `SCM_RIGHTS` fd riding along: a
        // reattach carries the client's surviving segment. (`OwnedFd`
        // drops — and so closes — the fd on every refusal path below.)
        let mut hello = [0u8; HELLO_REQUEST_LEN];
        let hello_fd = match recv_exact_with_fd(&stream, &mut hello) {
            Ok(fd) => fd,
            // Truncated hello (EOF) or slow-loris (timeout): the peer
            // never completed its opening move; nothing to reply to.
            Err(_) => return AttachOutcome::Disconnected,
        };

        let request = match HelloRequest::decode(&hello) {
            Some(request) => request,
            None => return self.refuse(stream, HelloStatus::Malformed),
        };
        if request.flags & !HELLO_FLAGS_KNOWN != 0 || request.capacity == 0 {
            return self.refuse(stream, HelloStatus::Malformed);
        }
        if request.abi_version != powerdial_heartbeats::shm::SEGMENT_ABI_VERSION {
            return self.refuse(stream, HelloStatus::WrongAbi);
        }
        if request.is_reattach() != hello_fd.is_some() {
            // A reattach must carry the segment; a fresh hello must not
            // smuggle one. Either mismatch is a protocol violation.
            return self.refuse(stream, HelloStatus::Malformed);
        }
        if current_apps >= self.config.max_apps {
            return self.refuse(stream, HelloStatus::Busy);
        }

        if let Some(fd) = hello_fd {
            return self.serve_reattach(stream, fd, register);
        }

        let capacity = request
            .capacity
            .min(self.config.max_capacity)
            .next_power_of_two() as usize;
        let segment = match SegmentGeometry::for_beat_samples(capacity).and_then(Segment::create) {
            Ok(segment) => Arc::new(segment),
            // fd exhaustion, memfd failure, absurd geometry: this attach
            // fails, the broker survives.
            Err(_) => return self.refuse(stream, HelloStatus::Resources),
        };
        let Some(segment_fd) = segment.as_raw_fd() else {
            return self.refuse(stream, HelloStatus::Resources);
        };
        let consumer = match ShmConsumer::attach(Arc::clone(&segment)) {
            Ok(consumer) => consumer,
            Err(_) => return self.refuse(stream, HelloStatus::Resources),
        };
        let view = match register(AttachRequest::Fresh(consumer)) {
            Ok(view) => view,
            Err(_) => return self.refuse(stream, HelloStatus::Resources),
        };

        // Reply and fd travel in one sendmsg: a client that read a
        // granted status is guaranteed the fd came with it.
        let reply = HelloReply::new(HelloStatus::Granted).encode();
        match send_with_fd(&stream, &reply, Some(segment_fd)) {
            Ok(()) => {
                self.granted += 1;
                AttachOutcome::Granted(view)
            }
            Err(_) => AttachOutcome::GrantAbandoned(view),
        }
    }

    /// Serves a crash-recovery reattach: maps the client's segment fd,
    /// adopts the consumer role a dead predecessor daemon left stale, and
    /// registers the adopted consumer through the caller's callback.
    ///
    /// Refusals are typed by whose fault the failure is: an fd that is not
    /// a valid live segment is the client's ([`HelloStatus::Malformed`]);
    /// a segment whose consumer role is held by a *live* process — this
    /// daemon, or a racing successor that won the adoption CAS — is
    /// transient ([`HelloStatus::Busy`], retry later); a registration
    /// failure is the daemon's ([`HelloStatus::Resources`]).
    fn serve_reattach(
        &mut self,
        stream: UnixStream,
        fd: std::os::fd::OwnedFd,
        register: impl FnOnce(AttachRequest) -> Result<DecisionView, ControlError>,
    ) -> AttachOutcome {
        let segment = match Segment::attach_fd(std::fs::File::from(fd)) {
            Ok(segment) => Arc::new(segment),
            // Not a segment this build understands (bad magic, wrong ABI,
            // geometry/size mismatch): the client sent garbage.
            Err(_) => return self.refuse(stream, HelloStatus::Malformed),
        };
        let consumer = match ShmConsumer::adopt(segment) {
            Ok(consumer) => consumer,
            Err(ShmError::RoleClaimed { .. }) => {
                return self.refuse(stream, HelloStatus::Busy);
            }
            // Dead producer (nothing to resume — the reaper's business),
            // or validation failure: refuse as malformed.
            Err(_) => return self.refuse(stream, HelloStatus::Malformed),
        };
        let view = match register(AttachRequest::Reattach(consumer)) {
            Ok(view) => view,
            Err(_) => return self.refuse(stream, HelloStatus::Resources),
        };

        // A granted reattach reply carries no fd back — the client already
        // holds the mapping it sent us.
        let reply = HelloReply::new(HelloStatus::Granted).encode();
        match send_with_fd(&stream, &reply, None) {
            Ok(()) => {
                self.granted += 1;
                AttachOutcome::Granted(view)
            }
            Err(_) => AttachOutcome::GrantAbandoned(view),
        }
    }

    /// Sends a refusal (best-effort — the peer may already be gone;
    /// `MSG_NOSIGNAL` inside [`send_with_fd`] turns a vanished peer into
    /// `EPIPE`, never `SIGPIPE`) and closes the connection.
    fn refuse(&self, stream: UnixStream, status: HelloStatus) -> AttachOutcome {
        let _ = send_with_fd(&stream, &HelloReply::new(status).encode(), None);
        AttachOutcome::Refused(status)
    }
}

impl Drop for AttachBroker {
    /// Removes the socket file so the next bind finds a clean path (a
    /// crashed broker skips this; `bind`'s stale-socket probe covers it).
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.config.socket_path);
    }
}
