//! Fault injection against the attach broker: every hostile, broken, or
//! unlucky connection is contained to that one connection, and the
//! accept loop keeps serving.
//!
//! Each test connects an in-process `UnixStream` (no fork needed — the
//! broker cannot tell) and injects one failure mode from the broker's
//! robustness posture: truncated hellos, wrong magic, reserved flags,
//! ABI mismatches, silent peers (slow-loris), connection storms past the
//! app limit, registration failures, peers that vanish between hello and
//! fd delivery, stolen socket paths, and stale socket files left by a
//! crashed daemon. After each injected failure, a well-formed attach
//! must still be granted over the same listener.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use powerdial_control::daemon::{DaemonConfig, DecisionView, PowerDialDaemon};
use powerdial_control::{
    AttachBroker, AttachOutcome, AttachRequest, BrokerConfig, BrokerError, ControlError,
    ControllerConfig, RuntimeConfig,
};
use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::{
    recv_exact_with_fd, send_with_fd, HelloReply, HelloRequest, HelloStatus, Segment,
    SegmentGeometry, ShmConsumer, ShmProducer, HELLO_REPLY_LEN, SEGMENT_ABI_VERSION,
};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

/// A unique socket path per test (the suite runs tests concurrently).
fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pd-broker-{}-{name}.sock", std::process::id()))
}

fn test_table() -> KnobTable {
    let speedups = [1.0, 2.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.01),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

fn inline_daemon() -> PowerDialDaemon {
    PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: 64,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap()
}

fn register_with(
    daemon: &mut PowerDialDaemon,
) -> impl FnOnce(AttachRequest) -> Result<DecisionView, ControlError> + '_ {
    |request| {
        let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0)?);
        match request {
            AttachRequest::Fresh(consumer) => daemon.register_shm(config, test_table(), consumer),
            AttachRequest::Reattach(consumer) => {
                daemon.register_shm_adopted(config, test_table(), consumer)
            }
        }
    }
}

/// Polls until the queued connection is served (accept is nonblocking;
/// the connect may still be in flight when poll_accept first runs).
fn serve_one(
    broker: &mut AttachBroker,
    daemon: &mut PowerDialDaemon,
    current_apps: usize,
) -> AttachOutcome {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(outcome) = broker
            .poll_accept(current_apps, register_with(daemon))
            .unwrap()
        {
            return outcome;
        }
        assert!(Instant::now() < deadline, "queued connection never served");
        std::thread::yield_now();
    }
}

/// Reads the broker's reply from the client end.
fn read_reply(stream: &mut UnixStream) -> HelloReply {
    let mut reply = [0u8; HELLO_REPLY_LEN];
    stream.read_exact(&mut reply).unwrap();
    HelloReply::decode(&reply).unwrap()
}

/// Completes a full, valid attach over `broker`, proving the accept loop
/// survived whatever the test injected before.
fn assert_still_grants(broker: &mut AttachBroker, daemon: &mut PowerDialDaemon) {
    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream.write_all(&HelloRequest::new(64).encode()).unwrap();
    let apps = daemon.app_count();
    let outcome = serve_one(broker, daemon, apps);
    let AttachOutcome::Granted(view) = outcome else {
        panic!("expected a grant after recovery, got {outcome:?}");
    };

    let mut reply = [0u8; HELLO_REPLY_LEN];
    let fd = recv_exact_with_fd(&stream, &mut reply).unwrap();
    assert_eq!(read_status(&reply), HelloStatus::Granted);
    let segment = Segment::attach_fd(std::fs::File::from(fd.unwrap())).unwrap();

    // The granted segment is live end to end: a beat pushed by the
    // client is drained and decided by the daemon.
    let mut producer = powerdial_heartbeats::shm::ShmProducer::attach(Arc::new(segment)).unwrap();
    producer
        .try_push(BeatSample {
            tag: HeartbeatTag(0),
            timestamp: Timestamp::ZERO,
            latency: TimestampDelta::ZERO,
        })
        .unwrap();
    daemon.tick();
    assert_eq!(view.beats_processed(), 1);
    daemon.unregister(view.id());
}

fn read_status(reply: &[u8; HELLO_REPLY_LEN]) -> HelloStatus {
    HelloReply::decode(reply).unwrap().status
}

#[test]
fn truncated_hello_is_contained_to_its_connection() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("truncated"))).unwrap();
    let mut daemon = inline_daemon();

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream.write_all(&[0xAB; 10]).unwrap();
    drop(stream); // EOF mid-hello

    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(outcome, AttachOutcome::Disconnected));
    assert_eq!(broker.granted(), 0);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn silent_client_is_bounded_by_the_connection_timeout() {
    let mut config = BrokerConfig::new(socket_path("silent"));
    config.connection_timeout = Duration::from_millis(50);
    let mut broker = AttachBroker::bind(config).unwrap();
    let mut daemon = inline_daemon();

    // Connect and say nothing: a slow-loris peer.
    let stream = UnixStream::connect(broker.socket_path()).unwrap();
    let started = Instant::now();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(outcome, AttachOutcome::Disconnected));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the broker must not hang on a silent peer"
    );
    drop(stream);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn wrong_magic_is_refused_malformed() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("magic"))).unwrap();
    let mut daemon = inline_daemon();

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    let mut hello = HelloRequest::new(64).encode();
    hello[0..8].copy_from_slice(b"NOTMAGIC");
    stream.write_all(&hello).unwrap();

    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Malformed)
    ));
    let reply = read_reply(&mut stream);
    assert_eq!(reply.status, HelloStatus::Malformed);
    assert_eq!(reply.abi_version, SEGMENT_ABI_VERSION);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn reserved_flags_and_zero_capacity_are_refused_malformed() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("flags"))).unwrap();
    let mut daemon = inline_daemon();

    // An unknown flag bit (flags=1 is now HELLO_FLAG_REATTACH, a *known*
    // bit — an unknown one must still be refused for cross-version safety).
    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    let mut hello = HelloRequest::new(64).encode();
    hello[12..16].copy_from_slice(&0x8000_0000u32.to_le_bytes()); // reserved flags
    stream.write_all(&hello).unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Malformed)
    ));
    assert_eq!(read_reply(&mut stream).status, HelloStatus::Malformed);

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream.write_all(&HelloRequest::new(0).encode()).unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Malformed)
    ));
    assert_eq!(read_reply(&mut stream).status, HelloStatus::Malformed);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn abi_mismatch_is_refused_wrong_abi() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("abi"))).unwrap();
    let mut daemon = inline_daemon();

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    let mut hello = HelloRequest::new(64).encode();
    hello[8..12].copy_from_slice(&(SEGMENT_ABI_VERSION + 1).to_le_bytes());
    stream.write_all(&hello).unwrap();

    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::WrongAbi)
    ));
    // The reply names the broker's ABI so the client can log the skew.
    let reply = read_reply(&mut stream);
    assert_eq!(reply.status, HelloStatus::WrongAbi);
    assert_eq!(reply.abi_version, SEGMENT_ABI_VERSION);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn connection_storm_past_max_apps_is_refused_busy() {
    let mut config = BrokerConfig::new(socket_path("storm"));
    config.max_apps = 3;
    let mut broker = AttachBroker::bind(config).unwrap();
    let mut daemon = inline_daemon();

    // A storm of clients against a full daemon: every one refused with a
    // fixed-cost Busy, none registered, the broker still standing.
    let mut streams = Vec::new();
    for _ in 0..8 {
        let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
        stream.write_all(&HelloRequest::new(64).encode()).unwrap();
        streams.push(stream);
    }
    for _ in 0..8 {
        let outcome = serve_one(&mut broker, &mut daemon, 3);
        assert!(matches!(outcome, AttachOutcome::Refused(HelloStatus::Busy)));
    }
    for stream in &mut streams {
        assert_eq!(read_reply(stream).status, HelloStatus::Busy);
    }
    assert_eq!(broker.granted(), 0);
    assert_eq!(daemon.app_count(), 0);

    // Below the limit the same broker grants again.
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn registration_failure_is_refused_resources() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("regfail"))).unwrap();

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream.write_all(&HelloRequest::new(64).encode()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let outcome = loop {
        let polled = broker
            .poll_accept(0, |_request| Err(ControlError::ZeroQuantum))
            .unwrap();
        if let Some(outcome) = polled {
            break outcome;
        }
        assert!(Instant::now() < deadline);
        std::thread::yield_now();
    };
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Resources)
    ));
    assert_eq!(read_reply(&mut stream).status, HelloStatus::Resources);

    let mut daemon = inline_daemon();
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn client_vanishing_before_fd_delivery_is_grant_abandoned() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("vanish"))).unwrap();
    let mut daemon = inline_daemon();

    // The hello is buffered in the socket, then the client dies before
    // the broker even accepts: registration succeeds, fd delivery fails.
    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream.write_all(&HelloRequest::new(64).encode()).unwrap();
    drop(stream);

    let outcome = serve_one(&mut broker, &mut daemon, 0);
    let AttachOutcome::GrantAbandoned(view) = outcome else {
        panic!("expected GrantAbandoned, got {outcome:?}");
    };
    // The orphan is registered but its producer slot will stay Absent
    // forever — the reaper must NOT collect it; the caller does.
    assert_eq!(daemon.app_count(), 1);
    assert!(daemon.reap_dead().is_empty());
    assert!(daemon.unregister(view.id()));
    assert_eq!(daemon.app_count(), 0);
    assert_eq!(broker.granted(), 0, "an abandoned grant is not a grant");

    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn live_socket_is_not_stolen_but_stale_debris_is_recovered() {
    let path = socket_path("stale");

    // A live broker owns the path: binding again is a configuration
    // error, not a theft.
    let broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    match AttachBroker::bind(BrokerConfig::new(&path)) {
        Err(BrokerError::AlreadyRunning { path: contested }) => assert_eq!(contested, path),
        other => panic!("expected AlreadyRunning, got {other:?}"),
    }
    drop(broker); // orderly shutdown unlinks the socket

    // Debris from a crashed daemon: a socket file nobody listens on.
    // (Dropping a std UnixListener closes the fd but leaves the file.)
    let crashed = UnixListener::bind(&path).unwrap();
    drop(crashed);
    assert!(path.exists(), "the crash scenario needs leftover debris");

    // The probe-connect finds no listener, unlinks, and rebinds.
    let mut broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    let mut daemon = inline_daemon();
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn socket_removed_mid_accept_is_detected() {
    let path = socket_path("removed");
    let mut broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    let mut daemon = inline_daemon();
    assert!(!broker.socket_missing());

    // Already-queued connections still complete after the unlink (the
    // listener fd outlives the name)...
    let mut stream = UnixStream::connect(&path).unwrap();
    stream.write_all(&HelloRequest::new(64).encode()).unwrap();
    std::fs::remove_file(&path).unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(outcome, AttachOutcome::Granted(_)));

    // ...but no new client can reach the broker, and the daemon can see
    // why and rebind.
    assert!(broker.socket_missing());
    assert!(UnixStream::connect(&path).is_err());
    drop(broker);
    let mut broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    assert!(!broker.socket_missing());
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn idle_listener_polls_to_none() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("idle"))).unwrap();
    let polled = broker
        .poll_accept(0, |_request| Err(ControlError::ZeroQuantum))
        .unwrap();
    assert!(polled.is_none(), "no pending connection must not block");
}

#[test]
fn reattach_hello_adopts_existing_segment_without_returning_fd() {
    use std::sync::atomic::Ordering;

    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("reattach"))).unwrap();
    let mut daemon = inline_daemon();

    // A segment from a previous daemon lifetime: producer (the client)
    // alive, consumer claim left stale by the dead daemon, beats pushed
    // across the outage waiting in the ring.
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
    let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    segment
        .header()
        .consumer_pid
        .store(0x7FFF_FF00, Ordering::Release);
    for tag in 0..3u64 {
        producer
            .try_push(BeatSample {
                tag: HeartbeatTag(tag),
                timestamp: Timestamp::from_millis(tag * 40),
                latency: TimestampDelta::from_millis(40 * tag.min(1)),
            })
            .unwrap();
    }

    let stream = UnixStream::connect(broker.socket_path()).unwrap();
    send_with_fd(
        &stream,
        &HelloRequest::reattach(64).encode(),
        segment.as_raw_fd(),
    )
    .unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    let AttachOutcome::Granted(view) = outcome else {
        panic!("expected a reattach grant, got {outcome:?}");
    };
    assert_eq!(daemon.app_count(), 1);

    // A granted reattach reply carries no fd — the client already holds
    // the mapping.
    let mut reply = [0u8; HELLO_REPLY_LEN];
    let fd = recv_exact_with_fd(&stream, &mut reply).unwrap();
    assert_eq!(read_status(&reply), HelloStatus::Granted);
    assert!(fd.is_none(), "reattach grant must not return an fd");

    // The outage beats drain on the first tick; the segment is live end
    // to end again.
    assert_eq!(daemon.tick(), 3);
    assert_eq!(view.beats_processed(), 3);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn reattach_without_fd_is_malformed() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("reattach-nofd"))).unwrap();
    let mut daemon = inline_daemon();

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream
        .write_all(&HelloRequest::reattach(64).encode())
        .unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Malformed)
    ));
    assert_eq!(read_reply(&mut stream).status, HelloStatus::Malformed);
    assert_eq!(daemon.app_count(), 0);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn fresh_hello_with_smuggled_fd_is_malformed() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("smuggled"))).unwrap();
    let mut daemon = inline_daemon();

    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
    let stream = UnixStream::connect(broker.socket_path()).unwrap();
    send_with_fd(
        &stream,
        &HelloRequest::new(64).encode(),
        segment.as_raw_fd(),
    )
    .unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Malformed)
    ));
    assert_eq!(daemon.app_count(), 0);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn reattach_with_garbage_fd_is_malformed() {
    use std::os::fd::AsRawFd;

    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("garbage-fd"))).unwrap();
    let mut daemon = inline_daemon();

    // /dev/null is a perfectly good fd and a perfectly bad segment.
    let junk = std::fs::File::open("/dev/null").unwrap();
    let stream = UnixStream::connect(broker.socket_path()).unwrap();
    send_with_fd(
        &stream,
        &HelloRequest::reattach(64).encode(),
        Some(junk.as_raw_fd()),
    )
    .unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(
        outcome,
        AttachOutcome::Refused(HelloStatus::Malformed)
    ));
    assert_eq!(daemon.app_count(), 0);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn reattach_of_live_consumer_is_refused_busy() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("live-consumer"))).unwrap();
    let mut daemon = inline_daemon();

    // The consumer role is held by a *live* process (this one): nothing
    // to step over — a retryable Busy, not an adoption.
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap());
    let _producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    let _live_consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let stream = UnixStream::connect(broker.socket_path()).unwrap();
    send_with_fd(
        &stream,
        &HelloRequest::reattach(16).encode(),
        segment.as_raw_fd(),
    )
    .unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(outcome, AttachOutcome::Refused(HelloStatus::Busy)));
    assert_eq!(daemon.app_count(), 0);
    assert_still_grants(&mut broker, &mut daemon);
}

#[test]
fn requested_capacity_is_clamped_to_the_configured_ceiling() {
    let mut broker = AttachBroker::bind(BrokerConfig::new(socket_path("clamp"))).unwrap();
    let mut daemon = inline_daemon();

    let mut stream = UnixStream::connect(broker.socket_path()).unwrap();
    stream
        .write_all(&HelloRequest::new(1_000_000).encode())
        .unwrap();
    let outcome = serve_one(&mut broker, &mut daemon, 0);
    assert!(matches!(outcome, AttachOutcome::Granted(_)));

    let mut reply = [0u8; HELLO_REPLY_LEN];
    let fd = recv_exact_with_fd(&stream, &mut reply).unwrap();
    assert_eq!(read_status(&reply), HelloStatus::Granted);
    let segment = Segment::attach_fd(std::fs::File::from(fd.unwrap())).unwrap();
    assert_eq!(
        segment.geometry().capacity(),
        4096,
        "a greedy request is clamped to BrokerConfig::max_capacity"
    );
}
