//! Proof that steady-state runtime beat-stepping is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after the first
//! quantum has been planned (filling the runtime's preallocated per-beat
//! buffer), thousands of further heartbeats — spanning many quantum
//! boundaries and therefore many full re-plans, across both actuation
//! policies — must not allocate at all.
//!
//! The counter is thread-local, so other harness threads cannot pollute
//! the measurement; keep the measured loops on the test thread itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use powerdial_control::{ActuationPolicy, ControllerConfig, PowerDialRuntime, RuntimeConfig};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

struct CountingAllocator;

// Per-thread counter: the libtest harness's other threads allocate
// concurrently with the measured region, so a process-global counter is
// flaky. `const`-initialized TLS is safe to touch from the allocator (no
// lazy initialization, hence no recursive allocation); `try_with` covers
// thread-teardown accesses.
thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations made by the *calling* thread so far.
fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.4, 2.0, 2.8, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

#[test]
fn steady_state_beat_stepping_does_not_allocate() {
    for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
        let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
            .with_policy(policy)
            .with_quantum_heartbeats(20)
            .unwrap();
        let mut runtime = PowerDialRuntime::new(config, test_table()).unwrap();

        // Warm: the first plan fills the preallocated per-beat buffer.
        for beat in 0..100u64 {
            let observed = 20.0 + (beat % 17) as f64;
            runtime.on_heartbeat_idx(Some(observed));
        }

        let before = allocations();
        let mut sink = 0.0;
        for beat in 0..10_000u64 {
            // A wandering observed rate forces genuinely different plans
            // (different s_min picks, mixed segments, saturation) across
            // the 500 quantum boundaries this loop crosses.
            let observed = 12.0 + ((beat * 7) % 50) as f64;
            let decision = runtime.on_heartbeat_idx(Some(observed));
            sink += decision.gain + decision.requested_speedup;
        }
        std::hint::black_box(sink);
        assert_eq!(
            allocations() - before,
            0,
            "steady-state beat stepping must not allocate (policy {policy})"
        );
    }
}
