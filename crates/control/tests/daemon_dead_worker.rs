//! Degraded service across a dead worker shard.
//!
//! A panic inside control code used to abort the whole daemon (the tick
//! path `expect`ed worker acks). Now a dead worker orphans only its own
//! apps: [`PowerDialDaemon::try_tick`] names the dead shard exactly once,
//! plain ticks keep serving every surviving shard, and registration routes
//! around the corpse.
//!
//! The panic is injected through real control arithmetic, not a test hook:
//! two `u64::MAX`-nanosecond beat latencies push the sliding window's sum
//! past `u64` range, so the *next* quantum-boundary `rate()` call panics
//! inside the worker thread mid-quantum — the worst spot.

use powerdial_control::daemon::{AppHandle, DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControlError, ControllerConfig, RuntimeConfig};
use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

fn test_table() -> KnobTable {
    let speedups = [1.0, 2.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

/// A 2-beat quantum so the overflow-triggering boundary `rate()` call
/// arrives on the second tick, proving the daemon was healthy first.
fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(2)
        .unwrap()
}

/// Queues the poison: two beats whose latencies sum past `u64::MAX`
/// nanoseconds (2⁶³ each, so the window's u128 running sums stay exact
/// and the drain itself succeeds in every build mode). The next boundary
/// beat's `rate()` reads the overflowed total and panics the draining
/// thread.
fn push_overflowing_beats(app: &mut AppHandle) {
    let mut tag = HeartbeatTag::default().next(); // non-zero: latencies count
    for _ in 0..2 {
        app.push_sample(BeatSample {
            tag,
            timestamp: Timestamp::ZERO,
            latency: TimestampDelta::from_nanos(1u64 << 63),
        })
        .unwrap();
        tag = tag.next();
    }
}

/// Emits one healthy 2-beat quantum.
fn push_healthy_quantum(app: &mut AppHandle, now: &mut Timestamp) {
    for _ in 0..2 {
        *now += TimestampDelta::from_millis(40);
        app.beat(*now).unwrap();
    }
}

#[test]
fn panicking_app_degrades_its_shard_and_spares_the_rest() {
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 2,
        channel_capacity: 64,
        window_size: 4,
        inline_apps: 0, // force both apps onto workers
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
    })
    .unwrap();
    // Round-robin placement: poisoned on worker 0, healthy on worker 1.
    let mut poisoned = daemon.register(runtime_config(), test_table()).unwrap();
    let mut healthy = daemon.register(runtime_config(), test_table()).unwrap();
    assert_eq!(daemon.live_workers(), 2);

    let mut now = Timestamp::ZERO;
    push_overflowing_beats(&mut poisoned);
    push_healthy_quantum(&mut healthy, &mut now);
    // The poison quantum itself drains fine (no boundary rate read yet).
    assert_eq!(daemon.try_tick().unwrap(), 4);
    assert_eq!(poisoned.beats_processed(), 2);

    // The next quantum's boundary beat reads the overflowed window:
    // worker 0 panics mid-quantum. The tick still collects worker 1 and
    // names the dead shard exactly once.
    push_overflowing_beats(&mut poisoned);
    push_healthy_quantum(&mut healthy, &mut now);
    match daemon.try_tick() {
        Err(ControlError::ShardDead { shard: 0 }) => {}
        other => panic!("expected ShardDead {{ shard: 0 }}, got {other:?}"),
    }
    assert_eq!(daemon.live_workers(), 1);
    assert_eq!(
        healthy.beats_processed(),
        4,
        "the healthy shard kept serving"
    );
    assert_eq!(
        poisoned.beats_processed(),
        2,
        "the dead shard's app is orphaned"
    );

    // Subsequent ticks skip the corpse silently and keep working.
    for _ in 0..3 {
        push_healthy_quantum(&mut healthy, &mut now);
        assert_eq!(daemon.try_tick().unwrap(), 2);
    }
    assert_eq!(healthy.beats_processed(), 10);
    assert!(healthy.latest_gain().is_some());

    // Unregistering the orphan reports failure (the owning shard cannot
    // confirm) but the daemon forgets the placement either way.
    let before = daemon.app_count();
    assert!(!daemon.unregister(poisoned.id()));
    assert_eq!(daemon.app_count(), before - 1);
}

#[test]
fn registration_routes_around_a_dead_worker() {
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 2,
        channel_capacity: 64,
        window_size: 4,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
    })
    .unwrap();
    let mut poisoned = daemon.register(runtime_config(), test_table()).unwrap();

    // Kill worker 0 through the overflow vector.
    push_overflowing_beats(&mut poisoned);
    daemon.tick();
    push_overflowing_beats(&mut poisoned);
    assert!(matches!(
        daemon.try_tick(),
        Err(ControlError::ShardDead { shard: 0 })
    ));

    // New registrations land on the surviving worker and get controlled.
    let mut late = daemon.register(runtime_config(), test_table()).unwrap();
    let mut now = Timestamp::ZERO;
    for _ in 0..4 {
        push_healthy_quantum(&mut late, &mut now);
        // Plain tick is degraded-but-infallible after the death was seen.
        assert_eq!(daemon.tick(), 2);
    }
    assert_eq!(late.beats_processed(), 8);
    assert!(late.latest_gain().is_some());
}
