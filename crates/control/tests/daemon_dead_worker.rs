//! Degraded service across a dead worker shard.
//!
//! A panic inside control code used to abort the whole daemon (the tick
//! path `expect`ed worker acks). Now a dead worker orphans only its own
//! apps until resurrection: plain ticks keep serving every surviving
//! shard, and registration routes around the corpse.
//!
//! Worker death is injected through the explicit test-only hook
//! ([`PowerDialDaemon::inject_worker_panic`]), which panics the thread
//! *while it holds its shard lock* — the worst case. The historic
//! "poisoned latency sum" vector no longer kills a worker at all: the
//! overflow surfaces as a typed error and quarantines exactly one app
//! (see the `daemon_containment` suite), which is the point of the
//! containment work.

use powerdial_control::daemon::AppHandle;
use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControllerConfig, RuntimeConfig};
use powerdial_heartbeats::{Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

fn test_table() -> KnobTable {
    let speedups = [1.0, 2.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(2)
        .unwrap()
}

/// Emits one healthy 2-beat quantum.
fn push_healthy_quantum(app: &mut AppHandle, now: &mut Timestamp) {
    for _ in 0..2 {
        *now += TimestampDelta::from_millis(40);
        app.beat(*now).unwrap();
    }
}

fn two_worker_daemon() -> PowerDialDaemon {
    PowerDialDaemon::new(DaemonConfig {
        workers: 2,
        channel_capacity: 64,
        window_size: 4,
        inline_apps: 0, // force apps onto workers
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap()
}

#[test]
fn dead_worker_degrades_its_shard_and_spares_the_rest() {
    let mut daemon = two_worker_daemon();
    // Round-robin placement: orphan-to-be on worker 0, healthy on 1.
    let mut orphan = daemon.register(runtime_config(), test_table()).unwrap();
    let mut healthy = daemon.register(runtime_config(), test_table()).unwrap();
    assert_eq!(daemon.live_workers(), 2);

    let mut now = Timestamp::ZERO;
    push_healthy_quantum(&mut orphan, &mut now);
    push_healthy_quantum(&mut healthy, &mut now);
    assert_eq!(daemon.try_tick().unwrap(), 4);

    // Kill worker 0's thread mid-protocol (it dies holding its shard
    // lock). The death is observed immediately on the ack channel.
    assert!(daemon.inject_worker_panic(0));
    assert_eq!(daemon.live_workers(), 1);
    assert_eq!(daemon.shard_deaths(), 1);

    // Ticks keep serving the surviving shard; the corpse's app gets
    // nothing until resurrection migrates it.
    for _ in 0..3 {
        push_healthy_quantum(&mut orphan, &mut now);
        push_healthy_quantum(&mut healthy, &mut now);
        assert_eq!(daemon.try_tick().unwrap(), 2, "only the live shard beats");
    }
    assert_eq!(healthy.beats_processed(), 8);
    assert_eq!(
        orphan.beats_processed(),
        2,
        "the dead shard's app is parked"
    );
    assert!(healthy.latest_gain().is_some());

    // Unregistering the orphan reports failure (the owning shard cannot
    // confirm) but the daemon forgets the placement either way.
    let before = daemon.app_count();
    assert!(!daemon.unregister(orphan.id()));
    assert_eq!(daemon.app_count(), before - 1);
}

#[test]
fn registration_routes_around_a_dead_worker() {
    let mut daemon = two_worker_daemon();
    let orphan = daemon.register(runtime_config(), test_table()).unwrap();
    assert!(daemon.inject_worker_panic(0));
    assert_eq!(daemon.live_workers(), 1);
    drop(orphan);

    // New registrations land on the surviving worker and get controlled.
    let mut late = daemon.register(runtime_config(), test_table()).unwrap();
    let mut now = Timestamp::ZERO;
    for _ in 0..4 {
        push_healthy_quantum(&mut late, &mut now);
        // Plain tick is degraded-but-infallible after the death was seen.
        assert_eq!(daemon.tick(), 2);
    }
    assert_eq!(late.beats_processed(), 8);
    assert!(late.latest_gain().is_some());
}
