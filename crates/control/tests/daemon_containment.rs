//! Fault containment: a poison app is quarantined, its neighbors are not
//! perturbed, and a killed shard is resurrected with its survivors'
//! control state intact.
//!
//! The claims pinned here are the strong, bit-level forms:
//!
//! * **Blame is exact.** An injected panic (or a latency stream that
//!   overflows the rate window) quarantines *that* app within the same
//!   quantum; every neighbor's decision sequence stays **bit-identical**
//!   to a twin daemon that never saw the fault.
//! * **Quarantine publishes safety, not garbage.** The quarantined app's
//!   decision observables land on the configured safe point — a fresh,
//!   published decision, not the fault's leftovers.
//! * **Resurrection is warm.** After a worker thread dies and is
//!   respawned at the same index, the migrated survivors' decisions
//!   continue bit-identically to the no-fault twin: the whole shard
//!   state moves, so recovery is stronger than a warm start.
//! * **Quarantine unblocks the reaper.** A dead producer with a backlog
//!   normally parks until the backlog drains; a quarantined corpse's
//!   backlog is forfeit, so the reap frees the slot immediately.

#![cfg(unix)]

use std::sync::Arc;

use powerdial_control::daemon::{AppHandle, DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControllerConfig, IndexedDecision, QuarantineReason, RuntimeConfig};
use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

const CAPACITY: usize = 64;
/// Safe point the quarantine must publish — deliberately *not* 0, so the
/// tests distinguish "published the configured safe state" from "reset".
const SAFE_POINT: u32 = 2;

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, 2.0, 3.0, 4.5];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.015),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(4)
        .unwrap()
}

fn daemon(workers: usize) -> PowerDialDaemon {
    PowerDialDaemon::new(DaemonConfig {
        workers,
        channel_capacity: CAPACITY,
        window_size: 8,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: SAFE_POINT,
    })
    .unwrap()
}

/// Deterministic wandering latencies so the controller keeps re-deciding.
fn beat(tag: u64) -> BeatSample {
    let latency_ms = 20 + (tag * 13) % 40;
    BeatSample {
        tag: HeartbeatTag(tag),
        timestamp: Timestamp::from_millis(tag * 45),
        latency: TimestampDelta::from_millis(if tag == 0 { 0 } else { latency_ms }),
    }
}

/// A decision in comparable form (f64s by bit pattern).
fn key(decision: IndexedDecision) -> (usize, u64, u64, u64) {
    (
        decision.point_idx.as_usize(),
        decision.gain.to_bits(),
        decision.requested_speedup.to_bits(),
        decision.planned_idle_fraction.to_bits(),
    )
}

/// Pushes one quantum's worth of beats to an app, ignoring rejections
/// (a quarantined app's parked channel fills up — that is the point).
fn feed(app: &mut AppHandle, tag: &mut u64, beats: u64) {
    for _ in 0..beats {
        let _ = app.push_sample(beat(*tag));
        *tag += 1;
    }
}

#[test]
fn quarantine_blames_one_app_and_neighbors_stay_bit_identical() {
    let mut faulted = daemon(0);
    let mut twin = daemon(0);
    let mut apps_f: Vec<AppHandle> = (0..3)
        .map(|_| faulted.register(runtime_config(), test_table()).unwrap())
        .collect();
    let mut apps_t: Vec<AppHandle> = (0..3)
        .map(|_| twin.register(runtime_config(), test_table()).unwrap())
        .collect();
    let poison_id = apps_f[1].id();

    let mut tags = [0u64; 3];
    let mut decisions_f: Vec<Vec<(usize, u64, u64, u64)>> = vec![Vec::new(); 3];
    let mut decisions_t: Vec<Vec<(usize, u64, u64, u64)>> = vec![Vec::new(); 3];
    let quantum = |faulted: &mut PowerDialDaemon,
                   twin: &mut PowerDialDaemon,
                   apps_f: &mut Vec<AppHandle>,
                   apps_t: &mut Vec<AppHandle>,
                   tags: &mut [u64; 3],
                   decisions_f: &mut Vec<Vec<(usize, u64, u64, u64)>>,
                   decisions_t: &mut Vec<Vec<(usize, u64, u64, u64)>>| {
        let mut shared_tags = *tags;
        for (i, app) in apps_f.iter_mut().enumerate() {
            feed(app, &mut shared_tags[i], 4);
        }
        for (i, app) in apps_t.iter_mut().enumerate() {
            feed(app, &mut tags[i], 4);
        }
        let ids_f: Vec<_> = apps_f.iter().map(AppHandle::id).collect();
        let ids_t: Vec<_> = apps_t.iter().map(AppHandle::id).collect();
        faulted
            .inline_shard_mut()
            .unwrap()
            .run_quantum_with(&mut |id, decision| {
                let slot = ids_f.iter().position(|&i| i == id).unwrap();
                decisions_f[slot].push(key(decision));
            });
        twin.inline_shard_mut()
            .unwrap()
            .run_quantum_with(&mut |id, decision| {
                let slot = ids_t.iter().position(|&i| i == id).unwrap();
                decisions_t[slot].push(key(decision));
            });
    };

    for _ in 0..6 {
        quantum(
            &mut faulted,
            &mut twin,
            &mut apps_f,
            &mut apps_t,
            &mut tags,
            &mut decisions_f,
            &mut decisions_t,
        );
    }
    assert!(faulted.quarantine_reason(poison_id).is_none());

    // Arm the fault: the next quantum panics inside app 1's guarded step.
    assert!(faulted.inject_app_panic(poison_id));
    let frozen_beats = apps_f[1].beats_processed();
    for _ in 0..6 {
        quantum(
            &mut faulted,
            &mut twin,
            &mut apps_f,
            &mut apps_t,
            &mut tags,
            &mut decisions_f,
            &mut decisions_t,
        );
    }

    // Blame is exact and observable from every surface.
    assert_eq!(
        faulted.quarantine_reason(poison_id),
        Some(QuarantineReason::Panic)
    );
    assert_eq!(apps_f[1].quarantine_reason(), Some(QuarantineReason::Panic));
    assert_eq!(faulted.quarantined_apps(), 1);
    assert_eq!(faulted.incident_counts().quarantined_apps, 1);
    assert!(apps_f[0].quarantine_reason().is_none());
    assert!(apps_f[2].quarantine_reason().is_none());

    // The quarantined app is parked on the *configured* safe point — a
    // fresh published decision, not the pre-fault leftovers.
    assert_eq!(
        apps_f[1].latest_point().unwrap().as_usize(),
        SAFE_POINT as usize
    );
    assert_eq!(apps_f[1].latest_gain().unwrap().to_bits(), 2.0f64.to_bits());
    assert_eq!(
        apps_f[1].beats_processed(),
        frozen_beats,
        "a quarantined channel is never drained again"
    );

    // Neighbors are bit-identical to the no-fault twin, before and after.
    for slot in [0usize, 2] {
        assert_eq!(
            decisions_f[slot], decisions_t[slot],
            "app {slot} diverged from the no-fault twin"
        );
    }
    // And the poison app itself matched right up to the fault.
    assert_eq!(decisions_f[1], decisions_t[1][..decisions_f[1].len()]);
}

#[test]
fn window_overflow_quarantines_the_poison_producer_only() {
    let mut d = daemon(0);
    let mut poison = d.register(runtime_config(), test_table()).unwrap();
    let mut healthy = d.register(runtime_config(), test_table()).unwrap();

    // Two half-range latencies sum past u64::MAX once both are folded
    // into the window; the overflow surfaces at the *next quantum
    // boundary's* rate read as a typed error (never a panic — see
    // `SlidingWindow::try_total`). One full 4-beat quantum folds the
    // poison without reading the rate...
    let huge = TimestampDelta::from_nanos(1u64 << 63);
    for tag in 0..4u64 {
        poison
            .push_sample(BeatSample {
                tag: HeartbeatTag(tag),
                timestamp: Timestamp::from_millis(tag * 45),
                latency: if (1..=2).contains(&tag) {
                    huge
                } else {
                    TimestampDelta::from_nanos(0)
                },
            })
            .unwrap();
    }
    let mut tag_h = 0u64;
    feed(&mut healthy, &mut tag_h, 4);
    d.tick(); // decides fine (decide-before-fold), folds the poison
    assert!(d.quarantine_reason(poison.id()).is_none());

    // ...and the next boundary beat forces a rate read over the sum.
    let _ = poison.push_sample(beat(4));
    feed(&mut healthy, &mut tag_h, 4);
    d.tick();
    assert_eq!(
        d.quarantine_reason(poison.id()),
        Some(QuarantineReason::WindowOverflow)
    );
    assert_eq!(
        poison.quarantine_reason(),
        Some(QuarantineReason::WindowOverflow)
    );

    // The healthy neighbor never noticed.
    assert!(healthy.quarantine_reason().is_none());
    let before = healthy.beats_processed();
    feed(&mut healthy, &mut tag_h, 4);
    d.tick();
    assert_eq!(healthy.beats_processed(), before + 4);
    assert!(healthy.latest_gain().is_some());
}

#[test]
fn respawned_shard_continues_survivors_bit_identically() {
    let mut faulted = daemon(1);
    let mut twin = daemon(1);
    let mut apps_f: Vec<AppHandle> = (0..2)
        .map(|_| faulted.register(runtime_config(), test_table()).unwrap())
        .collect();
    let mut apps_t: Vec<AppHandle> = (0..2)
        .map(|_| twin.register(runtime_config(), test_table()).unwrap())
        .collect();

    let mut tags = [0u64; 2];
    let quantum = |faulted: &mut PowerDialDaemon,
                   twin: &mut PowerDialDaemon,
                   apps_f: &mut Vec<AppHandle>,
                   apps_t: &mut Vec<AppHandle>,
                   tags: &mut [u64; 2]| {
        let mut shared_tags = *tags;
        for (i, app) in apps_f.iter_mut().enumerate() {
            feed(app, &mut shared_tags[i], 4);
        }
        for (i, app) in apps_t.iter_mut().enumerate() {
            feed(app, &mut tags[i], 4);
        }
        let beats_f = faulted.tick();
        let beats_t = twin.tick();
        (beats_f, beats_t)
    };

    for _ in 0..5 {
        let (beats_f, beats_t) =
            quantum(&mut faulted, &mut twin, &mut apps_f, &mut apps_t, &mut tags);
        assert_eq!(beats_f, beats_t);
    }

    // Kill the only worker (it dies holding its shard lock — the worst
    // case), then resurrect it at the same index.
    assert!(faulted.inject_worker_panic(0));
    assert_eq!(faulted.live_workers(), 0);
    assert_eq!(faulted.respawn_dead(), 1);
    assert_eq!(faulted.live_workers(), 1);
    assert_eq!(faulted.shard_deaths(), 1);
    assert_eq!(faulted.shard_respawns(), 1);
    assert_eq!(faulted.apps_migrated(), 2);

    // The migrated shard carries its whole live state: every subsequent
    // decision observable stays bit-identical to the no-fault twin.
    for _ in 0..5 {
        let (beats_f, beats_t) =
            quantum(&mut faulted, &mut twin, &mut apps_f, &mut apps_t, &mut tags);
        assert_eq!(beats_f, beats_t, "post-respawn quantum diverged");
        for (f, t) in apps_f.iter().zip(&apps_t) {
            assert_eq!(f.beats_processed(), t.beats_processed());
            assert_eq!(
                f.latest_gain().map(f64::to_bits),
                t.latest_gain().map(f64::to_bits)
            );
            assert_eq!(f.latest_point(), t.latest_point());
            assert_eq!(
                f.achieved_speedup().map(f64::to_bits),
                t.achieved_speedup().map(f64::to_bits)
            );
        }
    }
}

#[test]
fn reaping_a_quarantined_shm_app_frees_its_slot() {
    const BEATS: u64 = 8;
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    // The producer dies without detaching, leaving a backlog in the ring.
    let child = fork_child(|| {
        let Ok(mut producer) = ShmProducer::attach(Arc::clone(&segment)) else {
            return 1;
        };
        for tag in 0..BEATS {
            if producer.try_push(beat(tag)).is_err() {
                return 2;
            }
        }
        std::mem::forget(producer); // die with the claim held
        0
    })
    .unwrap();
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));

    let mut d = daemon(0);
    let view = d
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();

    // Un-quarantined protocol: a corpse with a backlog is *not* reaped —
    // the reaper wakes the slot so the next tick drains the stragglers.
    assert!(d.reap_dead().is_empty());

    // Quarantine the app before that drain happens: the backlog is now
    // forfeit and the corpse must not park the slot forever.
    assert!(d.inject_app_panic(view.id()));
    d.tick();
    assert_eq!(
        d.quarantine_reason(view.id()),
        Some(QuarantineReason::Panic)
    );
    assert_eq!(view.quarantine_reason(), Some(QuarantineReason::Panic));

    let reaped = d.reap_dead();
    assert_eq!(reaped, vec![view.id()]);
    assert_eq!(d.app_count(), 0);
    assert_eq!(d.quarantined_apps(), 0, "the reap cleared the incident");

    // The slot is genuinely reusable: a fresh app registers and gets
    // controlled.
    let mut fresh = d.register(runtime_config(), test_table()).unwrap();
    let mut tag = 0u64;
    feed(&mut fresh, &mut tag, 8);
    assert!(d.tick() > 0);
    assert!(fresh.latest_gain().is_some());
    assert!(fresh.quarantine_reason().is_none());
}
