//! Threaded stress tests for the sharded multi-app daemon: concurrent
//! producers, live ticking, and unregistration mid-stream.

use std::thread;

use powerdial_control::daemon::{AppHandle, DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControllerConfig, RuntimeConfig};
use powerdial_heartbeats::{Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

fn test_table() -> KnobTable {
    let speedups = [1.0, 2.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
}

/// Producer body: get `beats` heartbeats accepted by the channel, with a
/// per-app latency pattern. A rejected beat (full ring) is a real dropped
/// heartbeat — the retry emits a *fresh* beat at a later timestamp, exactly
/// what an instrumented application's next unit of work would do.
fn produce(mut app: AppHandle, beats: u64, seed: u64) -> AppHandle {
    let mut now = Timestamp::ZERO;
    for beat in 0..beats {
        now += TimestampDelta::from_millis(10 + (beat * 7 + seed) % 50);
        while app.beat(now).is_err() {
            thread::yield_now();
            now += TimestampDelta::from_millis(1);
        }
    }
    app
}

#[test]
fn concurrent_producers_lose_no_accepted_beats() {
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 2,
        channel_capacity: 256,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap();

    const APPS: usize = 8;
    const BEATS: u64 = 20_000;
    let handles: Vec<AppHandle> = (0..APPS)
        .map(|_| daemon.register(runtime_config(), test_table()).unwrap())
        .collect();
    assert_eq!(daemon.app_count(), APPS);

    let producers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(index, app)| thread::spawn(move || produce(app, BEATS, index as u64)))
        .collect();

    // Tick continuously while producers run.
    while producers.iter().any(|p| !p.is_finished()) {
        daemon.tick();
    }
    // Final drains for anything still queued.
    let mut idle_ticks = 0;
    while idle_ticks < 3 {
        if daemon.tick() == 0 {
            idle_ticks += 1;
        } else {
            idle_ticks = 0;
        }
    }

    let mut total_accepted = 0;
    for producer in producers {
        let app = producer.join().unwrap();
        // Exactly one beat is accepted per outer produce() iteration, so
        // accepted == BEATS; after the final idle drains every accepted
        // beat must have been processed — none lost in the channel.
        assert_eq!(
            app.beats_processed(),
            BEATS,
            "app processed {} of {} accepted beats",
            app.beats_processed(),
            BEATS
        );
        assert!(app.latest_gain().is_some());
        total_accepted += app.beats_processed();
    }
    assert_eq!(daemon.total_beats(), total_accepted);
}

#[test]
fn unregister_mid_stream_keeps_other_apps_alive() {
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 2,
        channel_capacity: 32,
        window_size: 10,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap();

    let doomed = daemon.register(runtime_config(), test_table()).unwrap();
    let survivor = daemon.register(runtime_config(), test_table()).unwrap();
    let doomed_id = doomed.id();

    // Both apps stream from their own threads; the doomed app's producer
    // keeps pushing long after unregistration and must simply see
    // backpressure, never a crash or a hang.
    let doomed_thread = thread::spawn(move || {
        let mut app = doomed;
        let mut now = Timestamp::ZERO;
        let mut rejected = 0u64;
        for _ in 0..50_000u64 {
            now += TimestampDelta::from_millis(5);
            if app.beat(now).is_err() {
                rejected += 1;
            }
        }
        (app, rejected)
    });
    let survivor_thread = thread::spawn(move || produce(survivor, 10_000, 3));

    // Let some beats flow, then cut the doomed app mid-stream.
    for _ in 0..20 {
        daemon.tick();
    }
    assert!(daemon.unregister(doomed_id));
    assert_eq!(daemon.app_count(), 1);

    while !survivor_thread.is_finished() {
        daemon.tick();
    }
    let mut idle_ticks = 0;
    while idle_ticks < 3 {
        if daemon.tick() == 0 {
            idle_ticks += 1;
        } else {
            idle_ticks = 0;
        }
    }

    let survivor = survivor_thread.join().unwrap();
    let (doomed, doomed_rejections) = doomed_thread.join().unwrap();

    // The survivor processed its whole stream.
    assert!(survivor.beats_processed() >= 10_000);
    assert!(survivor.latest_gain().is_some());

    // The doomed app's channel backed up once nothing drained it: its
    // producer saw rejections (capacity 32 << 50k beats) but kept running.
    assert!(
        doomed_rejections > 0,
        "unregistered app's channel must exert backpressure"
    );
    assert!(doomed.beats_processed() < 50_000);

    // Unregistering the survivor too leaves an empty, ticking daemon.
    assert!(daemon.unregister(survivor.id()));
    assert_eq!(daemon.app_count(), 0);
    assert_eq!(daemon.tick(), 0);
}
