//! Equivalence of the shared-memory transport with the in-heap channel
//! transport, up to and including a real second process.
//!
//! The control code downstream of a drain is shared between transports, so
//! any divergence in decisions is a transport bug. The tests here pin the
//! strongest form of that claim: **decisions computed over shm-delivered
//! beats are beat-for-beat bit-identical to decisions computed over the
//! same beats delivered through the in-heap channel**, for
//!
//! * a same-process producer (deterministic interleavings),
//! * a forked child that pushes and exits before the first drain,
//! * a forked child streaming concurrently with the draining daemon
//!   (nondeterministic batch boundaries — per-beat decisions must be
//!   invariant to them),
//!
//! plus the crash path: a child killed mid-stream is drained to its last
//! published beat and then reaped by the daemon.

#![cfg(unix)]

use std::sync::Arc;

use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControllerConfig, IndexedDecision, RuntimeConfig};
use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::shm::{DecisionRead, Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

const CAPACITY: usize = 64;

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, 2.0, 3.0, 4.5];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.015),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
}

fn inline_daemon() -> PowerDialDaemon {
    PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: CAPACITY,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap()
}

/// The deterministic beat stream both transports carry: latencies wander
/// around the 30 beats/s target so the controller keeps re-deciding.
fn beat(tag: u64) -> BeatSample {
    let latency_ms = 20 + (tag * 13) % 40;
    BeatSample {
        tag: HeartbeatTag(tag),
        timestamp: Timestamp::from_millis(tag * 45),
        latency: TimestampDelta::from_millis(if tag == 0 { 0 } else { latency_ms }),
    }
}

/// A decision in comparable form (f64s by bit pattern).
fn key(decision: IndexedDecision) -> (usize, u64, u64, u64) {
    (
        decision.point_idx.as_usize(),
        decision.gain.to_bits(),
        decision.requested_speedup.to_bits(),
        decision.planned_idle_fraction.to_bits(),
    )
}

/// Runs `beats` through an in-heap channel daemon in `chunk`-sized pushes
/// and returns every per-beat decision.
fn reference_decisions(beats: u64, chunk: usize) -> Vec<(usize, u64, u64, u64)> {
    let mut daemon = inline_daemon();
    let mut app = daemon.register(runtime_config(), test_table()).unwrap();
    let mut decisions = Vec::new();
    let mut tag = 0u64;
    while tag < beats {
        for _ in 0..chunk.min((beats - tag) as usize) {
            app.push_sample(beat(tag)).unwrap();
            tag += 1;
        }
        daemon
            .inline_shard_mut()
            .unwrap()
            .run_quantum_with(&mut |_, decision| decisions.push(key(decision)));
    }
    decisions
}

#[test]
fn same_process_shm_decisions_match_channel_decisions() {
    const BEATS: u64 = 480;
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let mut daemon = inline_daemon();
    let view = daemon
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();

    // Deliberately ragged batch sizes: decisions must not depend on where
    // the batch boundaries fall.
    let mut shm_decisions = Vec::new();
    let mut tag = 0u64;
    let mut batch = 1usize;
    while tag < BEATS {
        for _ in 0..batch.min((BEATS - tag) as usize) {
            producer.try_push(beat(tag)).unwrap();
            tag += 1;
        }
        daemon
            .inline_shard_mut()
            .unwrap()
            .run_quantum_with(&mut |_, decision| shm_decisions.push(key(decision)));
        batch = batch % (CAPACITY - 1) + 7;
    }

    // Reference stream in uniform 20-beat quanta.
    let reference = reference_decisions(BEATS, 20);
    assert_eq!(shm_decisions.len(), BEATS as usize);
    assert_eq!(
        shm_decisions, reference,
        "shm transport altered the decision sequence"
    );
    assert_eq!(view.beats_processed(), BEATS);
}

#[test]
fn forked_child_burst_decisions_match_channel_decisions() {
    // Satellite shape from the issue: parent maps a segment, a forked
    // child pushes N beats and exits; the parent asserts an in-order
    // lossless drain and decisions identical to the in-heap transport.
    const BEATS: u64 = CAPACITY as u64; // fits the ring: no pacing needed
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child(|| {
        let Ok(mut producer) = ShmProducer::attach(Arc::clone(&segment)) else {
            return 1;
        };
        for tag in 0..BEATS {
            if producer.try_push(beat(tag)).is_err() {
                return 2;
            }
        }
        0
    })
    .unwrap();
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));

    let mut daemon = inline_daemon();
    let view = daemon
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();
    let mut shm_decisions = Vec::new();
    daemon
        .inline_shard_mut()
        .unwrap()
        .run_quantum_with(&mut |_, decision| shm_decisions.push(key(decision)));

    assert_eq!(view.beats_processed(), BEATS, "lossless drain");
    let reference = reference_decisions(BEATS, BEATS as usize);
    assert_eq!(
        shm_decisions, reference,
        "cross-process beats produced different decisions"
    );
    // The dead child is reaped once its beats are collected.
    assert_eq!(daemon.reap_dead(), vec![view.id()]);
    assert_eq!(daemon.app_count(), 0);
}

#[test]
fn streaming_forked_child_decisions_match_channel_decisions() {
    // The child streams concurrently with the draining daemon: batch
    // boundaries are decided by scheduling noise, so this passes only
    // because per-beat decisions are invariant to batching.
    const BEATS: u64 = 600;
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child(|| {
        let Ok(mut producer) = ShmProducer::attach(Arc::clone(&segment)) else {
            return 1;
        };
        for tag in 0..BEATS {
            let mut sample = beat(tag);
            let mut retries: u64 = 10_000_000_000;
            loop {
                match producer.try_push(sample) {
                    Ok(()) => break,
                    Err(rejected) => {
                        sample = rejected;
                        retries -= 1;
                        if retries == 0 {
                            return 2;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        0
    })
    .unwrap();

    let mut daemon = inline_daemon();
    let view = daemon
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();
    let mut shm_decisions: Vec<(usize, u64, u64, u64)> = Vec::new();
    while (shm_decisions.len() as u64) < BEATS {
        daemon
            .inline_shard_mut()
            .unwrap()
            .run_quantum_with(&mut |_, decision| shm_decisions.push(key(decision)));
        std::hint::spin_loop();
    }
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));

    let reference = reference_decisions(BEATS, 20);
    assert_eq!(shm_decisions, reference);
    assert_eq!(view.beats_processed(), BEATS);
    assert_eq!(
        view.latest_gain().unwrap().to_bits(),
        reference.last().unwrap().1,
        "published gain matches the last per-beat decision"
    );
}

#[test]
fn daemon_reaps_child_killed_mid_stream() {
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child(|| {
        let Ok(mut producer) = ShmProducer::attach(Arc::clone(&segment)) else {
            return 1;
        };
        let mut tag = 0u64;
        loop {
            let mut sample = beat(tag);
            loop {
                match producer.try_push(sample) {
                    Ok(()) => break,
                    Err(rejected) => {
                        sample = rejected;
                        std::hint::spin_loop();
                    }
                }
            }
            tag += 1;
        }
    })
    .unwrap();

    let mut daemon = inline_daemon();
    let view = daemon
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();

    // Let the child stream for a while.
    let mut processed = 0u64;
    while processed < 150 {
        processed += daemon.tick();
        std::hint::spin_loop();
    }
    assert!(daemon.reap_dead().is_empty(), "live child is never reaped");

    child.kill().unwrap();
    assert!(matches!(child.wait().unwrap(), ChildExit::Signaled(_)));

    // Protocol: tick to collect the published tail, then reap. The first
    // reap may race a beat published between tick and kill, so run the
    // cycle until the daemon lets go — it must converge immediately after
    // one post-mortem tick.
    let mut reaped = daemon.reap_dead();
    if reaped.is_empty() {
        daemon.tick();
        reaped = daemon.reap_dead();
    }
    assert_eq!(reaped, vec![view.id()]);
    assert_eq!(daemon.app_count(), 0);
    // Every beat the daemon processed was a real, in-order beat.
    assert!(view.beats_processed() >= 150);
}

#[test]
fn decision_block_is_bit_identical_to_decision_view() {
    // The ABI v2 acceptance claim: a decision read back through the
    // segment's decision block is **bit-identical** to the daemon's
    // in-process `DecisionView` — the same words, NaN payloads and
    // signed zeros included, because the daemon publishes by re-reading
    // the very atomics the view serves.
    const BEATS: u64 = 480;
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let mut daemon = inline_daemon();
    let view = daemon
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();

    // Before any beat: nothing published, nothing viewable.
    assert_eq!(producer.read_decision(), DecisionRead::Empty);
    assert!(view.latest_gain().is_none());

    let mut tag = 0u64;
    let mut batch = 1usize;
    let mut compared = 0u64;
    while tag < BEATS {
        for _ in 0..batch.min((BEATS - tag) as usize) {
            producer.try_push(beat(tag)).unwrap();
            tag += 1;
        }
        daemon.tick();
        match producer.read_decision() {
            DecisionRead::Ready(shm) => {
                assert_eq!(shm.gain_bits, view.latest_gain().unwrap().to_bits());
                assert_eq!(
                    shm.achieved_speedup_bits,
                    view.achieved_speedup().unwrap().to_bits()
                );
                assert_eq!(
                    shm.qos_loss_bits,
                    view.expected_qos_loss().unwrap().to_bits()
                );
                assert_eq!(
                    shm.point_idx as usize,
                    view.latest_point().unwrap().as_usize()
                );
                compared += 1;
            }
            other => panic!("post-quantum decision must be readable, got {other:?}"),
        }
        batch = batch % (CAPACITY - 1) + 7;
    }
    assert!(compared > 0);
    assert_eq!(view.beats_processed(), BEATS);
}

#[test]
fn reaped_app_decision_block_is_reset_before_segment_reuse() {
    // The reap path must not leak the dead app's last decision into a
    // future reuse of the mapping: `reap_dead` resets the decision block
    // (under the seqlock discipline) before the daemon lets go.
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child({
        let segment = Arc::clone(&segment);
        move || {
            let Ok(mut producer) = ShmProducer::attach(segment) else {
                return 1;
            };
            for tag in 0..CAPACITY as u64 {
                if producer.try_push(beat(tag)).is_err() {
                    return 2;
                }
            }
            0
        }
    })
    .unwrap();
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));

    let mut daemon = inline_daemon();
    let view = daemon
        .register_shm(runtime_config(), test_table(), consumer)
        .unwrap();
    daemon.tick();
    assert!(
        matches!(segment.header().read_decision(), DecisionRead::Ready(_)),
        "the burst was processed and a decision published"
    );

    assert_eq!(daemon.reap_dead(), vec![view.id()]);
    assert_eq!(
        segment.header().read_decision(),
        DecisionRead::Empty,
        "a reaped app's decision block reads never-published again"
    );

    // `unregister` is the same removal path: it resets too.
    let segment2 =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(CAPACITY).unwrap()).unwrap());
    let consumer2 = ShmConsumer::attach(Arc::clone(&segment2)).unwrap();
    let mut producer2 = ShmProducer::attach(Arc::clone(&segment2)).unwrap();
    let view2 = daemon
        .register_shm(runtime_config(), test_table(), consumer2)
        .unwrap();
    producer2.try_push(beat(0)).unwrap();
    daemon.tick();
    assert!(matches!(
        segment2.header().read_decision(),
        DecisionRead::Ready(_)
    ));
    assert!(daemon.unregister(view2.id()));
    assert_eq!(segment2.header().read_decision(), DecisionRead::Empty);
}
