//! Proof that the daemon's per-quantum drain loop is steady-state
//! allocation-free.
//!
//! Mirrors the `no_alloc` discipline of the single-app hot path: a counting
//! global allocator wraps the system allocator; after a warm-up phase (the
//! first drains grow the shard's scratch buffer to the channel capacity and
//! the runtimes fill their planning buffers), hundreds of further quanta —
//! producer pushes, batched drains, per-beat control, decision publication —
//! must not allocate at all.
//!
//! The daemon runs in inline mode so the measured drain loop executes on
//! the test thread, where the thread-local counter sees it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use std::sync::Arc;

use powerdial_control::daemon::{AppHandle, DaemonConfig, PowerDialDaemon};
use powerdial_control::{ActuationPolicy, ControllerConfig, RuntimeConfig};
use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.4, 2.0, 2.8, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

/// One quantum of producer + daemon work for every app: emit `quantum`
/// beats per app with wandering latencies, then drain and control.
fn run_quantum(
    daemon: &mut PowerDialDaemon,
    apps: &mut [(AppHandle, Timestamp)],
    quantum: u64,
    round: u64,
) -> u64 {
    for (index, (app, now)) in apps.iter_mut().enumerate() {
        for beat in 0..quantum {
            let jitter = (round * 13 + beat * 7 + index as u64) % 60;
            *now += TimestampDelta::from_millis(15 + jitter);
            app.beat(*now).expect("channel sized for a full quantum");
        }
    }
    let beats = daemon.tick();
    // A supervision cycle reaps after every tick; the nothing-is-dead scan
    // is part of the steady state and must stay allocation-free too.
    assert!(daemon.reap_dead().is_empty());
    beats
}

#[test]
fn per_quantum_drain_loop_does_not_allocate() {
    for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers: 0, // inline: the drain loop runs on this thread
            channel_capacity: 64,
            window_size: 20,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap();
        let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
            .with_policy(policy)
            .with_quantum_heartbeats(20)
            .unwrap();
        let mut apps: Vec<(AppHandle, Timestamp)> = (0..8)
            .map(|_| {
                (
                    daemon.register(config, test_table()).unwrap(),
                    Timestamp::ZERO,
                )
            })
            .collect();

        // Warm: grow the shard scratch buffer (first drains), fill every
        // runtime's preallocated planning buffer, and cross a few quantum
        // boundaries so replans are exercised.
        for round in 0..10u64 {
            run_quantum(&mut daemon, &mut apps, 20, round);
        }

        let before = allocations();
        let mut beats = 0u64;
        for round in 0..200u64 {
            beats += run_quantum(&mut daemon, &mut apps, 20, round + 10);
        }
        std::hint::black_box(beats);
        assert_eq!(beats, 200 * 20 * 8, "every emitted beat was processed");
        assert_eq!(
            allocations() - before,
            0,
            "steady-state per-quantum drain loop must not allocate (policy {policy})"
        );
    }
}

#[test]
fn per_quantum_shm_drain_loop_does_not_allocate() {
    // The same contract over the cross-process transport: once the
    // segments are mapped and every buffer is warm, a daemon quantum over
    // shm-backed apps — producer pushes into the mapping, batched drains
    // out of it, per-beat control, decision publication — is
    // allocation-free.
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 0, // inline: the drain loop runs on this thread
        channel_capacity: 64,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap();
    let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(20)
        .unwrap();

    let mut producers: Vec<(ShmProducer, HeartbeatTag, Timestamp)> = (0..4)
        .map(|_| {
            let segment =
                Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
            let producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
            let consumer = ShmConsumer::attach(segment).unwrap();
            daemon.register_shm(config, test_table(), consumer).unwrap();
            (producer, HeartbeatTag::default(), Timestamp::ZERO)
        })
        .collect();

    let run_quantum = |daemon: &mut PowerDialDaemon,
                       producers: &mut Vec<(ShmProducer, HeartbeatTag, Timestamp)>,
                       round: u64| {
        for (index, (producer, tag, now)) in producers.iter_mut().enumerate() {
            for beat in 0..20u64 {
                let jitter = (round * 13 + beat * 7 + index as u64) % 60;
                let latency = TimestampDelta::from_millis(15 + jitter);
                *now += latency;
                producer
                    .try_push(BeatSample {
                        tag: *tag,
                        timestamp: *now,
                        latency: if tag.value() == 0 {
                            TimestampDelta::ZERO
                        } else {
                            latency
                        },
                    })
                    .expect("segment sized for a full quantum");
                *tag = tag.next();
            }
        }
        let beats = daemon.tick();
        // The reap scan probes every live shm segment and finds nothing
        // dead — the every-cycle case, which must not allocate.
        assert!(daemon.reap_dead().is_empty());
        beats
    };

    // Warm scratch and planning buffers.
    for round in 0..10u64 {
        run_quantum(&mut daemon, &mut producers, round);
    }

    let before = allocations();
    let mut beats = 0u64;
    for round in 0..200u64 {
        beats += run_quantum(&mut daemon, &mut producers, round + 10);
    }
    std::hint::black_box(beats);
    assert_eq!(beats, 200 * 20 * 4, "every emitted beat was processed");
    assert_eq!(
        allocations() - before,
        0,
        "steady-state shm drain loop must not allocate"
    );
}
