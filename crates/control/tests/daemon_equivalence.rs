//! Equivalence: the daemon-driven control path decides exactly what the
//! serial single-app simulation decides, beat for beat.
//!
//! The daemon batches: beats queue in the SPSC channel and the controller
//! runs once per actuation quantum over the drained batch. The serial
//! reference steps the same `PowerDialRuntime` and `SlidingWindow` inline,
//! one beat at a time. Because the daemon decides *before* folding each
//! drained beat's latency into its window — the same ordering the serial
//! loop uses — the two must produce bit-identical decision sequences and
//! identical planned quanta for any beat stream.

use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial_control::{
    ActuationPolicy, ControllerConfig, IndexedDecision, PowerDialRuntime, RuntimeConfig,
};
use powerdial_heartbeats::{SlidingWindow, Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace, PointIdx};
use powerdial_qos::{QosLoss, QosLossBound};

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, 2.0, 3.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

/// An open-loop beat stream: latencies vary deterministically so plans mix
/// segments, saturate, and recover across many quanta.
fn latency_at(beat: u64) -> TimestampDelta {
    let millis = match (beat / 7) % 5 {
        0 => 33,
        1 => 66,
        2 => 25,
        3 => 100,
        _ => 40,
    };
    TimestampDelta::from_millis(millis + beat % 3)
}

#[test]
fn daemon_matches_serial_simulation_beat_for_beat() {
    for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
        let window_size = 20;
        let runtime_config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
            .with_policy(policy)
            .with_quantum_heartbeats(20)
            .unwrap();

        // Daemon side: inline mode so the shard can be stepped directly and
        // every per-beat decision observed.
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers: 0,
            channel_capacity: 64,
            window_size,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .unwrap();
        let mut app = daemon.register(runtime_config, test_table()).unwrap();
        let app_id = app.id();

        // Serial reference: the same runtime and window stepped inline.
        let mut serial_runtime = PowerDialRuntime::new(runtime_config, test_table()).unwrap();
        let mut serial_window = SlidingWindow::new(window_size);

        let mut now = Timestamp::ZERO;
        let mut beat = 0u64;
        for quantum in 0..40u64 {
            // The application emits a quantum's worth of beats...
            let beats_this_quantum = 1 + (quantum % 20) as usize; // ragged batches
            let mut serial_decisions: Vec<IndexedDecision> = Vec::new();
            for _ in 0..beats_this_quantum {
                let latency = latency_at(beat);
                if beat > 0 {
                    now += latency;
                }
                app.beat(now).unwrap();

                // ...and the serial reference decides for each, inline.
                let observed = serial_window
                    .rate()
                    .expect("no overflow")
                    .map(|r| r.beats_per_second());
                serial_decisions.push(serial_runtime.on_heartbeat_idx(observed));
                if beat > 0 {
                    serial_window.push(latency);
                }
                beat += 1;
            }

            // The daemon drains the whole batch in one quantum.
            let mut daemon_decisions: Vec<IndexedDecision> = Vec::new();
            let shard = daemon.inline_shard_mut().unwrap();
            let drained = shard.run_quantum_with(&mut |_, decision| {
                daemon_decisions.push(decision);
            });
            assert_eq!(drained as usize, beats_this_quantum);

            assert_eq!(daemon_decisions.len(), serial_decisions.len());
            for (i, (fast, reference)) in daemon_decisions.iter().zip(&serial_decisions).enumerate()
            {
                assert_eq!(
                    fast.point_idx, reference.point_idx,
                    "policy {policy}: setting diverged at quantum {quantum} beat {i}"
                );
                assert_eq!(fast.gain.to_bits(), reference.gain.to_bits());
                assert_eq!(
                    fast.requested_speedup.to_bits(),
                    reference.requested_speedup.to_bits()
                );
                assert_eq!(
                    fast.planned_idle_fraction.to_bits(),
                    reference.planned_idle_fraction.to_bits()
                );
            }

            // The full planned quantum matches, not just the returned beats.
            let planned: Vec<PointIdx> = shard.planned_beat_indices(app_id).unwrap().to_vec();
            assert_eq!(planned, serial_runtime.planned_beat_indices().to_vec());
            assert_eq!(
                shard.quanta_planned(app_id).unwrap(),
                serial_runtime.quanta_planned()
            );
        }
        assert_eq!(app.beats_processed(), beat);
    }
}
