//! Equivalence: the batched decision kernel ([`DaemonShard::run_quantum`])
//! decides bit-for-bit what the per-beat reference walk
//! ([`DaemonShard::run_quantum_with`]) decides, for any beat stream.
//!
//! The batched kernel steps boundary beats individually and folds each
//! maximal interior span in one pass (`advance_in_quantum` +
//! `push_slice`). That is exact — interior beats never consume their rate
//! observation — but only a pinned relationship keeps it that way, so this
//! suite drives both paths with identical ragged streams, with the drain
//! cap engaged, and with idle-skip on, and demands bit-identical published
//! state after every quantum.

use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon, SHRINK_EPOCH_QUANTA};
use powerdial_control::{ActuationPolicy, ControllerConfig, IdleLadder, LadderRung, RuntimeConfig};
use powerdial_heartbeats::{Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, 2.0, 3.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

/// An open-loop beat stream: latencies vary deterministically so plans mix
/// segments, saturate, and recover across many quanta.
fn latency_at(beat: u64) -> TimestampDelta {
    let millis = match (beat / 7) % 5 {
        0 => 33,
        1 => 66,
        2 => 25,
        3 => 100,
        _ => 40,
    };
    TimestampDelta::from_millis(millis + beat % 3)
}

/// A pair of inline daemons under identical configuration, one ticked
/// through the batched kernel and one through the per-beat reference walk,
/// fed identical beat streams.
struct KernelPair {
    batched: PowerDialDaemon,
    reference: PowerDialDaemon,
    batched_apps: Vec<powerdial_control::daemon::AppHandle>,
    reference_apps: Vec<powerdial_control::daemon::AppHandle>,
    now: Vec<Timestamp>,
    beat: Vec<u64>,
}

impl KernelPair {
    fn new(app_count: usize, config: DaemonConfig, runtime: RuntimeConfig) -> Self {
        let mut batched = PowerDialDaemon::new(config).unwrap();
        let mut reference = PowerDialDaemon::new(config).unwrap();
        let batched_apps = (0..app_count)
            .map(|_| batched.register(runtime, test_table()).unwrap())
            .collect();
        let reference_apps = (0..app_count)
            .map(|_| reference.register(runtime, test_table()).unwrap())
            .collect();
        KernelPair {
            batched,
            reference,
            batched_apps,
            reference_apps,
            now: vec![Timestamp::ZERO; app_count],
            beat: vec![0; app_count],
        }
    }

    /// Every app emits `count` beats into both daemons (app `index` gets a
    /// per-app latency offset so the apps genuinely differ).
    fn emit(&mut self, count: usize) {
        for index in 0..self.batched_apps.len() {
            for _ in 0..count {
                let latency =
                    latency_at(self.beat[index]) + TimestampDelta::from_millis(index as u64);
                if self.beat[index] > 0 {
                    self.now[index] += latency;
                }
                let now = self.now[index];
                self.batched_apps[index].beat(now).unwrap();
                self.reference_apps[index].beat(now).unwrap();
                self.beat[index] += 1;
            }
        }
    }

    /// Runs one quantum through each kernel and checks the processed-beat
    /// counts and every app's published decision state for bit equality.
    fn step_and_compare(&mut self, context: &str) -> u64 {
        let batched_beats = self
            .batched
            .inline_shard_mut()
            .expect("inline mode")
            .run_quantum();
        let reference_beats = self
            .reference
            .inline_shard_mut()
            .expect("inline mode")
            .run_quantum_with(&mut |_, _| {});
        assert_eq!(batched_beats, reference_beats, "{context}: drained counts");
        for (index, (fast, slow)) in self
            .batched_apps
            .iter()
            .zip(&self.reference_apps)
            .enumerate()
        {
            assert_eq!(
                fast.latest_point(),
                slow.latest_point(),
                "{context}: app {index} setting"
            );
            assert_eq!(
                fast.latest_gain().map(f64::to_bits),
                slow.latest_gain().map(f64::to_bits),
                "{context}: app {index} gain"
            );
            assert_eq!(
                fast.achieved_speedup().map(f64::to_bits),
                slow.achieved_speedup().map(f64::to_bits),
                "{context}: app {index} achieved speedup"
            );
            assert_eq!(
                fast.expected_qos_loss().map(f64::to_bits),
                slow.expected_qos_loss().map(f64::to_bits),
                "{context}: app {index} qos loss"
            );
            assert_eq!(
                fast.beats_processed(),
                slow.beats_processed(),
                "{context}: app {index} beats processed"
            );
        }
        // The planned quanta match, not just the published decisions.
        for index in 0..self.batched_apps.len() {
            let id = self.batched_apps[index].id();
            let ref_id = self.reference_apps[index].id();
            let planned: Vec<_> = self
                .batched
                .inline_shard_mut()
                .unwrap()
                .planned_beat_indices(id)
                .unwrap()
                .to_vec();
            let reference_planned: Vec<_> = self
                .reference
                .inline_shard_mut()
                .unwrap()
                .planned_beat_indices(ref_id)
                .unwrap()
                .to_vec();
            assert_eq!(planned, reference_planned, "{context}: app {index} plan");
        }
        batched_beats
    }
}

fn inline_config() -> DaemonConfig {
    DaemonConfig {
        workers: 0,
        channel_capacity: 256,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    }
}

#[test]
fn batched_kernel_matches_per_beat_walk_on_ragged_batches() {
    for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
        let runtime = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
            .with_policy(policy)
            .with_quantum_heartbeats(20)
            .unwrap();
        let mut pair = KernelPair::new(3, inline_config(), runtime);
        // Ragged drains: empty quanta, single beats, boundary-straddling
        // batches, and multi-quantum floods all hit the kernel's span
        // arithmetic differently.
        let batch_sizes = [
            0usize, 1, 3, 20, 7, 41, 19, 21, 1, 0, 64, 2, 39, 20, 20, 5, 0, 0, 13, 60,
        ];
        for (quantum, &count) in batch_sizes.iter().cycle().take(60).enumerate() {
            pair.emit(count);
            pair.step_and_compare(&format!("policy {policy}, quantum {quantum}"));
        }
    }
}

#[test]
fn batched_kernel_matches_per_beat_walk_under_drain_cap() {
    // A cap that is neither a divisor nor a multiple of the 20-beat
    // quantum, so capped drains straddle planning boundaries.
    let config = DaemonConfig {
        drain_cap: 7,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
        ..inline_config()
    };
    let runtime = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(20)
        .unwrap();
    let mut pair = KernelPair::new(2, config, runtime);
    let mut emitted = 0u64;
    let mut processed = 0u64;
    for round in 0..12 {
        // Flood more than the cap, then let several capped quanta work
        // through the backlog.
        pair.emit(30);
        emitted += 2 * 30;
        for quantum in 0..6 {
            let beats = pair.step_and_compare(&format!("round {round}, quantum {quantum}"));
            assert!(
                beats <= 2 * 7,
                "round {round}, quantum {quantum}: cap exceeded ({beats} beats)"
            );
            processed += beats;
        }
    }
    // The cap defers beats; it never drops them.
    while processed < emitted {
        processed += pair.step_and_compare("draining the tail");
    }
    assert_eq!(processed, emitted);
}

#[test]
fn batched_kernel_matches_per_beat_walk_with_idle_skip() {
    let config = DaemonConfig {
        idle_skip_limit: 2,
        ..inline_config()
    };
    let runtime = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(20)
        .unwrap();
    let mut pair = KernelPair::new(2, config, runtime);
    // Bursts separated by idle stretches long enough to build a silent
    // streak, so quanta run in every skip state: streak building, skipping,
    // and the periodic re-poll.
    for round in 0..10 {
        pair.emit(20);
        pair.step_and_compare(&format!("round {round}: burst"));
        for quantum in 0..9 {
            pair.step_and_compare(&format!("round {round}: idle quantum {quantum}"));
        }
    }
}

#[test]
fn idle_skip_defers_a_waking_app_by_at_most_the_limit() {
    let limit = 2u32;
    let config = DaemonConfig {
        idle_skip_limit: limit,
        ..inline_config()
    };
    let runtime = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(20)
        .unwrap();
    let mut daemon = PowerDialDaemon::new(config).unwrap();
    let mut app = daemon.register(runtime, test_table()).unwrap();

    // Build the silent streak past the limit (these quanta still poll).
    for _ in 0..=limit {
        assert_eq!(daemon.tick(), 0);
    }
    // The app wakes while its channel is being skipped.
    let mut now = Timestamp::ZERO;
    for beat in 0..5u64 {
        now += TimestampDelta::from_millis(40 * beat.max(1));
        app.beat(now).unwrap();
    }
    // The skipped quanta never touch the channel; within `limit` quanta
    // the periodic re-poll drains the backlog in full.
    let mut deferred = 0u32;
    loop {
        let beats = daemon.tick();
        if beats > 0 {
            assert_eq!(beats, 5, "the re-poll drains the whole backlog");
            break;
        }
        deferred += 1;
        assert!(
            deferred <= limit,
            "a waking app must be served within idle_skip_limit quanta"
        );
    }
    // Once active again, the streak is reset: the next quantum polls.
    now += TimestampDelta::from_millis(40);
    app.beat(now).unwrap();
    assert_eq!(daemon.tick(), 1);
}

#[test]
fn flood_grown_scratch_shrinks_after_the_flood_subsides() {
    let config = DaemonConfig {
        workers: 0,
        channel_capacity: 4096,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    };
    let runtime = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(20)
        .unwrap();
    let mut daemon = PowerDialDaemon::new(config).unwrap();
    let mut app = daemon.register(runtime, test_table()).unwrap();

    // Flood: one quantum drains a whole channel's worth of backlog, growing
    // the shard's scratch to burst size.
    let mut now = Timestamp::ZERO;
    for _ in 0..4096u64 {
        now += TimestampDelta::from_millis(30);
        app.beat(now).unwrap();
    }
    assert_eq!(daemon.tick(), 4096);
    let flooded = daemon.inline_shard_mut().unwrap().scratch_capacity();
    assert!(flooded >= 4096, "flood grew the scratch ({flooded})");

    // Steady state afterwards: one beat per quantum. The flood's epoch
    // keeps the burst capacity (its peak *was* the burst); the next full
    // epoch of small drains reclaims it.
    for _ in 0..(2 * SHRINK_EPOCH_QUANTA) {
        now += TimestampDelta::from_millis(30);
        app.beat(now).unwrap();
        assert_eq!(daemon.tick(), 1);
    }
    let settled = daemon.inline_shard_mut().unwrap().scratch_capacity();
    assert!(
        settled < flooded && settled <= 256,
        "scratch shrank back to the working set ({flooded} -> {settled})"
    );
}

#[test]
fn idle_ladder_escalates_and_resets() {
    let mut ladder = IdleLadder::new();
    assert_eq!(ladder.rung(), LadderRung::Spin);
    for _ in 0..IdleLadder::SPIN_LIMIT {
        assert_eq!(ladder.idle(), LadderRung::Spin);
    }
    assert_eq!(ladder.rung(), LadderRung::Yield);
    for _ in 0..IdleLadder::YIELD_LIMIT {
        assert_eq!(ladder.idle(), LadderRung::Yield);
    }
    // Parked: naps grow but stay bounded, and the ladder stays parked.
    assert_eq!(ladder.rung(), LadderRung::Park);
    for _ in 0..4 {
        assert_eq!(ladder.idle(), LadderRung::Park);
    }
    // Work drops it straight back to spinning.
    ladder.reset();
    assert_eq!(ladder.rung(), LadderRung::Spin);
    assert_eq!(ladder.idle(), LadderRung::Spin);
}

#[test]
fn idle_ladder_naps_are_bounded() {
    let mut ladder = IdleLadder::new();
    // Drive the ladder deep into the park rung; each nap doubles but is
    // capped, so a long idle stretch must finish in bounded time. 16 naps
    // at the 1 ms cap is at most a few tens of milliseconds.
    for _ in 0..(IdleLadder::SPIN_LIMIT + IdleLadder::YIELD_LIMIT) {
        ladder.idle();
    }
    let start = std::time::Instant::now();
    for _ in 0..16 {
        assert_eq!(ladder.idle(), LadderRung::Park);
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "park naps must stay near the {:?} cap",
        IdleLadder::MAX_PARK
    );
}
