//! Typed client-side errors.

use powerdial_heartbeats::shm::{HelloStatus, ShmError};

/// Everything that can go wrong between an application and its daemon.
///
/// Unlike the daemon's `ControlError`, this type carries `std::io::Error`
/// (socket I/O is inherent to the attach path), so it is deliberately not
/// `Clone`/`PartialEq`.
#[derive(Debug)]
pub enum ClientError {
    /// A shared-memory failure: validation, mapping, or role claim.
    Shm(ShmError),
    /// Socket I/O failed while talking to the attach broker.
    Io(std::io::Error),
    /// The broker judged the hello and refused it.
    Refused(HelloStatus),
    /// The broker's reply violated the wire protocol (bad magic, unknown
    /// status, a granted reply without its segment fd).
    Protocol(&'static str),
    /// Every configured attach attempt failed; `last` is the final
    /// attempt's error.
    AttemptsExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error the last attempt died with.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// True when a fresh attempt could plausibly succeed: transient
    /// socket errors (daemon still starting, connection backlog) and
    /// load-shedding refusals. ABI mismatches and protocol violations are
    /// permanent — retrying them only hides a deployment bug.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_) | ClientError::Refused(HelloStatus::Busy | HelloStatus::Resources)
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shm(err) => write!(f, "shared-memory attach: {err}"),
            ClientError::Io(err) => write!(f, "broker socket: {err}"),
            ClientError::Refused(status) => write!(f, "broker refused attach: {status}"),
            ClientError::Protocol(what) => write!(f, "broker protocol violation: {what}"),
            ClientError::AttemptsExhausted { attempts, last } => {
                write!(f, "all {attempts} attach attempts failed; last: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Shm(err) => Some(err),
            ClientError::Io(err) => Some(err),
            ClientError::AttemptsExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<ShmError> for ClientError {
    fn from(err: ShmError) -> Self {
        ClientError::Shm(err)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}
