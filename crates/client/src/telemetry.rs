//! Client-side telemetry: a fixed-footprint record of the degradation
//! ladder's activity.
//!
//! The daemon's telemetry plane answers "how is the fleet doing?"; this
//! module answers the per-application question "which rung has *my*
//! client been serving, and when did it move?". Everything here is
//! allocation-free and `Copy`-record based so reading it perturbs the
//! application no more than a beat does:
//!
//! * a poll counter per [`DecisionSource`] rung (how often each rung was
//!   served);
//! * a ring of the last [`LADDER_TRANSITION_CAPACITY`] rung *changes*
//!   ([`LadderTransition`]: from-rung, to-rung, the poll's clock
//!   reading), overwriting the oldest when full, with a monotone
//!   sequence number so dropped history is detectable.
//!
//! The record is maintained by
//! [`current_decision`](crate::PowerDialClient::current_decision) and
//! read back through
//! [`ladder_telemetry`](crate::PowerDialClient::ladder_telemetry); it is
//! the client-side companion to the daemon's decision trace, letting an
//! operator reconstruct an outage timeline (when the client fell to
//! `LastKnownGood`, how long it spent `Reattaching`, when it recovered)
//! without any logging on the hot path.

use std::time::Instant;

use crate::client::DecisionSource;

/// Rung changes retained by [`LadderTelemetry`] before the oldest is
/// overwritten. A whole outage-and-recovery arc is a handful of
/// transitions, so 32 comfortably holds several incidents.
pub const LADDER_TRANSITION_CAPACITY: usize = 32;

/// Number of rungs in [`DecisionSource`].
const RUNGS: usize = 4;

fn rung_index(source: DecisionSource) -> usize {
    match source {
        DecisionSource::Published => 0,
        DecisionSource::LastKnownGood => 1,
        DecisionSource::Reattaching => 2,
        DecisionSource::SafeState => 3,
    }
}

/// One observed rung change on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderTransition {
    /// Monotone index of this transition (0 for the first ever observed);
    /// gaps against [`LadderTelemetry::transitions`] reveal history lost
    /// to ring overwrite.
    pub seq: u64,
    /// The rung served by the previous poll.
    pub from: DecisionSource,
    /// The rung served by the poll that observed the change.
    pub to: DecisionSource,
    /// The observing poll's clock reading.
    pub at: Instant,
}

/// Fixed-footprint poll counters and transition history for one client's
/// degradation ladder.
#[derive(Debug, Clone)]
pub struct LadderTelemetry {
    polls: [u64; RUNGS],
    last: Option<DecisionSource>,
    ring: [Option<LadderTransition>; LADDER_TRANSITION_CAPACITY],
    head: usize,
    len: usize,
    total: u64,
}

impl LadderTelemetry {
    pub(crate) fn new() -> Self {
        LadderTelemetry {
            polls: [0; RUNGS],
            last: None,
            ring: [None; LADDER_TRANSITION_CAPACITY],
            head: 0,
            len: 0,
            total: 0,
        }
    }

    /// Records one poll outcome: bumps the rung's counter and, when the
    /// rung changed, appends a transition (overwriting the oldest when
    /// the ring is full).
    pub(crate) fn observe(&mut self, to: DecisionSource, at: Instant) {
        self.polls[rung_index(to)] += 1;
        if let Some(from) = self.last {
            if from != to {
                self.ring[self.head] = Some(LadderTransition {
                    seq: self.total,
                    from,
                    to,
                    at,
                });
                self.head = (self.head + 1) % LADDER_TRANSITION_CAPACITY;
                self.len = (self.len + 1).min(LADDER_TRANSITION_CAPACITY);
                self.total += 1;
            }
        }
        self.last = Some(to);
    }

    /// Polls that served the given rung.
    pub fn polls(&self, source: DecisionSource) -> u64 {
        self.polls[rung_index(source)]
    }

    /// Total decision polls observed.
    pub fn total_polls(&self) -> u64 {
        self.polls.iter().sum()
    }

    /// The rung served by the most recent poll (`None` before the first).
    pub fn current_rung(&self) -> Option<DecisionSource> {
        self.last
    }

    /// Total rung changes ever observed (including any overwritten out of
    /// the ring).
    pub fn total_transitions(&self) -> u64 {
        self.total
    }

    /// Transitions overwritten out of the ring.
    pub fn dropped_transitions(&self) -> u64 {
        self.total - self.len as u64
    }

    /// The retained transitions, oldest first.
    pub fn transitions(&self) -> impl Iterator<Item = LadderTransition> + '_ {
        let start = if self.len < LADDER_TRANSITION_CAPACITY {
            0
        } else {
            self.head
        };
        (0..self.len).map(move |offset| {
            self.ring[(start + offset) % LADDER_TRANSITION_CAPACITY]
                .expect("ring slots below len are filled")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_polls_and_records_only_changes() {
        let mut ladder = LadderTelemetry::new();
        let t0 = Instant::now();
        ladder.observe(DecisionSource::Published, t0);
        ladder.observe(DecisionSource::Published, t0);
        ladder.observe(DecisionSource::LastKnownGood, t0);
        ladder.observe(DecisionSource::SafeState, t0);
        ladder.observe(DecisionSource::SafeState, t0);

        assert_eq!(ladder.polls(DecisionSource::Published), 2);
        assert_eq!(ladder.polls(DecisionSource::LastKnownGood), 1);
        assert_eq!(ladder.polls(DecisionSource::SafeState), 2);
        assert_eq!(ladder.total_polls(), 5);
        assert_eq!(ladder.current_rung(), Some(DecisionSource::SafeState));

        let transitions: Vec<_> = ladder.transitions().collect();
        assert_eq!(transitions.len(), 2);
        assert_eq!(transitions[0].seq, 0);
        assert_eq!(transitions[0].from, DecisionSource::Published);
        assert_eq!(transitions[0].to, DecisionSource::LastKnownGood);
        assert_eq!(transitions[1].seq, 1);
        assert_eq!(transitions[1].from, DecisionSource::LastKnownGood);
        assert_eq!(transitions[1].to, DecisionSource::SafeState);
        assert_eq!(ladder.dropped_transitions(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_total() {
        let mut ladder = LadderTelemetry::new();
        let t0 = Instant::now();
        // Alternate rungs so every poll after the first is a transition.
        let rungs = [DecisionSource::Published, DecisionSource::SafeState];
        let observations = LADDER_TRANSITION_CAPACITY + 10;
        for index in 0..=observations {
            ladder.observe(rungs[index % 2], t0);
        }
        assert_eq!(ladder.total_transitions(), observations as u64);
        assert_eq!(ladder.dropped_transitions(), 10);
        let transitions: Vec<_> = ladder.transitions().collect();
        assert_eq!(transitions.len(), LADDER_TRANSITION_CAPACITY);
        // Oldest-first, contiguous sequence numbers ending at the latest.
        for (offset, transition) in transitions.iter().enumerate() {
            assert_eq!(transition.seq, 10 + offset as u64);
        }
    }
}
