//! The application-facing PowerDial client.
//!
//! The paper's deployment model puts the controller in one process (the
//! PowerDial daemon) and the instrumented application in another; the
//! application's side of that contract is exactly three verbs, and this
//! crate is their implementation:
//!
//! * **register** — [`PowerDialClient::register`] connects to the
//!   daemon's Unix-socket attach broker, speaks a fixed-size hello, and
//!   receives a memfd-backed segment over `SCM_RIGHTS` (with bounded
//!   retry/backoff while the daemon starts up). Processes that already
//!   hold a segment — forked children, tmpfile sharers — skip the broker
//!   via [`PowerDialClient::attach_segment`] /
//!   [`PowerDialClient::attach_path`].
//! * **beat** — [`PowerDialClient::beat`] emits one Application
//!   Heartbeat per unit of work: wait-free, allocation-free, one slot
//!   write and one release store into the shared ring.
//! * **current_decision** — [`PowerDialClient::current_decision`] reads
//!   the daemon's latest knob decision back through the segment's
//!   seqlock-protected decision block, bit-identical to the daemon's own
//!   `DecisionView`.
//!
//! # Surviving the daemon
//!
//! The client is built to degrade, not fail, when the control plane
//! breaks ([`CurrentDecision::source`] says which rung it is on), and to
//! climb back up on its own. The recovery state machine, as driven by
//! successive [`PowerDialClient::current_decision`] polls:
//!
//! ```text
//!                 consistent read, daemon alive
//!        +------------------------------------------------+
//!        v                                                |
//!  [ Published ] --daemon dead observed--> [ LastKnownGood ]
//!        ^                                        | grace window
//!        |                                        | expires
//!        | reattach granted:                      v
//!        | successor adopts the segment,   [ Reattaching ]---+
//!        | seeds the decision block          |  ^   (serves the safe
//!        |                                   |  |    decision; fires one
//!        +-----------------------------------+  |    jittered-backoff
//!                                      attempt--+    hello per due poll)
//!                                      failed
//!                                                 | permanent refusal
//!                                                 | (or no socket)
//!                                                 v
//!                                          [ SafeState ]
//! ```
//!
//! * torn decision reads (a daemon killed mid-publish) are detected by
//!   the seqlock and served from the **last-known-good** decision;
//! * a daemon death is observed through the segment's consumer PID; the
//!   last-known-good decision persists for a configurable **grace
//!   window** ([`ClientConfig::grace`]), then the client serves the
//!   configured **safe state** ([`ClientConfig::safe_decision`]) — the
//!   paper's baseline configuration by default. The window is measured
//!   from the *first* observation of the death on **any** client path:
//!   decision polls observe liveness directly, and the beat path probes
//!   it on a stride, so a client that beats frequently but polls rarely
//!   still ages out its stale decision on schedule instead of serving it
//!   for up to a full poll interval past the grace deadline;
//! * every poll also feeds an allocation-free ladder record
//!   ([`LadderTelemetry`]): per-rung poll counters plus a ring of the
//!   recent rung transitions, for post-hoc outage timelines;
//! * while the daemon is gone, a client that registered through the
//!   broker (or opted in via
//!   [`PowerDialClient::set_reattach_socket`](PowerDialClient)) offers
//!   its segment *back* over the socket — **reattach** — so a restarted
//!   daemon adopts the very same ring, with every beat emitted during
//!   the outage still in it, and warm-starts its controller from the
//!   state the predecessor left in the segment;
//! * backoff between reattach (and register) attempts is stretched by a
//!   deterministic per-process jitter derived from the PID and its
//!   kernel start-time nonce, so a fleet of clients orphaned by one
//!   crash does not stampede the restarted broker in phase;
//! * a restarted daemon is noticed on the next read and decisions become
//!   [`DecisionSource::Published`] again.
//!
//! `current_decision` never fails and never panics on any of those
//! paths (a due reattach attempt is the one case where it may block, for
//! at most the hello timeout); the `client_fallback` integration suite
//! SIGKILLs a real forked daemon to prove the degradation ladder, and
//! the workspace-level `chaos_recovery` suite SIGKILLs daemons at seeded
//! random points under multi-app load to prove the recovery loop.
//!
//! # Features
//!
//! `broker` (default): the Unix-socket attach path. Without it the crate
//! has no socket code at all — only direct segment attachment.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod client;
mod error;
pub mod telemetry;

pub use client::{ClientConfig, CurrentDecision, Decision, DecisionSource, PowerDialClient};
pub use error::ClientError;
pub use telemetry::{LadderTelemetry, LadderTransition, LADDER_TRANSITION_CAPACITY};
