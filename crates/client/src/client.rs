//! The client proper: attach, beat, read decisions, degrade gracefully.

use std::sync::Arc;
use std::time::{Duration, Instant};

use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::{DecisionRead, PeerState, Segment, ShmDecision, ShmProducer};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};

use crate::error::ClientError;
use crate::telemetry::LadderTelemetry;

/// Beats between daemon-liveness probes on the beat path. A probe is one
/// atomic load plus (while a daemon is claimed) one `kill(pid, 0)`, so
/// probing every beat would put a syscall on a path documented as
/// syscall-free; probing every 32nd beat bounds the cost at ~3% of beats
/// while still opening the grace window within a fraction of any
/// realistic [`ClientConfig::grace`] for a client that beats but rarely
/// polls.
const BEAT_LIVENESS_STRIDE: u32 = 32;

/// One control decision, decoded from the segment's decision block.
///
/// The float fields are `f64::from_bits` of the exact words the daemon
/// published, which are in turn the exact words its in-process
/// `DecisionView` serves — a decision read here is bit-identical to the
/// daemon-side view, NaNs and signed zeros included.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Index into the application's knob table of the decided setting.
    pub point_idx: u32,
    /// The decided knob gain (instantaneous speedup).
    pub gain: f64,
    /// The achieved (time-averaged) speedup of the planned quantum.
    pub achieved_speedup: f64,
    /// The expected QoS loss of the planned quantum.
    pub expected_qos_loss: f64,
}

impl Decision {
    /// The identity decision: knob point 0, no speedup, no QoS loss —
    /// the conventional safe state (the paper's baseline configuration).
    pub const IDENTITY: Decision = Decision {
        point_idx: 0,
        gain: 1.0,
        achieved_speedup: 1.0,
        expected_qos_loss: 0.0,
    };

    /// Decodes a raw shm decision (bit-preserving).
    pub fn from_shm(shm: &ShmDecision) -> Self {
        Decision {
            point_idx: shm.point_idx,
            gain: shm.gain(),
            achieved_speedup: shm.achieved_speedup(),
            expected_qos_loss: shm.expected_qos_loss(),
        }
    }
}

/// Where a [`CurrentDecision`] came from — the client's degradation
/// ladder, rung by rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// Read consistently from the decision block of a live daemon.
    Published,
    /// The freshest consistent decision the client holds, served because
    /// the current read was torn or the daemon is gone but still within
    /// the grace window.
    LastKnownGood,
    /// The safe state, served while the client is actively trying to hand
    /// its segment to a restarted daemon through the attach broker: the
    /// daemon is gone past the grace window, a reattach socket is
    /// configured, and rate-limited (jitter-backoff) reattach handshakes
    /// fire from [`PowerDialClient::current_decision`] polls.
    Reattaching,
    /// The configured safe state: no decision has ever been readable, or
    /// the daemon has been gone longer than the grace window with no
    /// reattach path left.
    SafeState,
}

/// A decision plus its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentDecision {
    /// The knob setting to apply.
    pub decision: Decision,
    /// How trustworthy it is.
    pub source: DecisionSource,
}

/// Client configuration: attach persistence and the stale-decision
/// policy.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ring capacity (in beat records) to request from the broker.
    pub capacity: u64,
    /// Attach/connect attempts before giving up (minimum 1).
    pub attach_attempts: u32,
    /// Backoff before the second attempt, doubling per further attempt.
    pub retry_backoff: Duration,
    /// Socket read/write timeout for the hello exchange.
    pub hello_timeout: Duration,
    /// After the daemon's death is observed, how long the last-known-good
    /// decision keeps being served before falling back to
    /// [`ClientConfig::safe_decision`]. `Duration::ZERO` falls back
    /// immediately (and deterministically — useful in tests).
    pub grace: Duration,
    /// The safe state: what the application runs when it has no
    /// trustworthy decision (never controlled yet, or daemon gone past
    /// the grace window).
    pub safe_decision: Decision,
}

impl Default for ClientConfig {
    /// 256-record ring, 5 attach attempts backing off from 10 ms, 1 s
    /// hello timeout, 500 ms grace, identity safe state.
    fn default() -> Self {
        ClientConfig {
            capacity: 256,
            attach_attempts: 5,
            retry_backoff: Duration::from_millis(10),
            hello_timeout: Duration::from_secs(1),
            grace: Duration::from_millis(500),
            safe_decision: Decision::IDENTITY,
        }
    }
}

/// The application's handle on the PowerDial control plane: emit beats,
/// read decisions, survive the daemon.
///
/// Obtained by [`PowerDialClient::register`] (connect to a daemon's
/// attach broker), [`PowerDialClient::attach_segment`] (a segment handed
/// over directly, e.g. inherited across `fork`), or
/// [`PowerDialClient::attach_path`] (a tmpfile segment shared by path).
#[derive(Debug)]
pub struct PowerDialClient {
    producer: ShmProducer,
    config: ClientConfig,
    next_tag: HeartbeatTag,
    last_timestamp: Option<Timestamp>,
    last_known_good: Option<Decision>,
    daemon_seen_alive: bool,
    daemon_lost_at: Option<Instant>,
    /// Broker socket to offer this segment back to after a daemon crash.
    /// `Some` enables the [`DecisionSource::Reattaching`] rung; cleared on
    /// a permanent refusal (e.g. a broker that predates the protocol).
    reattach_socket: Option<std::path::PathBuf>,
    #[cfg_attr(not(all(feature = "broker", target_os = "linux")), allow(dead_code))]
    reattach_attempt: u32,
    #[cfg_attr(not(all(feature = "broker", target_os = "linux")), allow(dead_code))]
    next_reattach_at: Option<Instant>,
    beats_until_liveness_probe: u32,
    ladder: LadderTelemetry,
}

impl PowerDialClient {
    /// Attaches to a segment this process already holds (inherited
    /// mapping, or one it created itself).
    ///
    /// # Errors
    ///
    /// [`ClientError::Shm`] when validation or the producer claim fails.
    pub fn attach_segment(
        segment: Arc<Segment>,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let producer = ShmProducer::attach(segment)?;
        Ok(PowerDialClient {
            producer,
            config,
            next_tag: HeartbeatTag::default(),
            last_timestamp: None,
            last_known_good: None,
            daemon_seen_alive: false,
            daemon_lost_at: None,
            reattach_socket: None,
            reattach_attempt: 0,
            next_reattach_at: None,
            beats_until_liveness_probe: 0,
            ladder: LadderTelemetry::new(),
        })
    }

    /// Opens a tmpfile-backed segment by filesystem path and attaches,
    /// retrying with the configured backoff (the daemon may still be
    /// creating the segment).
    ///
    /// # Errors
    ///
    /// [`ClientError::AttemptsExhausted`] wrapping the final attempt's
    /// [`ClientError::Shm`].
    #[cfg(unix)]
    pub fn attach_path(
        path: impl AsRef<std::path::Path>,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let path = path.as_ref();
        retry(&config, |config| {
            let segment = Segment::open(path)?;
            PowerDialClient::attach_segment(Arc::new(segment), config.clone())
        })
    }

    /// Registers with a daemon through its Unix-socket attach broker:
    /// connect, speak the hello protocol, receive the segment fd over
    /// `SCM_RIGHTS`, map it, and claim the producer role. Transient
    /// failures (daemon starting up, [`HelloStatus::Busy`] load shedding)
    /// are retried with the configured backoff; permanent refusals (ABI
    /// mismatch, protocol violations) are returned immediately.
    ///
    /// The socket path is remembered: if the daemon later dies, the client
    /// offers its segment back through the same socket (the
    /// [`DecisionSource::Reattaching`] rung) so a restarted daemon can
    /// adopt the stream with the outage's beats still in the ring.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] / [`ClientError::Protocol`] for permanent
    /// refusals, [`ClientError::AttemptsExhausted`] when retries run out.
    ///
    /// [`HelloStatus::Busy`]: powerdial_heartbeats::shm::HelloStatus::Busy
    #[cfg(all(feature = "broker", target_os = "linux"))]
    pub fn register(
        socket_path: impl AsRef<std::path::Path>,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let socket_path = socket_path.as_ref();
        let mut client = retry(&config, |config| {
            PowerDialClient::register_once(socket_path, config)
        })?;
        client.reattach_socket = Some(socket_path.to_path_buf());
        Ok(client)
    }

    /// One broker handshake, no retries.
    #[cfg(all(feature = "broker", target_os = "linux"))]
    fn register_once(
        socket_path: &std::path::Path,
        config: &ClientConfig,
    ) -> Result<Self, ClientError> {
        use std::io::Write;

        use powerdial_heartbeats::shm::{
            recv_exact_with_fd, HelloReply, HelloRequest, HelloStatus, HELLO_REPLY_LEN,
        };

        let mut stream = std::os::unix::net::UnixStream::connect(socket_path)?;
        stream.set_read_timeout(Some(config.hello_timeout))?;
        stream.set_write_timeout(Some(config.hello_timeout))?;
        stream.write_all(&HelloRequest::new(config.capacity).encode())?;

        let mut reply = [0u8; HELLO_REPLY_LEN];
        let fd = recv_exact_with_fd(&stream, &mut reply)?;
        let reply =
            HelloReply::decode(&reply).ok_or(ClientError::Protocol("undecodable hello reply"))?;
        match reply.status {
            HelloStatus::Granted => {
                let fd = fd.ok_or(ClientError::Protocol("granted reply without segment fd"))?;
                let segment = Segment::attach_fd(std::fs::File::from(fd))?;
                PowerDialClient::attach_segment(Arc::new(segment), config.clone())
            }
            status => Err(ClientError::Refused(status)),
        }
    }

    /// Enables the [`DecisionSource::Reattaching`] rung for a client that
    /// did not come through [`PowerDialClient::register`] (a segment
    /// inherited across `fork`, or one attached by path): after the daemon
    /// dies, the client offers its segment back through this broker
    /// socket.
    #[cfg(all(feature = "broker", target_os = "linux"))]
    pub fn set_reattach_socket(&mut self, socket_path: impl Into<std::path::PathBuf>) {
        self.reattach_socket = Some(socket_path.into());
    }

    /// Fires one reattach handshake if one is due, returning whether a
    /// daemon adopted the segment. Rate-limited by doubling backoff with
    /// deterministic per-process jitter so a fleet of clients orphaned by
    /// the same crash does not stampede the restarted broker in lockstep.
    fn try_reattach(&mut self, now: Instant) -> bool {
        #[cfg(all(feature = "broker", target_os = "linux"))]
        {
            let Some(path) = self.reattach_socket.clone() else {
                return false;
            };
            if self.next_reattach_at.is_some_and(|at| now < at) {
                return false;
            }
            let attempt = self.reattach_attempt;
            self.reattach_attempt = self.reattach_attempt.saturating_add(1);
            // Doubling base capped at 1024x so a long outage keeps polling
            // (the daemon may restart at any time) instead of backing off
            // into effective permanence.
            let base = self
                .config
                .retry_backoff
                .saturating_mul(1u32 << attempt.min(10));
            self.next_reattach_at = Some(now + jittered(base, attempt));
            match self.reattach_once(&path) {
                Ok(()) => {
                    self.reattach_attempt = 0;
                    self.next_reattach_at = None;
                    true
                }
                Err(err) if err.is_retryable() => false,
                Err(_) => {
                    // Permanent refusal — most likely a broker that
                    // predates the reattach protocol (it reads the flag
                    // bit as malformed). Stop asking; the ladder degrades
                    // to the plain safe state.
                    self.reattach_socket = None;
                    false
                }
            }
        }
        #[cfg(not(all(feature = "broker", target_os = "linux")))]
        {
            let _ = now;
            false
        }
    }

    /// One reattach handshake, no retries: connect, send a reattach hello
    /// carrying this segment's fd over `SCM_RIGHTS`, and expect a granted
    /// reply (which, unlike a fresh grant, carries no fd back — this side
    /// already holds the segment).
    #[cfg(all(feature = "broker", target_os = "linux"))]
    fn reattach_once(&mut self, socket_path: &std::path::Path) -> Result<(), ClientError> {
        use powerdial_heartbeats::shm::{
            recv_exact_with_fd, send_with_fd, HelloReply, HelloRequest, HelloStatus,
            HELLO_REPLY_LEN,
        };

        let fd = self
            .producer
            .segment()
            .as_raw_fd()
            .ok_or(ClientError::Protocol("segment has no fd to offer back"))?;
        let stream = std::os::unix::net::UnixStream::connect(socket_path)?;
        stream.set_read_timeout(Some(self.config.hello_timeout))?;
        stream.set_write_timeout(Some(self.config.hello_timeout))?;
        let capacity = self.producer.segment().geometry().capacity();
        send_with_fd(
            &stream,
            &HelloRequest::reattach(capacity).encode(),
            Some(fd),
        )?;

        let mut reply = [0u8; HELLO_REPLY_LEN];
        // A granted reattach carries no fd; one a confused peer smuggles
        // anyway is harvested here and closed on drop.
        let _smuggled = recv_exact_with_fd(&stream, &mut reply)?;
        let reply =
            HelloReply::decode(&reply).ok_or(ClientError::Protocol("undecodable hello reply"))?;
        match reply.status {
            HelloStatus::Granted => Ok(()),
            status => Err(ClientError::Refused(status)),
        }
    }

    /// Emits one heartbeat at `now` (sequence tag and latency since the
    /// previous beat). Wait-free.
    ///
    /// Every [`BEAT_LIVENESS_STRIDE`]th beat (including the first) also
    /// probes the daemon's liveness, so a client that beats frequently
    /// but polls [`PowerDialClient::current_decision`] rarely still
    /// starts its grace window from roughly when the daemon died, not
    /// from whenever the next poll happens to look. The probe is skipped
    /// once a loss is already on record — nothing further to learn on
    /// this path; recovery is observed by the decision polls.
    ///
    /// # Errors
    ///
    /// Returns the rejected record when the ring is full (backpressure —
    /// also the steady state once the daemon stops draining). The beat
    /// still counts for latency bookkeeping, so drops degrade the rate
    /// estimate smoothly.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous beat.
    pub fn beat(&mut self, now: Timestamp) -> Result<(), BeatSample> {
        self.beat_at(now, Instant::now)
    }

    /// [`PowerDialClient::beat`] with an injected clock for the liveness
    /// observation (tests). The clock is only consulted when a daemon
    /// loss must be stamped.
    fn beat_at(
        &mut self,
        now: Timestamp,
        clock: impl FnOnce() -> Instant,
    ) -> Result<(), BeatSample> {
        let latency = match self.last_timestamp {
            Some(last) => now - last,
            None => TimestampDelta::ZERO,
        };
        let sample = BeatSample {
            tag: self.next_tag,
            timestamp: now,
            latency,
        };
        self.next_tag = self.next_tag.next();
        self.last_timestamp = Some(now);
        if self.daemon_lost_at.is_none() {
            if self.beats_until_liveness_probe == 0 {
                self.beats_until_liveness_probe = BEAT_LIVENESS_STRIDE - 1;
                let daemon_alive = self.producer.consumer_state().is_alive();
                self.note_liveness(daemon_alive, clock);
            } else {
                self.beats_until_liveness_probe -= 1;
            }
        }
        self.producer.try_push(sample)
    }

    /// Folds one liveness observation into the grace-window state: a live
    /// daemon arms (or re-arms) the window and closes any open loss; the
    /// first dead observation after life stamps [`Self::daemon_lost_at`],
    /// from which [`ClientConfig::grace`] is measured. Shared by the beat
    /// and decision-poll paths so the window opens from the *first*
    /// observation of the death, whichever path makes it.
    fn note_liveness(&mut self, daemon_alive: bool, clock: impl FnOnce() -> Instant) {
        if daemon_alive {
            self.daemon_seen_alive = true;
            self.daemon_lost_at = None;
        } else if self.daemon_seen_alive && self.daemon_lost_at.is_none() {
            self.daemon_lost_at = Some(clock());
        }
    }

    /// The decision the application should apply *right now*, with its
    /// provenance — this call never fails and never blocks:
    ///
    /// 1. a consistent read from a live daemon is
    ///    [`DecisionSource::Published`] (and becomes the new
    ///    last-known-good);
    /// 2. a torn read, or a dead/gone daemon still within
    ///    [`ClientConfig::grace`], serves
    ///    [`DecisionSource::LastKnownGood`];
    /// 3. past the grace window with a reattach socket configured, the
    ///    configured safe decision is served as
    ///    [`DecisionSource::Reattaching`] — recovery is being attempted,
    ///    not abandoned;
    /// 4. otherwise the safe decision is [`DecisionSource::SafeState`]:
    ///    no decision was ever read, or no reattach path remains.
    ///
    /// The grace window opens at the first *observation* of the daemon's
    /// death — by this call or by a liveness probe on the
    /// [`PowerDialClient::beat`] path (liveness is polled, not watched) —
    /// and closes again if a daemon returns. While the daemon is observed
    /// dead and a reattach
    /// socket is configured, each poll may additionally fire one
    /// rate-limited reattach handshake (doubling backoff with
    /// deterministic per-process jitter) offering this segment back to a
    /// restarted daemon — on success the very same call usually returns
    /// [`DecisionSource::Published`] again, because the adopting daemon
    /// seeds the decision block before the broker replies.
    pub fn current_decision(&mut self) -> CurrentDecision {
        self.current_decision_at(Instant::now())
    }

    /// [`PowerDialClient::current_decision`] with an injected clock
    /// reading (tests).
    fn current_decision_at(&mut self, now: Instant) -> CurrentDecision {
        let mut daemon_alive = self.producer.consumer_state().is_alive();
        if !daemon_alive && self.try_reattach(now) {
            daemon_alive = self.producer.consumer_state().is_alive();
        }
        self.note_liveness(daemon_alive, || now);
        if daemon_alive {
            self.reattach_attempt = 0;
            self.next_reattach_at = None;
        }

        let current = self.decide(daemon_alive, now);
        self.ladder.observe(current.source, now);
        current
    }

    /// The ladder walk proper, given this poll's liveness verdict.
    fn decide(&mut self, daemon_alive: bool, now: Instant) -> CurrentDecision {
        if let DecisionRead::Ready(shm) = self.producer.read_decision() {
            let decision = Decision::from_shm(&shm);
            self.last_known_good = Some(decision);
            if daemon_alive {
                return CurrentDecision {
                    decision,
                    source: DecisionSource::Published,
                };
            }
            // A consistent but orphaned decision: its author is gone, so
            // it is last-known-good, subject to the grace window below.
        }

        let grace_expired = match self.daemon_lost_at {
            Some(lost_at) => now.duration_since(lost_at) >= self.config.grace,
            None => false,
        };
        match self.last_known_good {
            Some(decision) if !grace_expired => CurrentDecision {
                decision,
                source: DecisionSource::LastKnownGood,
            },
            _ if !daemon_alive && self.reattach_socket.is_some() => CurrentDecision {
                decision: self.config.safe_decision,
                source: DecisionSource::Reattaching,
            },
            _ => CurrentDecision {
                decision: self.config.safe_decision,
                source: DecisionSource::SafeState,
            },
        }
    }

    /// Poll counters and rung-transition history for this client's
    /// degradation ladder, maintained by
    /// [`PowerDialClient::current_decision`]. Allocation-free to read;
    /// see [`crate::telemetry`].
    pub fn ladder_telemetry(&self) -> &LadderTelemetry {
        &self.ladder
    }

    /// Liveness of the daemon (consumer) side of the segment.
    pub fn daemon_state(&self) -> PeerState {
        self.producer.consumer_state()
    }

    /// Total beats pushed through this segment.
    pub fn beats_pushed(&self) -> u64 {
        self.producer.pushed()
    }

    /// Beats rejected because the ring was full.
    pub fn beats_rejected(&self) -> u64 {
        self.producer.rejected()
    }

    /// Beats pushed but not yet drained by the daemon.
    pub fn beats_in_flight(&self) -> u64 {
        self.producer.in_flight()
    }

    /// The client's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Arc<Segment> {
        self.producer.segment()
    }

    /// Releases the producer role for an orderly hand-off (a dropped or
    /// crashed client deliberately leaves its claim behind as the death
    /// signal the daemon's reaper consumes).
    pub fn detach(self) {
        self.producer.detach();
    }
}

/// Deterministic per-process jitter in permille of a backoff interval
/// (0..=250, i.e. up to a 25% stretch), mixed from the process identity
/// (PID plus its kernel start-time nonce) and the attempt index — no RNG
/// dependency, yet clients orphaned by the same daemon crash desynchronize
/// their retry storms instead of hammering the restarted broker in phase.
fn jitter_permille(attempt: u32) -> u128 {
    use powerdial_heartbeats::shm::{current_pid, process_start_nonce};
    let pid = current_pid();
    let mut x = (u64::from(pid) << 32)
        ^ process_start_nonce(pid).unwrap_or(0)
        ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // splitmix64 finalizer: avalanche the structured inputs.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    u128::from(x % 251)
}

/// `base` stretched by this process's jitter for the given attempt.
fn jittered(base: Duration, attempt: u32) -> Duration {
    let extra = base.as_nanos().saturating_mul(jitter_permille(attempt)) / 1000;
    base + Duration::from_nanos(extra.min(u128::from(u64::MAX)) as u64)
}

/// Runs `attempt` up to the configured number of times with doubling,
/// jittered backoff, stopping early on a non-retryable error.
fn retry<T>(
    config: &ClientConfig,
    mut attempt: impl FnMut(&ClientConfig) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = config.attach_attempts.max(1);
    let mut backoff = config.retry_backoff;
    let mut last = None;
    for index in 0..attempts {
        if index > 0 {
            std::thread::sleep(jittered(backoff, index));
            backoff = backoff.saturating_mul(2);
        }
        match attempt(config) {
            Ok(value) => return Ok(value),
            Err(err) if err.is_retryable() => last = Some(err),
            Err(err) => return Err(err),
        }
    }
    Err(ClientError::AttemptsExhausted {
        attempts,
        last: Box::new(last.expect("at least one attempt ran")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_heartbeats::shm::{SegmentGeometry, ShmConsumer};
    use std::sync::atomic::Ordering;

    fn segment(capacity: usize) -> Arc<Segment> {
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(capacity).unwrap()).unwrap())
    }

    fn config_with_grace(grace: Duration) -> ClientConfig {
        ClientConfig {
            grace,
            ..ClientConfig::default()
        }
    }

    fn decision(point: u32, gain: f64) -> ShmDecision {
        ShmDecision {
            point_idx: point,
            gain_bits: gain.to_bits(),
            achieved_speedup_bits: gain.to_bits(),
            qos_loss_bits: 0.01f64.to_bits(),
        }
    }

    #[test]
    fn never_controlled_serves_safe_state() {
        let segment = segment(16);
        let mut client = PowerDialClient::attach_segment(segment, ClientConfig::default()).unwrap();
        let current = client.current_decision();
        assert_eq!(current.source, DecisionSource::SafeState);
        assert_eq!(current.decision, Decision::IDENTITY);
    }

    #[test]
    fn published_decisions_flow_while_daemon_lives() {
        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut client =
            PowerDialClient::attach_segment(Arc::clone(&segment), ClientConfig::default()).unwrap();
        consumer.publish_decision(decision(2, 1.5));
        let current = client.current_decision();
        assert_eq!(current.source, DecisionSource::Published);
        assert_eq!(current.decision.point_idx, 2);
        assert_eq!(current.decision.gain.to_bits(), 1.5f64.to_bits());

        // A torn read (writer mid-publish) falls back to last-known-good.
        let seq = segment.header().decision_seq.load(Ordering::Acquire);
        segment
            .header()
            .decision_seq
            .store(seq + 1, Ordering::Release);
        let current = client.current_decision();
        assert_eq!(current.source, DecisionSource::LastKnownGood);
        assert_eq!(current.decision.point_idx, 2);
        segment.header().decision_seq.store(seq, Ordering::Release);
    }

    #[test]
    fn daemon_death_degrades_last_known_good_then_safe() {
        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let grace = Duration::from_secs(3600);
        let mut client =
            PowerDialClient::attach_segment(Arc::clone(&segment), config_with_grace(grace))
                .unwrap();
        consumer.publish_decision(decision(3, 2.0));
        assert_eq!(client.current_decision().source, DecisionSource::Published);

        // Simulate the daemon being SIGKILLed: its PID slot holds a
        // process that no longer exists.
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        let observed = Instant::now();
        let current = client.current_decision_at(observed);
        assert_eq!(current.source, DecisionSource::LastKnownGood);
        assert_eq!(current.decision.point_idx, 3);

        // Within the grace window: still last-known-good.
        let current = client.current_decision_at(observed + grace / 2);
        assert_eq!(current.source, DecisionSource::LastKnownGood);

        // Past the grace window: the configured safe state.
        let current = client.current_decision_at(observed + grace);
        assert_eq!(current.source, DecisionSource::SafeState);
        assert_eq!(current.decision, Decision::IDENTITY);
    }

    /// Regression: the grace window used to open only when
    /// `current_decision()` happened to observe the death, so a client
    /// that beat frequently but polled rarely served `LastKnownGood` far
    /// beyond `config.grace`. The beat path now probes liveness too, so
    /// the window is measured from the beat that saw the daemon dead.
    #[test]
    fn beat_only_grace_expiry() {
        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let grace = Duration::from_secs(3600);
        let mut client =
            PowerDialClient::attach_segment(Arc::clone(&segment), config_with_grace(grace))
                .unwrap();
        consumer.publish_decision(decision(5, 1.75));
        assert_eq!(client.current_decision().source, DecisionSource::Published);

        // The daemon is SIGKILLed; the application keeps beating but does
        // not poll for a long time.
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        let outage_observed = Instant::now();
        client
            .beat_at(Timestamp::from_millis(40), || outage_observed)
            .unwrap();
        assert_eq!(
            client.daemon_lost_at,
            Some(outage_observed),
            "the beat's liveness probe must open the grace window"
        );

        // The first poll lands a full grace window after that beat: the
        // stale decision must NOT be served (pre-fix, this poll was the
        // first observation, so the window opened here and the client
        // served LastKnownGood for another `grace`).
        let late = client.current_decision_at(outage_observed + grace);
        assert_eq!(late.source, DecisionSource::SafeState);
        assert_eq!(late.decision, Decision::IDENTITY);

        // Within the window (clock injected earlier than the poll above,
        // which is fine — `daemon_lost_at` is already pinned) the stale
        // decision is still served, i.e. the window really started at the
        // beat, it did not slam shut.
        let mid = client.current_decision_at(outage_observed + grace / 2);
        assert_eq!(mid.source, DecisionSource::LastKnownGood);
        assert_eq!(mid.decision.point_idx, 5);
    }

    /// The beat-path probe runs on a stride: beats between probes must
    /// not touch liveness state (and must not pay the probe's syscall).
    #[test]
    fn beat_liveness_probe_is_strided() {
        let segment = segment(256);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let grace = Duration::from_secs(3600);
        let mut client =
            PowerDialClient::attach_segment(Arc::clone(&segment), config_with_grace(grace))
                .unwrap();
        consumer.publish_decision(decision(1, 1.5));
        assert_eq!(client.current_decision().source, DecisionSource::Published);

        // Beat 0 probes (counter starts at 0) while the daemon lives.
        client.beat(Timestamp::from_millis(0)).unwrap();
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        // Beats 1..BEAT_LIVENESS_STRIDE-1 are between probes: the death
        // goes unobserved.
        for beat in 1..u64::from(BEAT_LIVENESS_STRIDE) {
            client.beat(Timestamp::from_millis(beat * 10)).unwrap();
            assert_eq!(client.daemon_lost_at, None, "beat {beat} must not probe");
        }
        // The next beat is the stride boundary: the probe fires and the
        // grace window opens.
        client
            .beat(Timestamp::from_millis(u64::from(BEAT_LIVENESS_STRIDE) * 10))
            .unwrap();
        assert!(
            client.daemon_lost_at.is_some(),
            "stride-boundary beat must probe and observe the death"
        );
    }

    #[test]
    fn ladder_telemetry_records_poll_outcomes_and_transitions() {
        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut client = PowerDialClient::attach_segment(
            Arc::clone(&segment),
            config_with_grace(Duration::ZERO),
        )
        .unwrap();
        consumer.publish_decision(decision(2, 1.25));
        client.current_decision();
        client.current_decision();
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        client.current_decision();

        let ladder = client.ladder_telemetry();
        assert_eq!(ladder.polls(DecisionSource::Published), 2);
        assert_eq!(ladder.polls(DecisionSource::SafeState), 1);
        assert_eq!(ladder.total_polls(), 3);
        assert_eq!(ladder.current_rung(), Some(DecisionSource::SafeState));
        let transitions: Vec<_> = ladder.transitions().collect();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].from, DecisionSource::Published);
        assert_eq!(transitions[0].to, DecisionSource::SafeState);
    }

    #[test]
    fn zero_grace_falls_back_immediately_and_recovers() {
        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut client = PowerDialClient::attach_segment(
            Arc::clone(&segment),
            config_with_grace(Duration::ZERO),
        )
        .unwrap();
        consumer.publish_decision(decision(1, 1.25));
        assert_eq!(client.current_decision().source, DecisionSource::Published);

        let real_daemon_pid = segment.header().consumer_pid.load(Ordering::Acquire);
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        assert_eq!(
            client.current_decision().source,
            DecisionSource::SafeState,
            "zero grace degrades on the first observation"
        );

        // A (re)started daemon closes the incident: published again.
        segment
            .header()
            .consumer_pid
            .store(real_daemon_pid, Ordering::Release);
        assert_eq!(client.current_decision().source, DecisionSource::Published);
    }

    #[test]
    fn beats_flow_through_the_segment() {
        let segment = segment(16);
        let mut consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut client =
            PowerDialClient::attach_segment(Arc::clone(&segment), ClientConfig::default()).unwrap();
        for beat in 0..5u64 {
            client.beat(Timestamp::from_millis(beat * 40)).unwrap();
        }
        assert_eq!(client.beats_pushed(), 5);
        assert_eq!(client.beats_in_flight(), 5);
        let mut out = Vec::new();
        assert_eq!(consumer.drain_into(&mut out), 5);
        assert_eq!(out[3].latency, TimestampDelta::from_millis(40));
        assert_eq!(client.beats_in_flight(), 0);
        assert_eq!(client.beats_rejected(), 0);
    }

    #[test]
    fn retry_stops_early_on_permanent_errors() {
        let mut attempts = 0u32;
        let config = ClientConfig {
            attach_attempts: 5,
            retry_backoff: Duration::ZERO,
            ..ClientConfig::default()
        };
        let result: Result<(), _> = retry(&config, |_| {
            attempts += 1;
            Err(ClientError::Protocol("permanent"))
        });
        assert!(matches!(result, Err(ClientError::Protocol(_))));
        assert_eq!(attempts, 1, "permanent errors are not retried");

        let mut attempts = 0u32;
        let result: Result<(), _> = retry(&config, |_| {
            attempts += 1;
            Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no daemon yet",
            )))
        });
        assert!(matches!(
            result,
            Err(ClientError::AttemptsExhausted { attempts: 5, .. })
        ));
        assert_eq!(attempts, 5, "transient errors use every attempt");

        let mut attempts = 0u32;
        let result = retry(&config, |_| {
            attempts += 1;
            if attempts < 3 {
                Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "still starting",
                )))
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result.unwrap(), 3, "success ends the retry loop");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(100);
        for attempt in 0..16u32 {
            let j = jittered(base, attempt);
            assert_eq!(j, jittered(base, attempt), "same inputs, same stretch");
            assert!(j >= base, "jitter only extends the backoff");
            assert!(
                j <= base + base / 4,
                "stretch is capped at 25% (got {j:?} for attempt {attempt})"
            );
        }
        // The permille value actually varies across attempts (the mix is
        // not degenerate): 16 attempts hitting one value is ~250^-15.
        let first = jitter_permille(0);
        assert!(
            (1..16).any(|attempt| jitter_permille(attempt) != first),
            "jitter must depend on the attempt index"
        );
    }

    #[cfg(all(feature = "broker", target_os = "linux"))]
    #[test]
    fn reattaching_rung_serves_safe_decision_while_broker_is_unreachable() {
        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut client = PowerDialClient::attach_segment(
            Arc::clone(&segment),
            config_with_grace(Duration::ZERO),
        )
        .unwrap();
        // A socket path nothing listens on: every handshake fails with a
        // retryable connect error, so the rung persists.
        client.set_reattach_socket(
            std::env::temp_dir().join(format!("pd-no-broker-{}.sock", std::process::id())),
        );
        consumer.publish_decision(decision(2, 1.5));
        assert_eq!(client.current_decision().source, DecisionSource::Published);

        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        let observed = Instant::now();
        for _ in 0..3 {
            let current = client.current_decision_at(observed);
            assert_eq!(current.source, DecisionSource::Reattaching);
            assert_eq!(current.decision, Decision::IDENTITY, "safe value served");
        }
        assert_eq!(
            client.reattach_attempt, 1,
            "repeated polls inside the backoff window fire one handshake"
        );
        assert!(client.next_reattach_at.is_some());
        // Past the backoff deadline the next poll fires attempt two.
        let after = client.next_reattach_at.unwrap();
        assert_eq!(
            client.current_decision_at(after).source,
            DecisionSource::Reattaching
        );
        assert_eq!(client.reattach_attempt, 2);
    }

    #[cfg(all(feature = "broker", target_os = "linux"))]
    #[test]
    fn permanent_refusal_abandons_reattach_and_degrades_to_safe_state() {
        use powerdial_heartbeats::shm::{HelloReply, HelloStatus, HELLO_REQUEST_LEN};
        use std::io::{Read, Write};

        let path = std::env::temp_dir().join(format!("pd-old-broker-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        // An old broker that predates the reattach flag: it reads the
        // hello, sees an unknown flag bit, and refuses it as malformed.
        let old_broker = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut hello = [0u8; HELLO_REQUEST_LEN];
            stream.read_exact(&mut hello).unwrap();
            stream
                .write_all(&HelloReply::new(HelloStatus::Malformed).encode())
                .unwrap();
        });

        let segment = segment(16);
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut client = PowerDialClient::attach_segment(
            Arc::clone(&segment),
            config_with_grace(Duration::ZERO),
        )
        .unwrap();
        client.set_reattach_socket(&path);
        consumer.publish_decision(decision(1, 1.25));
        assert_eq!(client.current_decision().source, DecisionSource::Published);

        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        // The refusal is permanent: the reattach path is dropped on the
        // spot and the ladder lands on the plain safe state, now and on
        // every later poll.
        assert_eq!(client.current_decision().source, DecisionSource::SafeState);
        assert!(client.reattach_socket.is_none());
        assert_eq!(client.current_decision().source, DecisionSource::SafeState);
        old_broker.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
