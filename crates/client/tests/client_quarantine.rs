//! The client side of quarantine: when the daemon quarantines an app,
//! the client does **not** fall down its degradation ladder — it reads a
//! freshly *published* safe-state decision, because the quarantine path
//! publishes the configured safe point through the segment's decision
//! block exactly like a healthy quantum would.
//!
//! That is the contract that makes quarantine invisible to application
//! code: the ladder serves `Published`, the knob lands on the safe
//! point, and the app keeps running (slower) instead of panicking along
//! with the fault.

#![cfg(unix)]

use std::sync::Arc;

use powerdial_client::{ClientConfig, DecisionSource, PowerDialClient};
use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControllerConfig, QuarantineReason, RuntimeConfig};
use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer};
use powerdial_heartbeats::Timestamp;
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

/// Deliberately not 0: the safe state must be distinguishable from both
/// the identity decision and a reset block.
const SAFE_POINT: u32 = 2;
const SAFE_SPEEDUP: f64 = 2.0;

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, SAFE_SPEEDUP, 3.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.01),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

#[test]
fn quarantined_apps_client_reads_published_safe_state() {
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    // In-process daemon: this process holds the consumer claim, so the
    // client's liveness probe keeps seeing a live daemon throughout —
    // quarantine is a *control* event, not a death.
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: 64,
        window_size: 8,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: SAFE_POINT,
    })
    .unwrap();
    let view = daemon
        .register_shm(
            RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap()),
            test_table(),
            consumer,
        )
        .unwrap();

    let mut client =
        PowerDialClient::attach_segment(Arc::clone(&segment), ClientConfig::default()).unwrap();

    // Healthy steady state first: beats flow, a published decision comes
    // back. 50 ms period = 20 beats/s against the 30 beats/s target, so
    // the controller publishes a boost.
    let mut tag = 0u64;
    let published = loop {
        assert!(tag < 10_000, "daemon never published a decision");
        let _ = client.beat(Timestamp::from_millis(tag * 50));
        tag += 1;
        daemon.tick();
        let current = client.current_decision();
        if current.source == DecisionSource::Published && current.decision.gain > 1.0 {
            break current.decision;
        }
    };
    assert!(view.quarantine_reason().is_none());

    // The fault: the app's next guarded drain panics and the daemon
    // quarantines it, publishing the configured safe state.
    assert!(daemon.inject_app_panic(view.id()));
    let _ = client.beat(Timestamp::from_millis(tag * 50));
    daemon.tick();
    assert_eq!(view.quarantine_reason(), Some(QuarantineReason::Panic));

    // The very next poll serves the safe state as a *published* decision
    // — top rung of the ladder, no grace window consumed, because the
    // daemon is alive and wrote a consistent block.
    let current = client.current_decision();
    assert_eq!(current.source, DecisionSource::Published);
    assert_eq!(current.decision.point_idx, SAFE_POINT);
    assert_eq!(current.decision.gain.to_bits(), SAFE_SPEEDUP.to_bits());
    assert_eq!(
        current.decision.achieved_speedup.to_bits(),
        SAFE_SPEEDUP.to_bits()
    );
    assert_ne!(
        current.decision.point_idx, published.point_idx,
        "the safe state must be a fresh publication, not the pre-fault decision"
    );

    // And it is stable: further beats are parked (the channel is never
    // drained again) but every poll keeps serving the same safe state.
    for _ in 0..5 {
        let _ = client.beat(Timestamp::from_millis(tag * 50));
        tag += 1;
        daemon.tick();
        let again = client.current_decision();
        assert_eq!(again.source, DecisionSource::Published);
        assert_eq!(again.decision.point_idx, SAFE_POINT);
    }
}
