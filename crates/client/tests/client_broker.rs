//! Cross-process integration of the full attach path: a **forked client
//! process** that shares nothing with the daemon but a socket path
//! registers through the attach broker, receives the segment fd over
//! `SCM_RIGHTS`, beats through the mapped segment, and reads the
//! daemon's decisions back — then the crash path: a SIGKILLed client is
//! noticed by PID liveness and reaped by the daemon.

#![cfg(target_os = "linux")]

use std::path::PathBuf;
use std::time::Duration;

use powerdial_client::{ClientConfig, DecisionSource, PowerDialClient};
use powerdial_control::daemon::{DaemonConfig, DecisionView, PowerDialDaemon};
use powerdial_control::{
    AttachBroker, AttachOutcome, AttachRequest, BrokerConfig, ControllerConfig, RuntimeConfig,
};
use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::{Timestamp, TimestampDelta};
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pd-client-{}-{name}.sock", std::process::id()))
}

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, 2.0, 3.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.01),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

fn inline_daemon() -> PowerDialDaemon {
    PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: 256,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap()
}

/// Routes a broker attach request to the daemon: fresh hellos register a
/// new app, reattach hellos adopt the client's existing segment.
fn attach(
    daemon: &mut PowerDialDaemon,
    request: AttachRequest,
) -> Result<DecisionView, powerdial_control::ControlError> {
    let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0)?);
    match request {
        AttachRequest::Fresh(consumer) => daemon.register_shm(config, test_table(), consumer),
        AttachRequest::Reattach(consumer) => {
            daemon.register_shm_adopted(config, test_table(), consumer)
        }
    }
}

/// Runs the daemon side — broker polling and actuation ticks — until the
/// granted app's stream has delivered `target_beats`, returning its view.
///
/// Termination is on *beats processed*, never on reaping: a child that
/// exited on its own is a zombie until `wait()`, and a zombie still
/// passes PID liveness (its `/proc` entry lingers), so waiting for
/// `reap_dead` here would spin forever.
fn serve_until(
    broker: &mut AttachBroker,
    daemon: &mut PowerDialDaemon,
    target_beats: u64,
) -> DecisionView {
    let mut view: Option<DecisionView> = None;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "stream stalled before {target_beats} beats"
        );
        if view.is_none() {
            let outcome = broker
                .poll_accept(daemon.app_count(), |request| attach(daemon, request))
                .unwrap();
            match outcome {
                None => {}
                Some(AttachOutcome::Granted(granted)) => view = Some(granted),
                Some(other) => panic!("unexpected outcome: {other:?}"),
            }
        }
        daemon.tick();
        if let Some(ref granted) = view {
            if granted.beats_processed() >= target_beats {
                return view.unwrap();
            }
        }
        std::hint::spin_loop();
    }
}

#[test]
fn forked_client_attaches_beats_and_reads_boost_through_shm() {
    const CHILD_BEATS: u64 = 200;
    let path = socket_path("roundtrip");
    let mut broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    let mut daemon = inline_daemon();

    let child = fork_child({
        let path = path.clone();
        move || {
            let Ok(mut client) = PowerDialClient::register(&path, ClientConfig::default()) else {
                return 1;
            };
            let mut now = Timestamp::ZERO;
            let mut boosted = false;
            for tag in 0..CHILD_BEATS {
                // 50 ms simulated period: 20 beats/s against the
                // daemon's 30 beats/s target.
                now += TimestampDelta::from_millis(if tag == 0 { 0 } else { 50 });
                if client.beat(now).is_err() {
                    return 2;
                }
                if tag % 20 == 19 {
                    let mut retries: u64 = 10_000_000_000;
                    while client.beats_in_flight() > 0 {
                        retries -= 1;
                        if retries == 0 {
                            return 3;
                        }
                        std::hint::spin_loop();
                    }
                    let current = client.current_decision();
                    if current.source == DecisionSource::Published && current.decision.gain > 1.0 {
                        boosted = true;
                    }
                }
            }
            // Exit code 0 is the cross-process proof: the *child* read
            // its boost back through the segment.
            if boosted {
                0
            } else {
                4
            }
        }
    })
    .unwrap();

    let view = serve_until(&mut broker, &mut daemon, CHILD_BEATS);
    // Reap the OS zombie first — until then the PID liveness check
    // rightly reads the child as not-yet-dead.
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));
    assert_eq!(view.beats_processed(), CHILD_BEATS, "lossless delivery");
    assert!(view.latest_gain().unwrap() > 1.0);
    assert_eq!(broker.granted(), 1);

    let mut reaped = daemon.reap_dead();
    if reaped.is_empty() {
        daemon.tick();
        reaped = daemon.reap_dead();
    }
    assert_eq!(reaped, vec![view.id()]);
    assert_eq!(daemon.app_count(), 0, "exited client was reaped");
}

#[test]
fn sigkilled_client_is_reaped_by_the_daemon() {
    let path = socket_path("clientkill");
    let mut broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    let mut daemon = inline_daemon();

    let child = fork_child({
        let path = path.clone();
        move || {
            let Ok(mut client) = PowerDialClient::register(&path, ClientConfig::default()) else {
                return 1;
            };
            let mut tag = 0u64;
            loop {
                let _ = client.beat(Timestamp::from_millis(tag * 50));
                tag += 1;
                // Keep the ring from saturating so the stream looks
                // healthy right up to the kill.
                while client.beats_in_flight() > 32 {
                    std::hint::spin_loop();
                }
            }
        }
    })
    .unwrap();

    // Serve the attach and let the stream run.
    let mut view: Option<DecisionView> = None;
    while view.is_none() || view.as_ref().unwrap().beats_processed() < 100 {
        if view.is_none() {
            if let Some(outcome) = broker
                .poll_accept(daemon.app_count(), |request| attach(&mut daemon, request))
                .unwrap()
            {
                match outcome {
                    AttachOutcome::Granted(granted) => view = Some(granted),
                    other => panic!("unexpected outcome: {other:?}"),
                }
            }
        }
        daemon.tick();
        std::hint::spin_loop();
    }
    let view = view.unwrap();
    assert!(
        daemon.reap_dead().is_empty(),
        "a live client is never reaped"
    );

    child.kill().unwrap();
    assert!(matches!(child.wait().unwrap(), ChildExit::Signaled(_)));

    // Collect the published tail, then reap: the daemon converges within
    // one post-mortem tick of draining dry.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        daemon.tick();
        let reaped = daemon.reap_dead();
        if !reaped.is_empty() {
            assert_eq!(reaped, vec![view.id()]);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dead client never reaped"
        );
    }
    assert_eq!(daemon.app_count(), 0);
    assert!(view.beats_processed() >= 100);
}

/// The recovery loop end to end at the client API: a registered client
/// loses its daemon, offers its segment back through the broker from
/// inside `current_decision`, a *successor* daemon adopts it, and the
/// stream resumes draining — through the same ring, no beats handed to
/// anyone else.
#[test]
fn client_reattaches_to_restarted_daemon_and_stream_resumes() {
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let path = socket_path("reattach");
    let mut broker = AttachBroker::bind(BrokerConfig::new(&path)).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let kill = Arc::new(AtomicBool::new(false));
    let restarted = Arc::new(AtomicBool::new(false));
    let adopted = Arc::new(AtomicU32::new(0));
    let server = std::thread::spawn({
        let stop = Arc::clone(&stop);
        let kill = Arc::clone(&kill);
        let restarted = Arc::clone(&restarted);
        let adopted = Arc::clone(&adopted);
        move || {
            let mut daemon = inline_daemon();
            while !stop.load(Ordering::Acquire) {
                if kill.swap(false, Ordering::AcqRel) {
                    // "Crash": the incumbent daemon is replaced wholesale.
                    // (The SIGKILL flavor — a sticky dead PID in the
                    // consumer slot — is covered by the adoption tests in
                    // powerdial-control; here the point is the client-side
                    // loop.)
                    daemon = inline_daemon();
                    restarted.store(true, Ordering::Release);
                }
                broker
                    .poll_accept(daemon.app_count(), |request| {
                        if matches!(request, AttachRequest::Reattach(_)) {
                            adopted.fetch_add(1, Ordering::AcqRel);
                        }
                        attach(&mut daemon, request)
                    })
                    .unwrap();
                daemon.tick();
                std::thread::yield_now();
            }
        }
    });

    let config = ClientConfig {
        grace: Duration::ZERO,
        ..ClientConfig::default()
    };
    let mut client = PowerDialClient::register(&path, config).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut now = Timestamp::ZERO;

    // Phase 1: beat until the first daemon's decisions flow.
    while client.current_decision().source != DecisionSource::Published {
        assert!(Instant::now() < deadline, "first daemon never published");
        let _ = client.beat(now);
        now += TimestampDelta::from_millis(50);
        std::thread::yield_now();
    }

    // Phase 2: crash the daemon and keep beating through the outage — the
    // ring buffers what the dead daemon missed.
    kill.store(true, Ordering::Release);
    while !restarted.load(Ordering::Acquire) {
        assert!(Instant::now() < deadline, "daemon never restarted");
        std::thread::yield_now();
    }

    // Phase 3: polling current_decision drives the reattach handshake;
    // the successor adopts this same segment and publishes again.
    while client.current_decision().source != DecisionSource::Published {
        assert!(Instant::now() < deadline, "client never reattached");
        let _ = client.beat(now);
        now += TimestampDelta::from_millis(50);
        std::thread::yield_now();
    }
    assert!(
        adopted.load(Ordering::Acquire) >= 1,
        "recovery must go through segment adoption, not a fresh register"
    );

    // The successor drains the ring the client has been filling all
    // along: in-flight converges to zero without a single new claim.
    while client.beats_in_flight() > 0 {
        assert!(
            Instant::now() < deadline,
            "successor never drained the ring"
        );
        std::thread::yield_now();
    }

    stop.store(true, Ordering::Release);
    server.join().unwrap();
    let _ = std::fs::remove_file(&path);
}
