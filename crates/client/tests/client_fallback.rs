//! The acceptance test of the client's stale-decision policy: a **real
//! forked daemon is SIGKILLed** under the application, and the client
//! degrades — last-known-good within the grace window, then the
//! configured safe state — without ever panicking or blocking.
//!
//! The daemon child owns the consumer side of the segment (its PID is in
//! the consumer slot), ticks a real `PowerDialDaemon`, and publishes
//! real decisions through the decision block; the parent is the
//! application, beating too slowly on purpose so the controller dials in
//! a boost the client can watch for.

#![cfg(unix)]

use std::sync::Arc;
use std::time::Duration;

use powerdial_client::{ClientConfig, Decision, DecisionSource, PowerDialClient};
use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial_control::{ControllerConfig, RuntimeConfig};
use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer};
use powerdial_heartbeats::Timestamp;
use powerdial_knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

fn test_table() -> KnobTable {
    let speedups = [1.0, 1.5, 2.0, 3.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
        .build()
        .unwrap();
    let points = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.01),
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
}

/// Forks a real daemon process that attaches the consumer side of
/// `segment`, registers it, and ticks until killed.
fn fork_daemon(segment: &Arc<Segment>) -> powerdial_heartbeats::shm::process::ForkedChild {
    fork_child({
        let segment = Arc::clone(segment);
        move || {
            let Ok(consumer) = ShmConsumer::attach(segment) else {
                return 1;
            };
            let Ok(mut daemon) = PowerDialDaemon::new(DaemonConfig {
                workers: 0,
                channel_capacity: 64,
                window_size: 20,
                inline_apps: 0,
                idle_skip_limit: 0,
                drain_cap: 0,
                telemetry: true,
                trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
                safe_point: 0,
            }) else {
                return 2;
            };
            let Ok(config) = ControllerConfig::new(30.0, 30.0) else {
                return 3;
            };
            if daemon
                .register_shm(RuntimeConfig::new(config), test_table(), consumer)
                .is_err()
            {
                return 4;
            }
            loop {
                daemon.tick();
                std::hint::spin_loop();
            }
        }
    })
    .unwrap()
}

/// Beats (too slowly for the 30 beats/s target) until the client reads a
/// boosted decision back from the live daemon, returning that decision.
fn beat_until_boosted(client: &mut PowerDialClient) -> Decision {
    let mut tag = 0u64;
    loop {
        assert!(tag < 1_000_000, "daemon never published a boost");
        // 50 ms simulated period = 20 beats/s against a 30 beats/s
        // target; drops on a briefly full ring are harmless here.
        let _ = client.beat(Timestamp::from_millis(tag * 50));
        tag += 1;
        let current = client.current_decision();
        if current.source == DecisionSource::Published && current.decision.gain > 1.0 {
            return current.decision;
        }
        std::thread::yield_now();
    }
}

#[test]
fn sigkilled_daemon_degrades_to_last_known_good_within_grace() {
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
    let daemon = fork_daemon(&segment);

    let config = ClientConfig {
        grace: Duration::from_secs(3600),
        ..ClientConfig::default()
    };
    let mut client = PowerDialClient::attach_segment(Arc::clone(&segment), config).unwrap();
    let boosted = beat_until_boosted(&mut client);

    // SIGKILL the daemon at an arbitrary point in its tick loop —
    // including, possibly, mid-publish. The wait() reaps the zombie so
    // the PID liveness check sees a truly dead process.
    daemon.kill().unwrap();
    assert!(matches!(daemon.wait().unwrap(), ChildExit::Signaled(_)));

    // Within the grace window the client keeps the last-known-good
    // decision — repeatedly, deterministically, and without panicking.
    // (The daemon may have re-decided between the observed boost and the
    // kill, so only the boost itself — not the exact point — is stable.)
    let _ = boosted;
    for _ in 0..100 {
        let current = client.current_decision();
        assert_eq!(current.source, DecisionSource::LastKnownGood);
        assert!(current.decision.gain > 1.0, "the boost survives the daemon");
    }
    assert!(!client.daemon_state().is_alive());

    // Beats still do not fail catastrophically: the ring simply fills.
    // (The base timestamp sits beyond any beat_until_boosted emitted, so
    // the clock stays monotonic.)
    for tag in 0..200u64 {
        let _ = client.beat(Timestamp::from_millis(100_000_000 + tag * 50));
    }
}

#[test]
fn sigkilled_daemon_with_zero_grace_falls_back_to_configured_safe_state() {
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
    let daemon = fork_daemon(&segment);

    // A distinctive safe state proves the *configured* decision is
    // served, not a hardcoded identity.
    let safe = Decision {
        point_idx: 9,
        gain: 0.5,
        achieved_speedup: 0.5,
        expected_qos_loss: 0.25,
    };
    let config = ClientConfig {
        grace: Duration::ZERO,
        safe_decision: safe,
        ..ClientConfig::default()
    };
    let mut client = PowerDialClient::attach_segment(Arc::clone(&segment), config).unwrap();
    beat_until_boosted(&mut client);

    daemon.kill().unwrap();
    assert!(matches!(daemon.wait().unwrap(), ChildExit::Signaled(_)));

    // Zero grace: the very first observation of the death settles on the
    // safe state — deterministic, no sleeps in the test.
    let current = client.current_decision();
    assert_eq!(current.source, DecisionSource::SafeState);
    assert_eq!(current.decision, safe);

    // And it stays there.
    for _ in 0..100 {
        assert_eq!(client.current_decision().source, DecisionSource::SafeState);
    }
}
