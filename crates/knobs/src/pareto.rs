//! Pareto-frontier computation over calibrated knob settings.

use crate::calibration::CalibrationPoint;

/// Returns the Pareto-optimal subset of calibration points.
///
/// A point is Pareto-optimal when no other point has both a speedup at least
/// as large and a QoS loss at least as small, with at least one of the two
/// strictly better. Ties (identical speedup and loss) keep the first point in
/// input order, matching the calibrator's deterministic setting order.
///
/// The returned references are sorted by increasing speedup (and therefore,
/// along the frontier, by increasing QoS loss).
///
/// # Example
///
/// ```
/// use powerdial_knobs::{pareto_frontier, CalibrationPoint, ConfigParameter, ParameterSpace};
/// use powerdial_qos::QosLoss;
///
/// # fn main() -> Result<(), powerdial_knobs::KnobError> {
/// let space = ParameterSpace::builder()
///     .parameter(ConfigParameter::new("k", vec![1.0, 2.0, 3.0], 3.0)?)
///     .build()?;
/// let points: Vec<CalibrationPoint> = vec![
///     CalibrationPoint { setting_index: 0, setting: space.setting(0).unwrap(), speedup: 2.0, qos_loss: QosLoss::new(0.10) },
///     CalibrationPoint { setting_index: 1, setting: space.setting(1).unwrap(), speedup: 1.5, qos_loss: QosLoss::new(0.20) },
///     CalibrationPoint { setting_index: 2, setting: space.setting(2).unwrap(), speedup: 1.0, qos_loss: QosLoss::ZERO },
/// ];
/// let frontier = pareto_frontier(&points);
/// // The middle point is dominated (slower *and* less accurate than point 0).
/// assert_eq!(frontier.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn pareto_frontier(points: &[CalibrationPoint]) -> Vec<&CalibrationPoint> {
    let mut frontier: Vec<&CalibrationPoint> = Vec::new();
    for (i, candidate) in points.iter().enumerate() {
        let dominated = points.iter().enumerate().any(|(j, other)| {
            if i == j {
                return false;
            }
            let as_fast = other.speedup >= candidate.speedup;
            let as_accurate = other.qos_loss.value() <= candidate.qos_loss.value();
            let strictly_better = other.speedup > candidate.speedup
                || other.qos_loss.value() < candidate.qos_loss.value();
            let tie = other.speedup == candidate.speedup
                && other.qos_loss.value() == candidate.qos_loss.value();
            (as_fast && as_accurate && strictly_better) || (tie && j < i)
        });
        if !dominated {
            frontier.push(candidate);
        }
    }
    frontier.sort_by(|a, b| {
        a.speedup
            .partial_cmp(&b.speedup)
            .expect("speedups are finite")
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parameter::{ConfigParameter, ParameterSpace};
    use powerdial_qos::QosLoss;

    fn points_from(specs: &[(f64, f64)]) -> Vec<CalibrationPoint> {
        let values: Vec<f64> = (0..specs.len()).map(|i| i as f64).collect();
        let default = values[specs.len() - 1];
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, default).unwrap())
            .build()
            .unwrap();
        specs
            .iter()
            .enumerate()
            .map(|(i, (speedup, loss))| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: *speedup,
                qos_loss: QosLoss::new(*loss),
            })
            .collect()
    }

    #[test]
    fn dominated_points_are_removed() {
        let points = points_from(&[(1.0, 0.0), (2.0, 0.05), (1.5, 0.10), (3.0, 0.2)]);
        let frontier = pareto_frontier(&points);
        let speedups: Vec<f64> = frontier.iter().map(|p| p.speedup).collect();
        assert_eq!(speedups, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn frontier_is_sorted_by_speedup() {
        let points = points_from(&[(3.0, 0.3), (1.0, 0.0), (2.0, 0.1)]);
        let frontier = pareto_frontier(&points);
        let speedups: Vec<f64> = frontier.iter().map(|p| p.speedup).collect();
        assert_eq!(speedups, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn duplicate_points_keep_one_representative() {
        let points = points_from(&[(2.0, 0.1), (2.0, 0.1), (1.0, 0.0)]);
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier.len(), 2);
        assert_eq!(frontier[1].setting_index, 0);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let points = points_from(&[(1.0, 0.0)]);
        assert_eq!(pareto_frontier(&points).len(), 1);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::parameter::{ConfigParameter, ParameterSpace};
    use powerdial_qos::QosLoss;
    use proptest::prelude::*;

    proptest! {
        /// No frontier point is dominated by any input point, and every
        /// non-frontier point is dominated by some frontier point.
        #[test]
        fn frontier_is_correct(
            specs in proptest::collection::vec((0.5f64..100.0, 0.0f64..0.5), 1..30),
        ) {
            let values: Vec<f64> = (0..specs.len()).map(|i| i as f64).collect();
            let default = values[specs.len() - 1];
            let space = ParameterSpace::builder()
                .parameter(ConfigParameter::new("k", values, default).unwrap())
                .build()
                .unwrap();
            let points: Vec<CalibrationPoint> = specs
                .iter()
                .enumerate()
                .map(|(i, (speedup, loss))| CalibrationPoint {
                    setting_index: i,
                    setting: space.setting(i).unwrap(),
                    speedup: *speedup,
                    qos_loss: QosLoss::new(*loss),
                })
                .collect();
            let frontier = pareto_frontier(&points);
            prop_assert!(!frontier.is_empty());

            let dominates = |a: &CalibrationPoint, b: &CalibrationPoint| {
                a.speedup >= b.speedup
                    && a.qos_loss.value() <= b.qos_loss.value()
                    && (a.speedup > b.speedup || a.qos_loss.value() < b.qos_loss.value())
            };

            for f in &frontier {
                for p in &points {
                    prop_assert!(!dominates(p, f));
                }
            }
            for p in &points {
                let on_frontier = frontier.iter().any(|f| f.setting_index == p.setting_index);
                if !on_frontier {
                    let covered = frontier.iter().any(|f| {
                        dominates(f, p)
                            || (f.speedup == p.speedup && f.qos_loss.value() == p.qos_loss.value())
                    });
                    prop_assert!(covered);
                }
            }
        }
    }
}
