//! Dynamic-knob calibration: measuring speedup and QoS loss per setting.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_qos::{
    distortion, weighted_distortion, OutputAbstraction, QosError, QosLoss, QosLossBound,
};

use crate::error::KnobError;
use crate::parameter::{ParameterSetting, ParameterSpace};
use crate::pareto::pareto_frontier;
use crate::table::KnobTable;

/// Compares a candidate output abstraction against the baseline abstraction
/// and produces a QoS loss.
///
/// The default comparator is the paper's distortion metric
/// ([`DistortionComparator`]); applications with structured outputs (such as
/// the search engine, which uses F-measure over result lists) provide their
/// own implementation.
pub trait QosComparator {
    /// A short name identifying the comparator in reports.
    fn name(&self) -> &str {
        "custom"
    }

    /// Computes the QoS loss of `candidate` relative to `baseline`.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] when the abstractions cannot be compared.
    fn qos_loss(
        &self,
        baseline: &OutputAbstraction,
        candidate: &OutputAbstraction,
    ) -> Result<QosLoss, QosError>;
}

/// The paper's distortion metric (Equation 1), optionally weighted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DistortionComparator {
    weights: Option<Vec<f64>>,
}

impl DistortionComparator {
    /// Unweighted distortion.
    pub fn new() -> Self {
        DistortionComparator { weights: None }
    }

    /// Distortion with per-component weights.
    pub fn weighted(weights: Vec<f64>) -> Self {
        DistortionComparator {
            weights: Some(weights),
        }
    }
}

impl QosComparator for DistortionComparator {
    fn name(&self) -> &str {
        "distortion"
    }

    fn qos_loss(
        &self,
        baseline: &OutputAbstraction,
        candidate: &OutputAbstraction,
    ) -> Result<QosLoss, QosError> {
        match &self.weights {
            Some(weights) => weighted_distortion(baseline, candidate, weights),
            None => distortion(baseline, candidate),
        }
    }
}

/// One calibration measurement: the work performed and the output produced by
/// one run of the application under one setting on one training input.
///
/// `work` is the execution cost of the run in abstract work units (on a
/// machine with constant speed it is proportional to execution time, which is
/// what the paper measures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Index of the parameter setting in the [`ParameterSpace`].
    pub setting_index: usize,
    /// Index of the training input.
    pub input_index: usize,
    /// Execution cost of the run, in abstract work units (must be positive).
    pub work: f64,
    /// The output abstraction produced by the run.
    pub output: OutputAbstraction,
}

/// The calibrated behaviour of one knob setting: mean speedup and mean QoS
/// loss relative to the baseline setting, averaged over training inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Index of the setting in the parameter space.
    pub setting_index: usize,
    /// The setting itself.
    pub setting: ParameterSetting,
    /// Mean speedup relative to the baseline setting (baseline work divided
    /// by this setting's work). The baseline's speedup is exactly 1.
    pub speedup: f64,
    /// Mean QoS loss relative to the baseline setting.
    pub qos_loss: QosLoss,
}

impl fmt::Display for CalibrationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: speedup {:.3}, qos loss {}",
            self.setting, self.speedup, self.qos_loss
        )
    }
}

/// The complete calibration result: one [`CalibrationPoint`] per measured
/// setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTable {
    points: Vec<CalibrationPoint>,
    baseline_index: usize,
}

impl CalibrationTable {
    /// All calibrated points, in setting-index order.
    pub fn points(&self) -> &[CalibrationPoint] {
        &self.points
    }

    /// The point for the baseline (default, highest-QoS) setting.
    pub fn baseline(&self) -> &CalibrationPoint {
        self.points
            .iter()
            .find(|p| p.setting_index == self.baseline_index)
            .expect("baseline point is always present")
    }

    /// The point for a specific setting index, if it was measured.
    pub fn point(&self, setting_index: usize) -> Option<&CalibrationPoint> {
        self.points
            .iter()
            .find(|p| p.setting_index == setting_index)
    }

    /// Number of calibrated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true when no point was calibrated.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The Pareto-optimal subset of points (maximal speedup for minimal QoS
    /// loss).
    pub fn pareto_points(&self) -> Vec<&CalibrationPoint> {
        pareto_frontier(&self.points)
    }

    /// Builds the runtime knob table from the Pareto-optimal points whose QoS
    /// loss is admitted by `bound`.
    ///
    /// # Errors
    ///
    /// Returns [`KnobError::EmptyKnobTable`] if no point survives the bound.
    pub fn knob_table(&self, bound: QosLossBound) -> Result<KnobTable, KnobError> {
        KnobTable::from_points(
            self.pareto_points().into_iter().cloned().collect(),
            self.baseline_index,
            bound,
        )
    }
}

/// Accumulates calibration measurements and produces a [`CalibrationTable`].
///
/// See the crate-level documentation for a complete example.
pub struct Calibrator<'a> {
    space: &'a ParameterSpace,
    comparator: Box<dyn QosComparator>,
    measurements: Vec<Measurement>,
}

impl fmt::Debug for Calibrator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Calibrator")
            .field("settings", &self.space.setting_count())
            .field("comparator", &self.comparator.name())
            .field("measurements", &self.measurements.len())
            .finish()
    }
}

impl<'a> Calibrator<'a> {
    /// Creates a calibrator using the unweighted distortion metric.
    pub fn new(space: &'a ParameterSpace) -> Self {
        Calibrator {
            space,
            comparator: Box::new(DistortionComparator::new()),
            measurements: Vec::new(),
        }
    }

    /// Replaces the QoS comparator (for example with an F-measure comparator
    /// for search workloads).
    pub fn with_comparator(mut self, comparator: Box<dyn QosComparator>) -> Self {
        self.comparator = comparator;
        self
    }

    /// Records one measurement.
    ///
    /// # Errors
    ///
    /// Returns an error when the setting index is out of range or the work is
    /// not positive and finite.
    pub fn record(&mut self, measurement: Measurement) -> Result<(), KnobError> {
        if measurement.setting_index >= self.space.setting_count() {
            return Err(KnobError::SettingOutOfRange {
                setting_index: measurement.setting_index,
                settings: self.space.setting_count(),
            });
        }
        if !measurement.work.is_finite() || measurement.work <= 0.0 {
            return Err(KnobError::InvalidWork {
                work: measurement.work,
            });
        }
        self.measurements.push(measurement);
        Ok(())
    }

    /// Number of recorded measurements.
    pub fn measurement_count(&self) -> usize {
        self.measurements.len()
    }

    /// Produces the calibration table from the recorded measurements.
    ///
    /// # Errors
    ///
    /// Returns an error when no measurement was recorded, when an input lacks
    /// a baseline measurement, or when a QoS comparison fails.
    pub fn build(&self) -> Result<CalibrationTable, KnobError> {
        if self.measurements.is_empty() {
            return Err(KnobError::NoMeasurements);
        }
        let baseline_index = self.space.default_setting_index();

        // Baseline measurement per input.
        let mut baseline_by_input: BTreeMap<usize, &Measurement> = BTreeMap::new();
        for measurement in &self.measurements {
            if measurement.setting_index == baseline_index {
                baseline_by_input.insert(measurement.input_index, measurement);
            }
        }

        // Group the rest by setting.
        let mut by_setting: BTreeMap<usize, Vec<&Measurement>> = BTreeMap::new();
        for measurement in &self.measurements {
            by_setting
                .entry(measurement.setting_index)
                .or_default()
                .push(measurement);
        }

        let mut points = Vec::with_capacity(by_setting.len());
        for (setting_index, measurements) in by_setting {
            let mut speedups = Vec::with_capacity(measurements.len());
            let mut losses = Vec::with_capacity(measurements.len());
            for measurement in measurements {
                let baseline = baseline_by_input.get(&measurement.input_index).ok_or(
                    KnobError::MissingBaselineMeasurement {
                        input_index: measurement.input_index,
                    },
                )?;
                speedups.push(baseline.work / measurement.work);
                losses.push(
                    self.comparator
                        .qos_loss(&baseline.output, &measurement.output)?,
                );
            }
            let speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
            let qos_loss = QosLoss::mean(losses).expect("at least one measurement per setting");
            points.push(CalibrationPoint {
                setting_index,
                setting: self
                    .space
                    .setting(setting_index)
                    .expect("setting index validated on record"),
                speedup,
                qos_loss,
            });
        }

        Ok(CalibrationTable {
            points,
            baseline_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parameter::ConfigParameter;

    fn single_knob_space() -> ParameterSpace {
        ParameterSpace::builder()
            .parameter(ConfigParameter::new("sims", vec![100.0, 500.0, 1000.0], 1000.0).unwrap())
            .build()
            .unwrap()
    }

    fn record_synthetic(calibrator: &mut Calibrator<'_>, space: &ParameterSpace, inputs: usize) {
        for input_index in 0..inputs {
            for (setting_index, setting) in space.settings().enumerate() {
                let sims = setting.value("sims").unwrap();
                // Work proportional to the trial count; output drifts as the
                // trial count shrinks.
                calibrator
                    .record(Measurement {
                        setting_index,
                        input_index,
                        work: sims,
                        output: OutputAbstraction::from_components(
                            [100.0 + (1000.0 - sims) * 0.01],
                        ),
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn calibration_computes_speedup_and_qos_loss() {
        let space = single_knob_space();
        let mut calibrator = Calibrator::new(&space);
        record_synthetic(&mut calibrator, &space, 3);
        assert_eq!(calibrator.measurement_count(), 9);
        let table = calibrator.build().unwrap();
        assert_eq!(table.len(), 3);

        let baseline = table.baseline();
        assert!((baseline.speedup - 1.0).abs() < 1e-12);
        assert_eq!(baseline.qos_loss, QosLoss::ZERO);

        let fastest = table.point(0).unwrap();
        assert!((fastest.speedup - 10.0).abs() < 1e-12);
        assert!(fastest.qos_loss.value() > 0.0);
        assert!(fastest.to_string().contains("speedup"));
    }

    #[test]
    fn pareto_points_dominate_the_rest() {
        let space = single_knob_space();
        let mut calibrator = Calibrator::new(&space);
        record_synthetic(&mut calibrator, &space, 1);
        let table = calibrator.build().unwrap();
        let pareto = table.pareto_points();
        // All three points are Pareto-optimal here (monotone trade-off).
        assert_eq!(pareto.len(), 3);
    }

    #[test]
    fn knob_table_respects_qos_bound() {
        let space = single_knob_space();
        let mut calibrator = Calibrator::new(&space);
        record_synthetic(&mut calibrator, &space, 1);
        let table = calibrator.build().unwrap();
        // The fastest setting has loss (1000-100)*0.01/100 = 0.09 = 9%.
        let tight = table
            .knob_table(QosLossBound::from_percent(5.0).unwrap())
            .unwrap();
        assert!(tight.len() < 3);
        let loose = table.knob_table(QosLossBound::UNBOUNDED).unwrap();
        assert_eq!(loose.len(), 3);
    }

    #[test]
    fn invalid_measurements_are_rejected() {
        let space = single_knob_space();
        let mut calibrator = Calibrator::new(&space);
        assert!(matches!(
            calibrator.record(Measurement {
                setting_index: 99,
                input_index: 0,
                work: 1.0,
                output: OutputAbstraction::from_components([1.0]),
            }),
            Err(KnobError::SettingOutOfRange { .. })
        ));
        assert!(matches!(
            calibrator.record(Measurement {
                setting_index: 0,
                input_index: 0,
                work: 0.0,
                output: OutputAbstraction::from_components([1.0]),
            }),
            Err(KnobError::InvalidWork { .. })
        ));
        assert!(matches!(calibrator.build(), Err(KnobError::NoMeasurements)));
    }

    #[test]
    fn missing_baseline_measurement_is_detected() {
        let space = single_knob_space();
        let mut calibrator = Calibrator::new(&space);
        calibrator
            .record(Measurement {
                setting_index: 0,
                input_index: 7,
                work: 10.0,
                output: OutputAbstraction::from_components([1.0]),
            })
            .unwrap();
        assert!(matches!(
            calibrator.build(),
            Err(KnobError::MissingBaselineMeasurement { input_index: 7 })
        ));
    }

    #[test]
    fn weighted_comparator_changes_losses() {
        let space = single_knob_space();
        let mut unweighted = Calibrator::new(&space);
        record_synthetic(&mut unweighted, &space, 1);
        let base_loss = unweighted.build().unwrap().point(0).unwrap().qos_loss;

        let mut weighted = Calibrator::new(&space)
            .with_comparator(Box::new(DistortionComparator::weighted(vec![2.0])));
        record_synthetic(&mut weighted, &space, 1);
        let weighted_loss = weighted.build().unwrap().point(0).unwrap().qos_loss;
        assert!((weighted_loss.value() - 2.0 * base_loss.value()).abs() < 1e-12);
    }

    #[test]
    fn debug_output_mentions_comparator() {
        let space = single_knob_space();
        let calibrator = Calibrator::new(&space);
        let text = format!("{calibrator:?}");
        assert!(text.contains("distortion"));
    }
}
