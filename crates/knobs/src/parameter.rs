//! Configuration parameters and the cartesian space of their settings.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::KnobError;

/// A user-identified configuration parameter and the range of values to
/// explore for it.
///
/// Values are represented as `f64` regardless of the parameter's native type
/// (all knobs in the paper's benchmarks are integers; the x264 `subme` knob,
/// for example, ranges over 1–7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigParameter {
    name: String,
    values: Vec<f64>,
    default: f64,
}

impl ConfigParameter {
    /// Creates a parameter with an explicit list of values and a default
    /// (highest-QoS) value.
    ///
    /// # Errors
    ///
    /// Returns an error when the value list is empty, contains a non-finite
    /// value, or does not contain the default.
    pub fn new(name: impl Into<String>, values: Vec<f64>, default: f64) -> Result<Self, KnobError> {
        let name = name.into();
        if values.is_empty() {
            return Err(KnobError::EmptyValueRange { parameter: name });
        }
        if values.iter().any(|v| !v.is_finite()) || !default.is_finite() {
            return Err(KnobError::NonFiniteValue { parameter: name });
        }
        if !values.iter().any(|v| v == &default) {
            return Err(KnobError::DefaultNotInRange {
                parameter: name,
                default,
            });
        }
        Ok(ConfigParameter {
            name,
            values,
            default,
        })
    }

    /// Creates an integer-stepped parameter covering `start..=end` in steps
    /// of `step`, with the default equal to `end` (the paper's knobs default
    /// to their highest-quality value).
    ///
    /// # Errors
    ///
    /// Returns an error when the resulting range is empty or invalid.
    pub fn stepped(
        name: impl Into<String>,
        start: u64,
        end: u64,
        step: u64,
    ) -> Result<Self, KnobError> {
        let name = name.into();
        if step == 0 || start > end {
            return Err(KnobError::EmptyValueRange { parameter: name });
        }
        let mut values: Vec<f64> = (start..=end)
            .step_by(step as usize)
            .map(|v| v as f64)
            .collect();
        let default = end as f64;
        if values.last() != Some(&default) {
            values.push(default);
        }
        ConfigParameter::new(name, values, default)
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The values explored for this parameter.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The default (highest-QoS) value.
    pub fn default_value(&self) -> f64 {
        self.default
    }

    /// Index of the default value within [`ConfigParameter::values`].
    pub fn default_index(&self) -> usize {
        self.values
            .iter()
            .position(|v| v == &self.default)
            .expect("default is validated to be in the value range")
    }
}

impl fmt::Display for ConfigParameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} values, default {})",
            self.name,
            self.values.len(),
            self.default
        )
    }
}

/// One concrete assignment of a value to every parameter in a
/// [`ParameterSpace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSetting {
    names: Vec<String>,
    values: Vec<f64>,
}

impl ParameterSetting {
    /// The value assigned to the named parameter, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// The assigned values in parameter-declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }

    /// Number of parameters in the setting.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true when the setting assigns no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for ParameterSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}}")
    }
}

/// The cartesian product of the explored values of every parameter.
///
/// Setting index 0 assigns every parameter its first listed value; the
/// ordering is row-major with the **last** parameter varying fastest, so the
/// index of a setting is stable under appending parameters' values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    parameters: Vec<ConfigParameter>,
}

impl ParameterSpace {
    /// Starts building a parameter space.
    pub fn builder() -> ParameterSpaceBuilder {
        ParameterSpaceBuilder::default()
    }

    /// The parameters, in declaration order.
    pub fn parameters(&self) -> &[ConfigParameter] {
        &self.parameters
    }

    /// Number of parameters.
    pub fn parameter_count(&self) -> usize {
        self.parameters.len()
    }

    /// Total number of settings (the product of the per-parameter value
    /// counts).
    pub fn setting_count(&self) -> usize {
        self.parameters.iter().map(|p| p.values().len()).product()
    }

    /// The setting at `index`, if it is in range.
    pub fn setting(&self, index: usize) -> Option<ParameterSetting> {
        if index >= self.setting_count() {
            return None;
        }
        let mut remainder = index;
        let mut values = vec![0.0; self.parameters.len()];
        for (slot, parameter) in self.parameters.iter().enumerate().rev() {
            let count = parameter.values().len();
            values[slot] = parameter.values()[remainder % count];
            remainder /= count;
        }
        Some(ParameterSetting {
            names: self
                .parameters
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
            values,
        })
    }

    /// Index of the default setting (every parameter at its default value).
    pub fn default_setting_index(&self) -> usize {
        let mut index = 0usize;
        for parameter in &self.parameters {
            index = index * parameter.values().len() + parameter.default_index();
        }
        index
    }

    /// The default setting itself.
    pub fn default_setting(&self) -> ParameterSetting {
        self.setting(self.default_setting_index())
            .expect("default setting index is always in range")
    }

    /// Iterates over every setting in index order.
    pub fn settings(&self) -> SettingIter<'_> {
        SettingIter {
            space: self,
            next: 0,
        }
    }
}

/// Iterator over the settings of a [`ParameterSpace`].
#[derive(Debug, Clone)]
pub struct SettingIter<'a> {
    space: &'a ParameterSpace,
    next: usize,
}

impl Iterator for SettingIter<'_> {
    type Item = ParameterSetting;

    fn next(&mut self) -> Option<ParameterSetting> {
        let setting = self.space.setting(self.next)?;
        self.next += 1;
        Some(setting)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.space.setting_count().saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SettingIter<'_> {}

/// Builder for [`ParameterSpace`].
#[derive(Debug, Clone, Default)]
pub struct ParameterSpaceBuilder {
    parameters: Vec<ConfigParameter>,
}

impl ParameterSpaceBuilder {
    /// Adds a parameter to the space.
    pub fn parameter(mut self, parameter: ConfigParameter) -> Self {
        self.parameters.push(parameter);
        self
    }

    /// Finishes the space.
    ///
    /// # Errors
    ///
    /// Returns an error when no parameters were added or two parameters share
    /// a name.
    pub fn build(self) -> Result<ParameterSpace, KnobError> {
        if self.parameters.is_empty() {
            return Err(KnobError::EmptyParameterSpace);
        }
        for (i, a) in self.parameters.iter().enumerate() {
            for b in &self.parameters[i + 1..] {
                if a.name() == b.name() {
                    return Err(KnobError::DuplicateParameter {
                        name: a.name().to_string(),
                    });
                }
            }
        }
        Ok(ParameterSpace {
            parameters: self.parameters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x264_like_space() -> ParameterSpace {
        ParameterSpace::builder()
            .parameter(ConfigParameter::stepped("subme", 1, 7, 1).unwrap())
            .parameter(ConfigParameter::stepped("merange", 1, 16, 5).unwrap())
            .parameter(ConfigParameter::stepped("ref", 1, 5, 1).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert!(matches!(
            ConfigParameter::new("p", vec![], 1.0),
            Err(KnobError::EmptyValueRange { .. })
        ));
        assert!(matches!(
            ConfigParameter::new("p", vec![1.0, 2.0], 3.0),
            Err(KnobError::DefaultNotInRange { .. })
        ));
        assert!(matches!(
            ConfigParameter::new("p", vec![1.0, f64::NAN], 1.0),
            Err(KnobError::NonFiniteValue { .. })
        ));
        let p = ConfigParameter::new("p", vec![1.0, 2.0, 3.0], 3.0).unwrap();
        assert_eq!(p.default_index(), 2);
        assert_eq!(p.name(), "p");
        assert!(p.to_string().contains("3 values"));
    }

    #[test]
    fn stepped_parameter_includes_endpoint_default() {
        let p = ConfigParameter::stepped("merange", 1, 16, 5).unwrap();
        assert_eq!(p.values(), &[1.0, 6.0, 11.0, 16.0]);
        assert_eq!(p.default_value(), 16.0);
        assert!(ConfigParameter::stepped("bad", 5, 1, 1).is_err());
        assert!(ConfigParameter::stepped("bad", 1, 5, 0).is_err());
    }

    #[test]
    fn setting_count_is_product_of_ranges() {
        let space = x264_like_space();
        assert_eq!(space.parameter_count(), 3);
        assert_eq!(space.setting_count(), 7 * 4 * 5);
        assert_eq!(space.settings().len(), 140);
    }

    #[test]
    fn settings_enumerate_cartesian_product() {
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("a", vec![1.0, 2.0], 2.0).unwrap())
            .parameter(ConfigParameter::new("b", vec![10.0, 20.0, 30.0], 30.0).unwrap())
            .build()
            .unwrap();
        let all: Vec<Vec<f64>> = space.settings().map(|s| s.values().to_vec()).collect();
        assert_eq!(
            all,
            vec![
                vec![1.0, 10.0],
                vec![1.0, 20.0],
                vec![1.0, 30.0],
                vec![2.0, 10.0],
                vec![2.0, 20.0],
                vec![2.0, 30.0],
            ]
        );
        assert!(space.setting(6).is_none());
    }

    #[test]
    fn default_setting_assigns_every_default() {
        let space = x264_like_space();
        let default = space.default_setting();
        assert_eq!(default.value("subme"), Some(7.0));
        assert_eq!(default.value("merange"), Some(16.0));
        assert_eq!(default.value("ref"), Some(5.0));
        assert_eq!(
            space.setting(space.default_setting_index()).unwrap(),
            default
        );
    }

    #[test]
    fn setting_lookup_by_name() {
        let space = x264_like_space();
        let setting = space.setting(0).unwrap();
        assert_eq!(setting.value("subme"), Some(1.0));
        assert_eq!(setting.value("missing"), None);
        assert_eq!(setting.len(), 3);
        assert!(!setting.is_empty());
        assert!(setting.to_string().starts_with('{'));
    }

    #[test]
    fn builder_rejects_empty_and_duplicate_spaces() {
        assert!(matches!(
            ParameterSpace::builder().build(),
            Err(KnobError::EmptyParameterSpace)
        ));
        let dup = ParameterSpace::builder()
            .parameter(ConfigParameter::new("x", vec![1.0], 1.0).unwrap())
            .parameter(ConfigParameter::new("x", vec![2.0], 2.0).unwrap())
            .build();
        assert!(matches!(dup, Err(KnobError::DuplicateParameter { .. })));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every index in range maps to a unique setting and the default
        /// setting index round-trips.
        #[test]
        fn settings_are_unique_and_complete(
            counts in proptest::collection::vec(1usize..5, 1..4),
        ) {
            let mut builder = ParameterSpace::builder();
            for (i, count) in counts.iter().enumerate() {
                let values: Vec<f64> = (0..*count).map(|v| v as f64).collect();
                let default = values[*count - 1];
                builder = builder.parameter(
                    ConfigParameter::new(format!("p{i}"), values, default).unwrap(),
                );
            }
            let space = builder.build().unwrap();
            let total = space.setting_count();
            let mut seen = std::collections::HashSet::new();
            for setting in space.settings() {
                let key: Vec<u64> = setting.values().iter().map(|v| v.to_bits()).collect();
                prop_assert!(seen.insert(key));
            }
            prop_assert_eq!(seen.len(), total);
            let default = space.default_setting();
            for (i, parameter) in space.parameters().iter().enumerate() {
                prop_assert_eq!(default.values()[i], parameter.default_value());
            }
        }
    }
}
