//! The runtime knob table consulted by the PowerDial actuator.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_qos::QosLossBound;

use crate::calibration::CalibrationPoint;
use crate::error::KnobError;
use crate::parameter::ParameterSetting;

/// A stable dense index into a [`KnobTable`].
///
/// A `PointIdx` names one retained calibration point for the lifetime of the
/// table (points are never added, removed, or reordered after
/// [`KnobTable::from_points`]). It is the hot-path currency of the PowerDial
/// runtime: the actuator plans schedules as `PointIdx` arrays and consumers
/// resolve an index to its [`CalibrationPoint`] with [`KnobTable::point`]
/// only when they need the full setting — so the per-heartbeat loop moves
/// 4-byte copies instead of cloning points (each of which owns the heap-
/// allocated parameter setting).
///
/// Indices are ordered by speedup, because the table is: `PointIdx(0)` is
/// the slowest retained point and `PointIdx(len - 1)` the fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PointIdx(u32);

impl PointIdx {
    /// Creates an index from a raw position (for tests and deserialization
    /// paths; prefer the indices handed out by [`KnobTable`] accessors).
    pub const fn new(position: u32) -> Self {
        PointIdx(position)
    }

    /// The raw position of the point within [`KnobTable::points`].
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PointIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point#{}", self.0)
    }
}

/// A calibrated, Pareto-filtered table of knob settings ordered by speedup.
///
/// The actuator uses the table to answer two questions at runtime: *what is
/// the maximum speedup the knobs can deliver* ([`KnobTable::max_speedup`])
/// and *what is the cheapest setting that delivers at least speedup `s`*
/// ([`KnobTable::setting_for_speedup`], or allocation-free via
/// [`KnobTable::idx_for_speedup`] + [`KnobTable::point`]). Both index-based
/// lookups are O(log n) binary searches over the speedup-sorted points; the
/// baseline position is precomputed so [`KnobTable::baseline`] is O(1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobTable {
    /// Points sorted by increasing speedup.
    points: Vec<CalibrationPoint>,
    baseline_index: usize,
    /// Position of the baseline point within `points` (precomputed).
    baseline_pos: usize,
}

impl KnobTable {
    /// Builds a table from calibration points, keeping only those admitted by
    /// the QoS-loss bound. The baseline point is always retained.
    ///
    /// # Errors
    ///
    /// Returns [`KnobError::EmptyKnobTable`] when no point survives.
    pub fn from_points(
        points: Vec<CalibrationPoint>,
        baseline_index: usize,
        bound: QosLossBound,
    ) -> Result<Self, KnobError> {
        let mut kept: Vec<CalibrationPoint> = points
            .into_iter()
            .filter(|p| p.setting_index == baseline_index || bound.admits(p.qos_loss))
            .collect();
        if kept.is_empty() {
            return Err(KnobError::EmptyKnobTable);
        }
        kept.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedups"));
        let baseline_pos = kept
            .iter()
            .position(|p| p.setting_index == baseline_index)
            .unwrap_or(0);
        Ok(KnobTable {
            points: kept,
            baseline_index,
            baseline_pos,
        })
    }

    /// The retained points, sorted by increasing speedup.
    pub fn points(&self) -> &[CalibrationPoint] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true when the table has no points (never true for a table
    /// built through [`KnobTable::from_points`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The baseline (default, highest-QoS) point. O(1): the position is
    /// precomputed at construction.
    pub fn baseline(&self) -> &CalibrationPoint {
        &self.points[self.baseline_pos]
    }

    /// The baseline parameter setting.
    pub fn baseline_setting(&self) -> &ParameterSetting {
        &self.baseline().setting
    }

    /// The largest speedup any retained setting delivers.
    pub fn max_speedup(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.speedup)
            .expect("table is never empty")
    }

    /// The point with the largest speedup.
    pub fn fastest(&self) -> &CalibrationPoint {
        self.points.last().expect("table is never empty")
    }

    /// The cheapest (lowest-QoS-loss) setting whose speedup is at least
    /// `required`. Returns `None` when even the fastest setting falls short.
    ///
    /// Because the table holds Pareto-optimal points sorted by speedup, the
    /// first point meeting the requirement also has the smallest QoS loss
    /// among those that meet it — this is the `s_min` of the paper's
    /// actuation policy (Section 2.3.3).
    pub fn setting_for_speedup(&self, required: f64) -> Option<&CalibrationPoint> {
        self.idx_for_speedup(required).map(|idx| self.point(idx))
    }

    /// Iterates over the retained points.
    pub fn iter(&self) -> impl Iterator<Item = &CalibrationPoint> {
        self.points.iter()
    }

    /// Resolves a [`PointIdx`] to its calibration point.
    ///
    /// # Panics
    ///
    /// Panics when `idx` did not come from this table (out of range).
    pub fn point(&self, idx: PointIdx) -> &CalibrationPoint {
        &self.points[idx.as_usize()]
    }

    /// Resolves a [`PointIdx`], returning `None` when out of range.
    pub fn get(&self, idx: PointIdx) -> Option<&CalibrationPoint> {
        self.points.get(idx.as_usize())
    }

    /// The instantaneous speedup of the point at `idx` (hot-path shorthand
    /// for `table.point(idx).speedup`).
    pub fn speedup_of(&self, idx: PointIdx) -> f64 {
        self.points[idx.as_usize()].speedup
    }

    /// Index of the baseline (default, highest-QoS) point. O(1).
    pub fn baseline_idx(&self) -> PointIdx {
        PointIdx(self.baseline_pos as u32)
    }

    /// Index of the point with the largest speedup. O(1).
    pub fn fastest_idx(&self) -> PointIdx {
        PointIdx((self.points.len() - 1) as u32)
    }

    /// Index of the cheapest point whose speedup is at least `required`, or
    /// `None` when even the fastest falls short (or `required` is NaN,
    /// matching the linear scan this replaced: no speedup compares ≥ NaN).
    /// O(log n) binary search over the speedup-sorted points; equivalent to
    /// [`KnobTable::setting_for_speedup`] but returns the stable index
    /// instead of borrowing the point.
    pub fn idx_for_speedup(&self, required: f64) -> Option<PointIdx> {
        if required.is_nan() {
            return None;
        }
        let pos = self.points.partition_point(|p| p.speedup < required);
        if pos < self.points.len() {
            Some(PointIdx(pos as u32))
        } else {
            None
        }
    }

    /// Iterates over the indices of the retained points, slowest first.
    pub fn indices(&self) -> impl Iterator<Item = PointIdx> {
        (0..self.points.len() as u32).map(PointIdx)
    }
}

impl fmt::Display for KnobTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "knob table ({} settings)", self.points.len())?;
        for point in &self.points {
            writeln!(f, "  {point}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parameter::{ConfigParameter, ParameterSpace};
    use powerdial_qos::QosLoss;

    fn table_from(
        specs: &[(f64, f64)],
        baseline_index: usize,
        bound: QosLossBound,
    ) -> Result<KnobTable, KnobError> {
        let values: Vec<f64> = (0..specs.len()).map(|i| i as f64).collect();
        let default = values[baseline_index];
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, default).unwrap())
            .build()
            .unwrap();
        let points: Vec<CalibrationPoint> = specs
            .iter()
            .enumerate()
            .map(|(i, (speedup, loss))| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: *speedup,
                qos_loss: QosLoss::new(*loss),
            })
            .collect();
        KnobTable::from_points(points, baseline_index, bound)
    }

    #[test]
    fn points_are_sorted_by_speedup() {
        let table = table_from(
            &[(3.0, 0.3), (1.0, 0.0), (2.0, 0.1)],
            1,
            QosLossBound::UNBOUNDED,
        )
        .unwrap();
        let speedups: Vec<f64> = table.iter().map(|p| p.speedup).collect();
        assert_eq!(speedups, vec![1.0, 2.0, 3.0]);
        assert_eq!(table.max_speedup(), 3.0);
        assert_eq!(table.fastest().speedup, 3.0);
        assert_eq!(table.baseline().speedup, 1.0);
        assert_eq!(table.baseline_setting().values(), &[1.0]);
        assert!(!table.is_empty());
        assert!(table.to_string().contains("3 settings"));
    }

    #[test]
    fn qos_bound_filters_points_but_keeps_baseline() {
        let table = table_from(
            &[(4.0, 0.5), (1.0, 0.0), (2.0, 0.04)],
            1,
            QosLossBound::from_percent(5.0).unwrap(),
        )
        .unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.point_exists(1));
        assert!(table.point_exists(2));
        assert!(!table.point_exists(0));
    }

    #[test]
    fn setting_for_speedup_picks_minimal_sufficient_point() {
        let table = table_from(
            &[(1.0, 0.0), (2.0, 0.1), (4.0, 0.2)],
            0,
            QosLossBound::UNBOUNDED,
        )
        .unwrap();
        assert_eq!(table.setting_for_speedup(1.5).unwrap().speedup, 2.0);
        assert_eq!(table.setting_for_speedup(2.0).unwrap().speedup, 2.0);
        assert_eq!(table.setting_for_speedup(3.0).unwrap().speedup, 4.0);
        assert!(table.setting_for_speedup(10.0).is_none());
        assert_eq!(table.setting_for_speedup(0.5).unwrap().speedup, 1.0);
    }

    #[test]
    fn point_indices_are_stable_and_speedup_ordered() {
        let table = table_from(
            &[(3.0, 0.3), (1.0, 0.0), (2.0, 0.1)],
            1,
            QosLossBound::UNBOUNDED,
        )
        .unwrap();
        // Indices enumerate the speedup-sorted points.
        let speedups: Vec<f64> = table.indices().map(|i| table.speedup_of(i)).collect();
        assert_eq!(speedups, vec![1.0, 2.0, 3.0]);
        assert_eq!(table.baseline_idx().as_usize(), 0);
        assert_eq!(table.point(table.baseline_idx()), table.baseline());
        assert_eq!(table.fastest_idx().as_usize(), 2);
        assert_eq!(table.point(table.fastest_idx()), table.fastest());
        assert_eq!(table.get(PointIdx::new(9)), None);
        assert_eq!(PointIdx::new(2).to_string(), "point#2");
    }

    #[test]
    fn idx_for_speedup_agrees_with_linear_scan() {
        let table = table_from(
            &[(1.0, 0.0), (2.0, 0.1), (2.0, 0.15), (4.0, 0.2)],
            0,
            QosLossBound::UNBOUNDED,
        )
        .unwrap();
        for required in [
            0.0,
            0.5,
            1.0,
            1.5,
            2.0,
            2.5,
            3.999,
            4.0,
            4.001,
            10.0,
            f64::NAN,
        ] {
            let by_index = table.idx_for_speedup(required).map(|i| table.point(i));
            let by_scan = table.iter().find(|p| p.speedup >= required);
            assert_eq!(by_index, by_scan, "required {required}");
        }
        // NaN finds nothing (no speedup compares ≥ NaN), as with the old
        // linear scan.
        assert!(table.idx_for_speedup(f64::NAN).is_none());
        assert!(table.setting_for_speedup(f64::NAN).is_none());
    }

    #[test]
    fn empty_table_is_an_error() {
        // Bound excludes everything and the baseline index does not match any
        // point (simulating a mis-specified baseline).
        let result = table_from(&[(2.0, 0.9)], 0, QosLossBound::from_percent(1.0).unwrap());
        // Baseline index 0 matches the only point, so it is retained.
        assert!(result.is_ok());
        let no_points = KnobTable::from_points(vec![], 0, QosLossBound::UNBOUNDED);
        assert!(matches!(no_points, Err(KnobError::EmptyKnobTable)));
    }

    impl KnobTable {
        fn point_exists(&self, setting_index: usize) -> bool {
            self.points.iter().any(|p| p.setting_index == setting_index)
        }
    }
}
