//! The runtime knob table consulted by the PowerDial actuator.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_qos::QosLossBound;

use crate::calibration::CalibrationPoint;
use crate::error::KnobError;
use crate::parameter::ParameterSetting;

/// A calibrated, Pareto-filtered table of knob settings ordered by speedup.
///
/// The actuator uses the table to answer two questions at runtime: *what is
/// the maximum speedup the knobs can deliver* ([`KnobTable::max_speedup`])
/// and *what is the cheapest setting that delivers at least speedup `s`*
/// ([`KnobTable::setting_for_speedup`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobTable {
    /// Points sorted by increasing speedup.
    points: Vec<CalibrationPoint>,
    baseline_index: usize,
}

impl KnobTable {
    /// Builds a table from calibration points, keeping only those admitted by
    /// the QoS-loss bound. The baseline point is always retained.
    ///
    /// # Errors
    ///
    /// Returns [`KnobError::EmptyKnobTable`] when no point survives.
    pub fn from_points(
        points: Vec<CalibrationPoint>,
        baseline_index: usize,
        bound: QosLossBound,
    ) -> Result<Self, KnobError> {
        let mut kept: Vec<CalibrationPoint> = points
            .into_iter()
            .filter(|p| p.setting_index == baseline_index || bound.admits(p.qos_loss))
            .collect();
        if kept.is_empty() {
            return Err(KnobError::EmptyKnobTable);
        }
        kept.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedups"));
        Ok(KnobTable {
            points: kept,
            baseline_index,
        })
    }

    /// The retained points, sorted by increasing speedup.
    pub fn points(&self) -> &[CalibrationPoint] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true when the table has no points (never true for a table
    /// built through [`KnobTable::from_points`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The baseline (default, highest-QoS) point.
    pub fn baseline(&self) -> &CalibrationPoint {
        self.points
            .iter()
            .find(|p| p.setting_index == self.baseline_index)
            .unwrap_or_else(|| &self.points[0])
    }

    /// The baseline parameter setting.
    pub fn baseline_setting(&self) -> &ParameterSetting {
        &self.baseline().setting
    }

    /// The largest speedup any retained setting delivers.
    pub fn max_speedup(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.speedup)
            .expect("table is never empty")
    }

    /// The point with the largest speedup.
    pub fn fastest(&self) -> &CalibrationPoint {
        self.points.last().expect("table is never empty")
    }

    /// The cheapest (lowest-QoS-loss) setting whose speedup is at least
    /// `required`. Returns `None` when even the fastest setting falls short.
    ///
    /// Because the table holds Pareto-optimal points sorted by speedup, the
    /// first point meeting the requirement also has the smallest QoS loss
    /// among those that meet it — this is the `s_min` of the paper's
    /// actuation policy (Section 2.3.3).
    pub fn setting_for_speedup(&self, required: f64) -> Option<&CalibrationPoint> {
        self.points.iter().find(|p| p.speedup >= required)
    }

    /// Iterates over the retained points.
    pub fn iter(&self) -> impl Iterator<Item = &CalibrationPoint> {
        self.points.iter()
    }
}

impl fmt::Display for KnobTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "knob table ({} settings)", self.points.len())?;
        for point in &self.points {
            writeln!(f, "  {point}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parameter::{ConfigParameter, ParameterSpace};
    use powerdial_qos::QosLoss;

    fn table_from(specs: &[(f64, f64)], baseline_index: usize, bound: QosLossBound) -> Result<KnobTable, KnobError> {
        let values: Vec<f64> = (0..specs.len()).map(|i| i as f64).collect();
        let default = values[baseline_index];
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, default).unwrap())
            .build()
            .unwrap();
        let points: Vec<CalibrationPoint> = specs
            .iter()
            .enumerate()
            .map(|(i, (speedup, loss))| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: *speedup,
                qos_loss: QosLoss::new(*loss),
            })
            .collect();
        KnobTable::from_points(points, baseline_index, bound)
    }

    #[test]
    fn points_are_sorted_by_speedup() {
        let table = table_from(
            &[(3.0, 0.3), (1.0, 0.0), (2.0, 0.1)],
            1,
            QosLossBound::UNBOUNDED,
        )
        .unwrap();
        let speedups: Vec<f64> = table.iter().map(|p| p.speedup).collect();
        assert_eq!(speedups, vec![1.0, 2.0, 3.0]);
        assert_eq!(table.max_speedup(), 3.0);
        assert_eq!(table.fastest().speedup, 3.0);
        assert_eq!(table.baseline().speedup, 1.0);
        assert_eq!(table.baseline_setting().values(), &[1.0]);
        assert!(!table.is_empty());
        assert!(table.to_string().contains("3 settings"));
    }

    #[test]
    fn qos_bound_filters_points_but_keeps_baseline() {
        let table = table_from(
            &[(4.0, 0.5), (1.0, 0.0), (2.0, 0.04)],
            1,
            QosLossBound::from_percent(5.0).unwrap(),
        )
        .unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.point_exists(1));
        assert!(table.point_exists(2));
        assert!(!table.point_exists(0));
    }

    #[test]
    fn setting_for_speedup_picks_minimal_sufficient_point() {
        let table = table_from(
            &[(1.0, 0.0), (2.0, 0.1), (4.0, 0.2)],
            0,
            QosLossBound::UNBOUNDED,
        )
        .unwrap();
        assert_eq!(table.setting_for_speedup(1.5).unwrap().speedup, 2.0);
        assert_eq!(table.setting_for_speedup(2.0).unwrap().speedup, 2.0);
        assert_eq!(table.setting_for_speedup(3.0).unwrap().speedup, 4.0);
        assert!(table.setting_for_speedup(10.0).is_none());
        assert_eq!(table.setting_for_speedup(0.5).unwrap().speedup, 1.0);
    }

    #[test]
    fn empty_table_is_an_error() {
        // Bound excludes everything and the baseline index does not match any
        // point (simulating a mis-specified baseline).
        let result = table_from(&[(2.0, 0.9)], 0, QosLossBound::from_percent(1.0).unwrap());
        // Baseline index 0 matches the only point, so it is retained.
        assert!(result.is_ok());
        let no_points = KnobTable::from_points(vec![], 0, QosLossBound::UNBOUNDED);
        assert!(matches!(no_points, Err(KnobError::EmptyKnobTable)));
    }

    impl KnobTable {
        fn point_exists(&self, setting_index: usize) -> bool {
            self.points.iter().any(|p| p.setting_index == setting_index)
        }
    }
}
