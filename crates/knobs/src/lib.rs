//! Dynamic knobs: configuration parameters, calibration, and Pareto-optimal
//! knob tables.
//!
//! A *dynamic knob* is a configuration parameter whose backing control
//! variables can be changed while the application runs. This crate provides
//! the data model PowerDial builds around them:
//!
//! * [`ConfigParameter`] and [`ParameterSpace`] — the user-identified
//!   parameters, their value ranges, and the cartesian product of settings
//!   explored during calibration;
//! * [`ControlVariableStore`] — the runtime store of control-variable values
//!   the actuator writes and the application reads each main-loop iteration;
//! * [`Calibrator`] and [`CalibrationTable`] — speedup and QoS-loss
//!   measurement for every setting relative to the highest-QoS (default)
//!   setting, averaged over training inputs (Section 2.2);
//! * [`pareto_frontier`] — the Pareto-optimal subset of calibrated settings;
//! * [`KnobTable`] — the calibrated, Pareto-filtered table the PowerDial
//!   actuator consults to translate a required speedup into a knob setting.
//!
//! # Example
//!
//! ```
//! use powerdial_knobs::{Calibrator, ConfigParameter, Measurement, ParameterSpace};
//! use powerdial_qos::OutputAbstraction;
//!
//! # fn main() -> Result<(), powerdial_knobs::KnobError> {
//! // One parameter controlling a Monte Carlo trial count.
//! let space = ParameterSpace::builder()
//!     .parameter(ConfigParameter::new("sims", vec![100.0, 1000.0], 1000.0)?)
//!     .build()?;
//!
//! // Pretend measurements: fewer simulations run 10x faster but perturb the
//! // output slightly.
//! let mut calibrator = Calibrator::new(&space);
//! for (setting_index, setting) in space.settings().enumerate() {
//!     let sims = setting.value("sims").unwrap();
//!     calibrator.record(Measurement {
//!         setting_index,
//!         input_index: 0,
//!         work: sims,
//!         output: OutputAbstraction::from_components([1.0 + 0.001 * (1000.0 - sims)]),
//!     })?;
//! }
//! let table = calibrator.build()?;
//! assert_eq!(table.len(), 2);
//! assert!(table.point(0).unwrap().speedup > 5.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod calibration;
mod error;
mod parameter;
mod pareto;
mod store;
mod table;

pub use calibration::{
    CalibrationPoint, CalibrationTable, Calibrator, DistortionComparator, Measurement,
    QosComparator,
};
pub use error::KnobError;
pub use parameter::{
    ConfigParameter, ParameterSetting, ParameterSpace, ParameterSpaceBuilder, SettingIter,
};
pub use pareto::pareto_frontier;
pub use store::ControlVariableStore;
pub use table::{KnobTable, PointIdx};
