//! The runtime store of control-variable values.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::KnobError;
use crate::parameter::ParameterSetting;

/// The runtime store holding the current value of every control variable.
///
/// In the paper the control variables live in the address space of the
/// running application; the PowerDial control system registers their
/// addresses and pokes new values into them when it changes knob settings.
/// Here the store plays the role of that shared memory: the actuator calls
/// [`ControlVariableStore::apply_setting`], and the application reads the
/// values at the top of each main-loop iteration.
///
/// # Example
///
/// ```
/// use powerdial_knobs::ControlVariableStore;
///
/// # fn main() -> Result<(), powerdial_knobs::KnobError> {
/// let mut store = ControlVariableStore::new();
/// store.register("num_simulations", 1_000_000.0);
/// store.set("num_simulations", 10_000.0)?;
/// assert_eq!(store.get("num_simulations")?, 10_000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlVariableStore {
    values: BTreeMap<String, f64>,
    generation: u64,
}

impl ControlVariableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ControlVariableStore::default()
    }

    /// Registers a control variable with its initial (baseline) value.
    /// Re-registering a variable overwrites its value.
    pub fn register(&mut self, name: impl Into<String>, initial_value: f64) {
        self.values.insert(name.into(), initial_value);
        self.generation += 1;
    }

    /// Sets the value of a registered variable.
    ///
    /// # Errors
    ///
    /// Returns [`KnobError::UnknownControlVariable`] when the variable is not
    /// registered.
    pub fn set(&mut self, name: &str, value: f64) -> Result<(), KnobError> {
        match self.values.get_mut(name) {
            Some(slot) => {
                *slot = value;
                self.generation += 1;
                Ok(())
            }
            None => Err(KnobError::UnknownControlVariable {
                name: name.to_string(),
            }),
        }
    }

    /// Reads the value of a registered variable.
    ///
    /// # Errors
    ///
    /// Returns [`KnobError::UnknownControlVariable`] when the variable is not
    /// registered.
    pub fn get(&self, name: &str) -> Result<f64, KnobError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| KnobError::UnknownControlVariable {
                name: name.to_string(),
            })
    }

    /// Applies a parameter setting: each `(parameter, value)` pair is written
    /// to the control variable registered under the parameter's name.
    /// Parameters without a registered variable are registered on the fly, so
    /// a store can be bootstrapped directly from a setting.
    pub fn apply_setting(&mut self, setting: &ParameterSetting) {
        for (name, value) in setting.iter() {
            self.values.insert(name.to_string(), value);
        }
        self.generation += 1;
    }

    /// Returns true when the named variable is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true when no variable is registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A monotone counter incremented on every mutation; applications can use
    /// it to detect that the knobs changed since the last iteration.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A snapshot of every variable and its current value.
    pub fn snapshot(&self) -> BTreeMap<String, f64> {
        self.values.clone()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Display for ControlVariableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parameter::{ConfigParameter, ParameterSpace};

    #[test]
    fn register_set_get_round_trip() {
        let mut store = ControlVariableStore::new();
        assert!(store.is_empty());
        store.register("particles", 4000.0);
        assert!(store.contains("particles"));
        assert_eq!(store.get("particles").unwrap(), 4000.0);
        store.set("particles", 100.0).unwrap();
        assert_eq!(store.get("particles").unwrap(), 100.0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn unknown_variables_error() {
        let mut store = ControlVariableStore::new();
        assert!(matches!(
            store.get("nope"),
            Err(KnobError::UnknownControlVariable { .. })
        ));
        assert!(matches!(
            store.set("nope", 1.0),
            Err(KnobError::UnknownControlVariable { .. })
        ));
    }

    #[test]
    fn apply_setting_writes_every_parameter() {
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("layers", vec![1.0, 5.0], 5.0).unwrap())
            .parameter(ConfigParameter::new("particles", vec![100.0, 4000.0], 4000.0).unwrap())
            .build()
            .unwrap();
        let mut store = ControlVariableStore::new();
        store.apply_setting(&space.default_setting());
        assert_eq!(store.get("layers").unwrap(), 5.0);
        assert_eq!(store.get("particles").unwrap(), 4000.0);
        store.apply_setting(&space.setting(0).unwrap());
        assert_eq!(store.get("layers").unwrap(), 1.0);
        assert_eq!(store.get("particles").unwrap(), 100.0);
    }

    #[test]
    fn generation_counts_mutations() {
        let mut store = ControlVariableStore::new();
        let g0 = store.generation();
        store.register("x", 1.0);
        store.set("x", 2.0).unwrap();
        assert_eq!(store.generation(), g0 + 2);
    }

    #[test]
    fn snapshot_and_display() {
        let mut store = ControlVariableStore::new();
        store.register("b", 2.0);
        store.register("a", 1.0);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(store.to_string(), "{a=1, b=2}");
    }
}
