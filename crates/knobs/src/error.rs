//! Error type for dynamic-knob construction and calibration.

use std::error::Error;
use std::fmt;

use powerdial_qos::QosError;

/// Errors produced while defining parameter spaces, calibrating knobs, or
/// building knob tables.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KnobError {
    /// A configuration parameter has an empty value range.
    EmptyValueRange {
        /// Name of the offending parameter.
        parameter: String,
    },
    /// The parameter's default value is not one of its listed values.
    DefaultNotInRange {
        /// Name of the offending parameter.
        parameter: String,
        /// The default value that was not found in the range.
        default: f64,
    },
    /// A parameter value is not finite.
    NonFiniteValue {
        /// Name of the offending parameter.
        parameter: String,
    },
    /// The parameter space has no parameters.
    EmptyParameterSpace,
    /// Two parameters share the same name.
    DuplicateParameter {
        /// The duplicated name.
        name: String,
    },
    /// A measurement referenced a setting index outside the parameter space.
    SettingOutOfRange {
        /// The offending setting index.
        setting_index: usize,
        /// Number of settings in the space.
        settings: usize,
    },
    /// A measurement reported non-positive work; speedups would be undefined.
    InvalidWork {
        /// The offending work value.
        work: f64,
    },
    /// Calibration cannot proceed because no measurement was recorded for the
    /// baseline (default) setting on some input.
    MissingBaselineMeasurement {
        /// The input index lacking a baseline measurement.
        input_index: usize,
    },
    /// No measurements were recorded at all.
    NoMeasurements,
    /// A QoS computation failed while calibrating.
    Qos(QosError),
    /// The knob table is empty after applying the QoS-loss bound.
    EmptyKnobTable,
    /// The requested control variable is not registered in the store.
    UnknownControlVariable {
        /// Name of the missing variable.
        name: String,
    },
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobError::EmptyValueRange { parameter } => {
                write!(f, "parameter `{parameter}` has an empty value range")
            }
            KnobError::DefaultNotInRange { parameter, default } => write!(
                f,
                "default value {default} of parameter `{parameter}` is not in its value range"
            ),
            KnobError::NonFiniteValue { parameter } => {
                write!(f, "parameter `{parameter}` contains a non-finite value")
            }
            KnobError::EmptyParameterSpace => write!(f, "parameter space contains no parameters"),
            KnobError::DuplicateParameter { name } => {
                write!(f, "parameter `{name}` is defined more than once")
            }
            KnobError::SettingOutOfRange {
                setting_index,
                settings,
            } => write!(
                f,
                "setting index {setting_index} is out of range for a space with {settings} settings"
            ),
            KnobError::InvalidWork { work } => {
                write!(f, "measurement work must be positive, got {work}")
            }
            KnobError::MissingBaselineMeasurement { input_index } => write!(
                f,
                "no baseline (default setting) measurement recorded for input {input_index}"
            ),
            KnobError::NoMeasurements => write!(f, "no calibration measurements recorded"),
            KnobError::Qos(e) => write!(f, "qos computation failed: {e}"),
            KnobError::EmptyKnobTable => {
                write!(
                    f,
                    "no knob settings remain after applying the qos-loss bound"
                )
            }
            KnobError::UnknownControlVariable { name } => {
                write!(f, "control variable `{name}` is not registered")
            }
        }
    }
}

impl Error for KnobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KnobError::Qos(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QosError> for KnobError {
    fn from(e: QosError) -> Self {
        KnobError::Qos(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let errors: Vec<KnobError> = vec![
            KnobError::EmptyValueRange {
                parameter: "sims".into(),
            },
            KnobError::DefaultNotInRange {
                parameter: "sims".into(),
                default: 7.0,
            },
            KnobError::NonFiniteValue {
                parameter: "sims".into(),
            },
            KnobError::EmptyParameterSpace,
            KnobError::DuplicateParameter { name: "ref".into() },
            KnobError::SettingOutOfRange {
                setting_index: 9,
                settings: 3,
            },
            KnobError::InvalidWork { work: -1.0 },
            KnobError::MissingBaselineMeasurement { input_index: 2 },
            KnobError::NoMeasurements,
            KnobError::Qos(QosError::EmptyAbstraction),
            KnobError::EmptyKnobTable,
            KnobError::UnknownControlVariable { name: "x".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn qos_errors_convert_and_chain() {
        let err: KnobError = QosError::EmptyAbstraction.into();
        assert!(matches!(err, KnobError::Qos(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<KnobError>();
    }
}
