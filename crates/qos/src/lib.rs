//! Quality-of-service metrics for accuracy-aware computing.
//!
//! PowerDial quantifies the accuracy of each dynamic-knob setting with a
//! *QoS loss* metric computed against the output of the highest-quality
//! (baseline) configuration. This crate provides:
//!
//! * [`OutputAbstraction`] — the user-provided reduction of a program output
//!   to a vector of numbers `o_1 … o_m` (Section 2.2 of the paper);
//! * [`distortion`] / [`weighted_distortion`] — the QoS-loss metric of
//!   Equation 1, the mean relative error of the abstraction components,
//!   optionally weighted;
//! * [`Psnr`] — peak signal-to-noise ratio, the image-quality component of
//!   the video encoder's abstraction;
//! * [`retrieval`] — precision, recall, P@N, and F-measure for the search
//!   benchmark;
//! * [`QosLossBound`] — the user-specified cap on acceptable QoS loss used to
//!   exclude knob settings during calibration.
//!
//! QoS loss of `0.0` is a perfect result; larger values are worse. Values are
//! reported in the same percentage units as the paper's figures when callers
//! multiply by 100.
//!
//! # Example
//!
//! ```
//! use powerdial_qos::{distortion, OutputAbstraction};
//!
//! let baseline = OutputAbstraction::from_components([10.0, 20.0, 40.0]);
//! let degraded = OutputAbstraction::from_components([11.0, 20.0, 38.0]);
//! let loss = distortion(&baseline, &degraded).unwrap();
//! assert!(loss.value() > 0.0 && loss.value() < 0.1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod abstraction;
mod bound;
mod distortion;
mod error;
mod psnr;
pub mod retrieval;

pub use abstraction::OutputAbstraction;
pub use bound::QosLossBound;
pub use distortion::{distortion, weighted_distortion, QosLoss};
pub use error::QosError;
pub use psnr::Psnr;
