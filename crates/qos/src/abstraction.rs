//! Output abstractions: numeric summaries of program outputs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::QosError;

/// A numeric abstraction of a program output.
///
/// The paper's QoS metric never compares raw outputs directly; instead the
/// user supplies an *output abstraction* that reduces an output to a vector
/// of numbers `o_1 … o_m` (for example swaption prices, or the PSNR and
/// bitrate of an encoded video). Two abstractions of the same program on the
/// same input are then compared component-wise by
/// [`distortion`](crate::distortion).
///
/// # Example
///
/// ```
/// use powerdial_qos::OutputAbstraction;
///
/// let abstraction = OutputAbstraction::builder()
///     .component("psnr", 41.7)
///     .component("bitrate", 3_950_000.0)
///     .build();
/// assert_eq!(abstraction.len(), 2);
/// assert_eq!(abstraction.label(0), Some("psnr"));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OutputAbstraction {
    components: Vec<f64>,
    labels: Vec<String>,
}

impl OutputAbstraction {
    /// Creates an abstraction from unlabeled components.
    pub fn from_components(components: impl IntoIterator<Item = f64>) -> Self {
        let components: Vec<f64> = components.into_iter().collect();
        let labels = (0..components.len()).map(|i| format!("o{i}")).collect();
        OutputAbstraction { components, labels }
    }

    /// Starts building an abstraction with labeled components.
    pub fn builder() -> OutputAbstractionBuilder {
        OutputAbstractionBuilder::default()
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns true when the abstraction has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component values.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// The label of component `index`, if it exists.
    pub fn label(&self, index: usize) -> Option<&str> {
        self.labels.get(index).map(String::as_str)
    }

    /// The value of component `index`, if it exists.
    pub fn component(&self, index: usize) -> Option<f64> {
        self.components.get(index).copied()
    }

    /// Validates that every component is finite.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::NonFiniteComponent`] naming the first offending
    /// component.
    pub fn validate(&self) -> Result<(), QosError> {
        for (index, value) in self.components.iter().enumerate() {
            if !value.is_finite() {
                return Err(QosError::NonFiniteComponent { index });
            }
        }
        Ok(())
    }

    /// Appends a component with a generated label.
    pub fn push(&mut self, value: f64) {
        self.labels.push(format!("o{}", self.components.len()));
        self.components.push(value);
    }

    /// Iterates over `(label, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.labels
            .iter()
            .map(String::as_str)
            .zip(self.components.iter().copied())
    }
}

impl FromIterator<f64> for OutputAbstraction {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        OutputAbstraction::from_components(iter)
    }
}

impl Extend<f64> for OutputAbstraction {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for value in iter {
            self.push(value);
        }
    }
}

impl fmt::Display for OutputAbstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (label, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{label}={value:.6}")?;
        }
        write!(f, "]")
    }
}

/// Builder for [`OutputAbstraction`] with named components.
#[derive(Debug, Clone, Default)]
pub struct OutputAbstractionBuilder {
    components: Vec<f64>,
    labels: Vec<String>,
}

impl OutputAbstractionBuilder {
    /// Adds a labeled component.
    pub fn component(mut self, label: impl Into<String>, value: f64) -> Self {
        self.labels.push(label.into());
        self.components.push(value);
        self
    }

    /// Finishes the abstraction.
    pub fn build(self) -> OutputAbstraction {
        OutputAbstraction {
            components: self.components,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_components_generates_labels() {
        let a = OutputAbstraction::from_components([1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.label(0), Some("o0"));
        assert_eq!(a.label(2), Some("o2"));
        assert_eq!(a.component(1), Some(2.0));
        assert_eq!(a.component(9), None);
    }

    #[test]
    fn builder_preserves_labels() {
        let a = OutputAbstraction::builder()
            .component("psnr", 40.0)
            .component("bitrate", 1000.0)
            .build();
        assert_eq!(a.label(0), Some("psnr"));
        assert_eq!(a.label(1), Some("bitrate"));
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![("psnr", 40.0), ("bitrate", 1000.0)]);
    }

    #[test]
    fn validate_rejects_non_finite_components() {
        let good = OutputAbstraction::from_components([1.0, 2.0]);
        assert!(good.validate().is_ok());
        let bad = OutputAbstraction::from_components([1.0, f64::INFINITY]);
        assert_eq!(
            bad.validate(),
            Err(QosError::NonFiniteComponent { index: 1 })
        );
    }

    #[test]
    fn collect_and_extend() {
        let mut a: OutputAbstraction = [1.0, 2.0].into_iter().collect();
        a.extend([3.0]);
        assert_eq!(a.components(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.label(2), Some("o2"));
    }

    #[test]
    fn display_shows_labels_and_values() {
        let a = OutputAbstraction::builder().component("price", 2.5).build();
        assert_eq!(a.to_string(), "[price=2.500000]");
    }

    #[test]
    fn empty_abstraction_reports_empty() {
        let a = OutputAbstraction::default();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
