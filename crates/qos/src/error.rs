//! Error type for QoS computations.

use std::error::Error;
use std::fmt;

/// Errors produced when computing quality-of-service metrics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// The baseline and candidate output abstractions have different lengths
    /// and cannot be compared component-wise.
    MismatchedAbstractions {
        /// Number of components in the baseline abstraction.
        baseline_len: usize,
        /// Number of components in the candidate abstraction.
        candidate_len: usize,
    },
    /// The abstractions are empty, so no distortion can be computed.
    EmptyAbstraction,
    /// The weight vector has a different length than the abstractions.
    MismatchedWeights {
        /// Number of abstraction components.
        components: usize,
        /// Number of weights provided.
        weights: usize,
    },
    /// A weight is negative or not finite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A QoS loss bound is negative or not finite.
    InvalidBound {
        /// The offending value.
        value: f64,
    },
    /// An abstraction component is not finite.
    NonFiniteComponent {
        /// Index of the offending component.
        index: usize,
    },
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::MismatchedAbstractions {
                baseline_len,
                candidate_len,
            } => write!(
                f,
                "output abstractions have mismatched lengths: baseline has {baseline_len} components, candidate has {candidate_len}"
            ),
            QosError::EmptyAbstraction => write!(f, "output abstraction has no components"),
            QosError::MismatchedWeights { components, weights } => write!(
                f,
                "weight vector length {weights} does not match {components} abstraction components"
            ),
            QosError::InvalidWeight { index, value } => {
                write!(f, "weight {index} is invalid: {value}")
            }
            QosError::InvalidBound { value } => write!(f, "qos loss bound is invalid: {value}"),
            QosError::NonFiniteComponent { index } => {
                write!(f, "abstraction component {index} is not finite")
            }
        }
    }
}

impl Error for QosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_without_trailing_punctuation() {
        let errors = [
            QosError::MismatchedAbstractions {
                baseline_len: 3,
                candidate_len: 2,
            },
            QosError::EmptyAbstraction,
            QosError::MismatchedWeights {
                components: 4,
                weights: 1,
            },
            QosError::InvalidWeight {
                index: 2,
                value: -1.0,
            },
            QosError::InvalidBound { value: f64::NAN },
            QosError::NonFiniteComponent { index: 0 },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<QosError>();
    }
}
