//! Information-retrieval metrics: precision, recall, P@N, and F-measure.
//!
//! The swish++ search benchmark measures QoS with the F-measure — the
//! harmonic mean of precision and recall — evaluated at different cutoffs
//! (`P@N` notation in the paper). Relevance is defined by the result set the
//! baseline (highest-QoS) configuration returns.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// Precision, recall, and F-measure of one retrieved result list against a
/// relevant set.
///
/// # Example
///
/// ```
/// use powerdial_qos::retrieval::RetrievalScore;
///
/// // The engine returned documents 1, 2, 3; documents 1..=4 are relevant.
/// let score = RetrievalScore::evaluate(&[1, 2, 3], &[1, 2, 3, 4]);
/// assert!((score.precision() - 1.0).abs() < 1e-12);
/// assert!((score.recall() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalScore {
    retrieved: usize,
    relevant: usize,
    relevant_retrieved: usize,
}

impl RetrievalScore {
    /// Evaluates a list of retrieved item identifiers against the set of
    /// relevant identifiers. Duplicate identifiers are counted once.
    pub fn evaluate<T: Eq + Hash>(retrieved: &[T], relevant: &[T]) -> Self {
        let retrieved_set: HashSet<&T> = retrieved.iter().collect();
        let relevant_set: HashSet<&T> = relevant.iter().collect();
        let relevant_retrieved = retrieved_set.intersection(&relevant_set).count();
        RetrievalScore {
            retrieved: retrieved_set.len(),
            relevant: relevant_set.len(),
            relevant_retrieved,
        }
    }

    /// Evaluates only the top `n` retrieved results (the paper's `P@N`).
    pub fn evaluate_at<T: Eq + Hash>(retrieved: &[T], relevant: &[T], n: usize) -> Self {
        let cutoff = retrieved.len().min(n);
        // Relevance is also truncated to the top-n of the baseline ranking,
        // matching the paper's P@N evaluation of baseline-vs-truncated lists.
        let relevant_cutoff = relevant.len().min(n);
        RetrievalScore::evaluate(&retrieved[..cutoff], &relevant[..relevant_cutoff])
    }

    /// Number of distinct items retrieved.
    pub fn retrieved_count(&self) -> usize {
        self.retrieved
    }

    /// Number of distinct relevant items.
    pub fn relevant_count(&self) -> usize {
        self.relevant
    }

    /// Number of retrieved items that are relevant.
    pub fn relevant_retrieved_count(&self) -> usize {
        self.relevant_retrieved
    }

    /// Precision: relevant retrieved / retrieved. Defined as 1.0 when nothing
    /// was retrieved and nothing was relevant, 0.0 when nothing was retrieved
    /// but something was relevant.
    pub fn precision(&self) -> f64 {
        if self.retrieved == 0 {
            if self.relevant == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.relevant_retrieved as f64 / self.retrieved as f64
        }
    }

    /// Recall: relevant retrieved / relevant. Defined as 1.0 when nothing was
    /// relevant.
    pub fn recall(&self) -> f64 {
        if self.relevant == 0 {
            1.0
        } else {
            self.relevant_retrieved as f64 / self.relevant as f64
        }
    }

    /// F-measure: the harmonic mean of precision and recall (F1).
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// QoS loss implied by this score: `1 − F`, so a perfect retrieval has
    /// zero loss.
    pub fn qos_loss(&self) -> f64 {
        1.0 - self.f_measure()
    }
}

impl fmt::Display for RetrievalScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision {:.3}, recall {:.3}, F {:.3}",
            self.precision(),
            self.recall(),
            self.f_measure()
        )
    }
}

/// Mean of a collection of retrieval scores (macro-averaged precision,
/// recall, and F-measure).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanRetrievalScore {
    /// Macro-averaged precision.
    pub precision: f64,
    /// Macro-averaged recall.
    pub recall: f64,
    /// Macro-averaged F-measure.
    pub f_measure: f64,
    /// Number of queries averaged.
    pub queries: usize,
}

impl MeanRetrievalScore {
    /// Averages per-query scores. Returns `None` for an empty collection.
    pub fn from_scores(scores: impl IntoIterator<Item = RetrievalScore>) -> Option<Self> {
        let mut precision = 0.0;
        let mut recall = 0.0;
        let mut f_measure = 0.0;
        let mut queries = 0usize;
        for score in scores {
            precision += score.precision();
            recall += score.recall();
            f_measure += score.f_measure();
            queries += 1;
        }
        if queries == 0 {
            return None;
        }
        let n = queries as f64;
        Some(MeanRetrievalScore {
            precision: precision / n,
            recall: recall / n,
            f_measure: f_measure / n,
            queries,
        })
    }

    /// QoS loss implied by the mean F-measure (`1 − F`).
    pub fn qos_loss(&self) -> f64 {
        1.0 - self.f_measure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_retrieval_has_unit_scores() {
        let score = RetrievalScore::evaluate(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);
        assert_eq!(score.f_measure(), 1.0);
        assert_eq!(score.qos_loss(), 0.0);
    }

    #[test]
    fn truncated_results_keep_precision_lose_recall() {
        // Returning the top 5 of 10 relevant documents: precision 1, recall 0.5.
        let relevant: Vec<u32> = (0..10).collect();
        let retrieved: Vec<u32> = (0..5).collect();
        let score = RetrievalScore::evaluate(&retrieved, &relevant);
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 0.5);
        assert!((score.f_measure() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn p_at_n_truncates_both_lists() {
        let relevant: Vec<u32> = (0..100).collect();
        let retrieved: Vec<u32> = (0..5).collect();
        // At P@5 the truncated list is perfect.
        let at5 = RetrievalScore::evaluate_at(&retrieved, &relevant, 5);
        assert_eq!(at5.f_measure(), 1.0);
        // At P@10 recall suffers.
        let at10 = RetrievalScore::evaluate_at(&retrieved, &relevant, 10);
        assert_eq!(at10.precision(), 1.0);
        assert_eq!(at10.recall(), 0.5);
    }

    #[test]
    fn irrelevant_results_hurt_precision() {
        let score = RetrievalScore::evaluate(&[1, 2, 99, 100], &[1, 2, 3, 4]);
        assert_eq!(score.precision(), 0.5);
        assert_eq!(score.recall(), 0.5);
    }

    #[test]
    fn empty_cases_are_well_defined() {
        let nothing_retrieved = RetrievalScore::evaluate::<u32>(&[], &[1, 2]);
        assert_eq!(nothing_retrieved.precision(), 0.0);
        assert_eq!(nothing_retrieved.recall(), 0.0);
        assert_eq!(nothing_retrieved.f_measure(), 0.0);

        let nothing_relevant = RetrievalScore::evaluate::<u32>(&[], &[]);
        assert_eq!(nothing_relevant.precision(), 1.0);
        assert_eq!(nothing_relevant.recall(), 1.0);
    }

    #[test]
    fn duplicates_are_counted_once() {
        let score = RetrievalScore::evaluate(&[1, 1, 2], &[1, 2]);
        assert_eq!(score.retrieved_count(), 2);
        assert_eq!(score.f_measure(), 1.0);
    }

    #[test]
    fn mean_score_averages_queries() {
        let a = RetrievalScore::evaluate(&[1, 2], &[1, 2]);
        let b = RetrievalScore::evaluate(&[1], &[1, 2]);
        let mean = MeanRetrievalScore::from_scores([a, b]).unwrap();
        assert!((mean.precision - 1.0).abs() < 1e-12);
        assert!((mean.recall - 0.75).abs() < 1e-12);
        assert_eq!(mean.queries, 2);
        assert!(mean.qos_loss() > 0.0);
        assert!(MeanRetrievalScore::from_scores(std::iter::empty()).is_none());
    }

    #[test]
    fn display_mentions_all_three_metrics() {
        let text = RetrievalScore::evaluate(&[1], &[1, 2]).to_string();
        assert!(text.contains("precision"));
        assert!(text.contains("recall"));
        assert!(text.contains('F'));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Precision, recall, and F-measure are always in [0, 1], and the
        /// F-measure never exceeds either component.
        #[test]
        fn metrics_are_bounded(
            retrieved in proptest::collection::vec(0u32..50, 0..40),
            relevant in proptest::collection::vec(0u32..50, 0..40),
        ) {
            let score = RetrievalScore::evaluate(&retrieved, &relevant);
            let p = score.precision();
            let r = score.recall();
            let f = score.f_measure();
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&f));
            // The harmonic mean lies between the two components.
            prop_assert!(f >= p.min(r) - 1e-12);
            prop_assert!(f <= p.max(r) + 1e-12);
            prop_assert!((score.qos_loss() - (1.0 - f)).abs() < 1e-12);
        }

        /// Truncating the retrieved list never increases recall.
        #[test]
        fn truncation_never_increases_recall(
            relevant in proptest::collection::vec(0u32..100, 1..50),
            keep in 0usize..50,
        ) {
            let full: Vec<u32> = relevant.clone();
            let truncated: Vec<u32> = relevant.iter().copied().take(keep).collect();
            let full_score = RetrievalScore::evaluate(&full, &relevant);
            let truncated_score = RetrievalScore::evaluate(&truncated, &relevant);
            prop_assert!(truncated_score.recall() <= full_score.recall() + 1e-12);
        }
    }
}
