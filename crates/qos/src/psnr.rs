//! Peak signal-to-noise ratio, the image-quality component of the video
//! encoder's output abstraction.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Peak signal-to-noise ratio in decibels.
///
/// PSNR compares a reconstructed (decoded) image against the original:
/// `PSNR = 10·log10(MAX² / MSE)`. Higher is better; typical lossy video
/// encodings land in the 30–50 dB range.
///
/// # Example
///
/// ```
/// use powerdial_qos::Psnr;
///
/// let original = [10.0, 20.0, 30.0, 40.0];
/// let reconstructed = [11.0, 19.0, 30.0, 41.0];
/// let psnr = Psnr::between(&original, &reconstructed, 255.0).unwrap();
/// assert!(psnr.decibels() > 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Psnr(f64);

impl Psnr {
    /// PSNR used to represent a perfect (lossless) reconstruction when the
    /// mean squared error is zero. 100 dB is far above any lossy encoder and
    /// keeps the value finite so it can participate in distortion metrics.
    pub const LOSSLESS_DB: f64 = 100.0;

    /// Creates a PSNR from a decibel value.
    ///
    /// # Panics
    ///
    /// Panics if `decibels` is not finite.
    pub fn from_db(decibels: f64) -> Self {
        assert!(decibels.is_finite(), "psnr must be finite, got {decibels}");
        Psnr(decibels)
    }

    /// Computes the PSNR between an original and a reconstructed signal, both
    /// given as per-sample values, with `peak` the maximum representable
    /// sample value (255 for 8-bit images).
    ///
    /// Returns `None` if the signals are empty or have different lengths.
    pub fn between(original: &[f64], reconstructed: &[f64], peak: f64) -> Option<Self> {
        if original.is_empty() || original.len() != reconstructed.len() {
            return None;
        }
        let mse = original
            .iter()
            .zip(reconstructed)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / original.len() as f64;
        Some(Psnr::from_mse(mse, peak))
    }

    /// Computes the PSNR from a mean squared error and a peak sample value.
    pub fn from_mse(mse: f64, peak: f64) -> Self {
        if mse <= 0.0 {
            Psnr(Self::LOSSLESS_DB)
        } else {
            Psnr((10.0 * (peak * peak / mse).log10()).min(Self::LOSSLESS_DB))
        }
    }

    /// The PSNR in decibels.
    pub const fn decibels(self) -> f64 {
        self.0
    }

    /// Returns true when this PSNR represents a lossless reconstruction.
    pub fn is_lossless(self) -> bool {
        self.0 >= Self::LOSSLESS_DB
    }
}

impl fmt::Display for Psnr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_are_lossless() {
        let signal = [1.0, 2.0, 3.0];
        let psnr = Psnr::between(&signal, &signal, 255.0).unwrap();
        assert!(psnr.is_lossless());
        assert_eq!(psnr.decibels(), Psnr::LOSSLESS_DB);
    }

    #[test]
    fn known_mse_gives_expected_psnr() {
        // MSE of 1.0 with 8-bit peak: 10*log10(255^2) ≈ 48.13 dB.
        let psnr = Psnr::from_mse(1.0, 255.0);
        assert!((psnr.decibels() - 48.1308).abs() < 1e-3);
    }

    #[test]
    fn larger_error_means_lower_psnr() {
        let original = [0.0, 0.0, 0.0, 0.0];
        let small_error = [1.0, 0.0, 0.0, 0.0];
        let large_error = [10.0, 10.0, 10.0, 10.0];
        let small = Psnr::between(&original, &small_error, 255.0).unwrap();
        let large = Psnr::between(&original, &large_error, 255.0).unwrap();
        assert!(small > large);
    }

    #[test]
    fn mismatched_or_empty_signals_return_none() {
        assert!(Psnr::between(&[1.0], &[1.0, 2.0], 255.0).is_none());
        assert!(Psnr::between(&[], &[], 255.0).is_none());
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(Psnr::from_db(42.5).to_string(), "42.50 dB");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_db_rejects_nan() {
        Psnr::from_db(f64::NAN);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// PSNR is monotone non-increasing in the magnitude of uniform noise.
        #[test]
        fn psnr_decreases_with_noise(
            signal in proptest::collection::vec(0.0f64..255.0, 4..64),
            noise_small in 0.01f64..1.0,
            noise_extra in 0.5f64..10.0,
        ) {
            let noisy_small: Vec<f64> = signal.iter().map(|v| v + noise_small).collect();
            let noisy_large: Vec<f64> = signal.iter().map(|v| v + noise_small + noise_extra).collect();
            let small = Psnr::between(&signal, &noisy_small, 255.0).unwrap();
            let large = Psnr::between(&signal, &noisy_large, 255.0).unwrap();
            prop_assert!(small >= large);
        }
    }
}
