//! QoS-loss bounds used to exclude knob settings during calibration.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::distortion::QosLoss;
use crate::error::QosError;

/// A user-specified cap on acceptable QoS loss.
///
/// PowerDial's calibrator excludes any dynamic-knob setting whose mean QoS
/// loss exceeds the bound (Section 2.2). The consolidation experiments use a
/// 5 % bound for the PARSEC benchmarks and a 30 % bound for the search
/// engine.
///
/// # Example
///
/// ```
/// use powerdial_qos::{QosLoss, QosLossBound};
///
/// let bound = QosLossBound::from_percent(5.0).unwrap();
/// assert!(bound.admits(QosLoss::new(0.03)));
/// assert!(!bound.admits(QosLoss::new(0.08)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct QosLossBound(f64);

impl QosLossBound {
    /// A bound admitting any QoS loss.
    pub const UNBOUNDED: QosLossBound = QosLossBound(f64::MAX);

    /// Creates a bound from a fractional loss value (0.05 = 5 %).
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidBound`] if `fraction` is negative or not
    /// finite.
    pub fn new(fraction: f64) -> Result<Self, QosError> {
        if !fraction.is_finite() || fraction < 0.0 {
            return Err(QosError::InvalidBound { value: fraction });
        }
        Ok(QosLossBound(fraction))
    }

    /// Creates a bound from a percentage (5.0 = 5 %).
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidBound`] if `percent` is negative or not
    /// finite.
    pub fn from_percent(percent: f64) -> Result<Self, QosError> {
        QosLossBound::new(percent / 100.0)
    }

    /// The bound as a fraction.
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// The bound as a percentage.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns true if `loss` is within (at or below) the bound.
    pub fn admits(self, loss: QosLoss) -> bool {
        loss.value() <= self.0
    }
}

impl Default for QosLossBound {
    fn default() -> Self {
        QosLossBound::UNBOUNDED
    }
}

impl fmt::Display for QosLossBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == QosLossBound::UNBOUNDED {
            write!(f, "unbounded")
        } else {
            write!(f, "{:.2}%", self.percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_admits_losses_at_or_below_it() {
        let bound = QosLossBound::new(0.05).unwrap();
        assert!(bound.admits(QosLoss::ZERO));
        assert!(bound.admits(QosLoss::new(0.05)));
        assert!(!bound.admits(QosLoss::new(0.0500001)));
    }

    #[test]
    fn percent_round_trip() {
        let bound = QosLossBound::from_percent(30.0).unwrap();
        assert!((bound.fraction() - 0.3).abs() < 1e-12);
        assert!((bound.percent() - 30.0).abs() < 1e-9);
        assert_eq!(bound.to_string(), "30.00%");
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        assert!(QosLossBound::new(-0.1).is_err());
        assert!(QosLossBound::new(f64::NAN).is_err());
        assert!(QosLossBound::from_percent(f64::INFINITY).is_err());
    }

    #[test]
    fn default_is_unbounded() {
        let bound = QosLossBound::default();
        assert!(bound.admits(QosLoss::new(1e9)));
        assert_eq!(bound.to_string(), "unbounded");
    }
}
