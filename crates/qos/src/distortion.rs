//! The distortion QoS-loss metric (Equation 1 of the paper).

use std::fmt;
use std::ops::Add;

use serde::{Deserialize, Serialize};

use crate::abstraction::OutputAbstraction;
use crate::error::QosError;

/// A quality-of-service loss value.
///
/// Zero is a perfect result; larger values indicate worse quality. The value
/// is a fraction (multiply by 100 to obtain the percentage figures reported
/// in the paper).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct QosLoss(f64);

impl QosLoss {
    /// A QoS loss of zero: the output matches the baseline exactly.
    pub const ZERO: QosLoss = QosLoss(0.0);

    /// Creates a QoS loss from a fractional value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "qos loss must be finite and non-negative, got {value}"
        );
        QosLoss(value)
    }

    /// The fractional loss value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The loss as a percentage (the unit used in the paper's figures).
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the mean of a collection of losses, or `None` for an empty
    /// collection.
    pub fn mean(losses: impl IntoIterator<Item = QosLoss>) -> Option<QosLoss> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for loss in losses {
            sum += loss.0;
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(QosLoss(sum / count as f64))
        }
    }
}

impl Add for QosLoss {
    type Output = QosLoss;

    fn add(self, rhs: QosLoss) -> QosLoss {
        QosLoss(self.0 + rhs.0)
    }
}

impl fmt::Display for QosLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}%", self.percent())
    }
}

/// Computes the unweighted distortion between a baseline output abstraction
/// and a candidate abstraction:
///
/// `qos = (1/m) * Σ |o_i − ô_i| / |o_i|`
///
/// Components whose baseline value is zero contribute the absolute difference
/// instead of the relative difference (the standard convention to avoid
/// division by zero).
///
/// # Errors
///
/// Returns an error when the abstractions are empty, have different lengths,
/// or contain non-finite components.
///
/// # Example
///
/// ```
/// use powerdial_qos::{distortion, OutputAbstraction};
///
/// let baseline = OutputAbstraction::from_components([2.0, 4.0]);
/// let candidate = OutputAbstraction::from_components([2.0, 3.0]);
/// // |4 - 3| / 4 = 0.25, averaged over 2 components = 0.125.
/// assert!((distortion(&baseline, &candidate).unwrap().value() - 0.125).abs() < 1e-12);
/// ```
pub fn distortion(
    baseline: &OutputAbstraction,
    candidate: &OutputAbstraction,
) -> Result<QosLoss, QosError> {
    let weights = vec![1.0; baseline.len()];
    weighted_distortion(baseline, candidate, &weights)
}

/// Computes the weighted distortion of Equation 1.
///
/// Each component's relative error is multiplied by the corresponding weight
/// before averaging. Weights express the relative importance of abstraction
/// components (for example, bodytrack weights each body-part vector by its
/// magnitude).
///
/// # Errors
///
/// Returns an error when the abstractions are empty or mismatched, when the
/// weight vector has the wrong length, or when a weight is negative or not
/// finite.
pub fn weighted_distortion(
    baseline: &OutputAbstraction,
    candidate: &OutputAbstraction,
    weights: &[f64],
) -> Result<QosLoss, QosError> {
    if baseline.is_empty() || candidate.is_empty() {
        return Err(QosError::EmptyAbstraction);
    }
    if baseline.len() != candidate.len() {
        return Err(QosError::MismatchedAbstractions {
            baseline_len: baseline.len(),
            candidate_len: candidate.len(),
        });
    }
    if weights.len() != baseline.len() {
        return Err(QosError::MismatchedWeights {
            components: baseline.len(),
            weights: weights.len(),
        });
    }
    baseline.validate()?;
    candidate.validate()?;
    for (index, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(QosError::InvalidWeight { index, value: w });
        }
    }

    let m = baseline.len() as f64;
    let mut total = 0.0;
    for ((&o, &o_hat), &w) in baseline
        .components()
        .iter()
        .zip(candidate.components())
        .zip(weights)
    {
        let error = if o == 0.0 {
            (o - o_hat).abs()
        } else {
            ((o - o_hat) / o).abs()
        };
        total += w * error;
    }
    Ok(QosLoss::new(total / m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abstraction(values: &[f64]) -> OutputAbstraction {
        OutputAbstraction::from_components(values.iter().copied())
    }

    #[test]
    fn identical_outputs_have_zero_loss() {
        let a = abstraction(&[1.0, -2.0, 3.5]);
        assert_eq!(distortion(&a, &a).unwrap(), QosLoss::ZERO);
    }

    #[test]
    fn distortion_matches_hand_computation() {
        let baseline = abstraction(&[10.0, 20.0]);
        let candidate = abstraction(&[9.0, 22.0]);
        // (|10-9|/10 + |20-22|/20) / 2 = (0.1 + 0.1) / 2 = 0.1
        let loss = distortion(&baseline, &candidate).unwrap();
        assert!((loss.value() - 0.1).abs() < 1e-12);
        assert!((loss.percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_component_uses_absolute_error() {
        let baseline = abstraction(&[0.0]);
        let candidate = abstraction(&[0.25]);
        let loss = distortion(&baseline, &candidate).unwrap();
        assert!((loss.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_component_contributions() {
        let baseline = abstraction(&[10.0, 10.0]);
        let candidate = abstraction(&[5.0, 5.0]);
        let loss = weighted_distortion(&baseline, &candidate, &[1.0, 0.0]).unwrap();
        // Only the first component contributes: 0.5 / 2 = 0.25.
        assert!((loss.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_error() {
        let baseline = abstraction(&[1.0, 2.0]);
        let candidate = abstraction(&[1.0]);
        assert!(matches!(
            distortion(&baseline, &candidate),
            Err(QosError::MismatchedAbstractions { .. })
        ));
    }

    #[test]
    fn empty_abstractions_error() {
        let empty = OutputAbstraction::default();
        let nonempty = abstraction(&[1.0]);
        assert_eq!(
            distortion(&empty, &nonempty),
            Err(QosError::EmptyAbstraction)
        );
    }

    #[test]
    fn wrong_weight_length_errors() {
        let a = abstraction(&[1.0, 2.0]);
        assert!(matches!(
            weighted_distortion(&a, &a, &[1.0]),
            Err(QosError::MismatchedWeights { .. })
        ));
    }

    #[test]
    fn negative_weight_errors() {
        let a = abstraction(&[1.0]);
        assert!(matches!(
            weighted_distortion(&a, &a, &[-0.5]),
            Err(QosError::InvalidWeight { index: 0, .. })
        ));
    }

    #[test]
    fn non_finite_component_errors() {
        let baseline = abstraction(&[1.0]);
        let candidate = abstraction(&[f64::NAN]);
        assert!(matches!(
            distortion(&baseline, &candidate),
            Err(QosError::NonFiniteComponent { .. })
        ));
    }

    #[test]
    fn qos_loss_mean_and_addition() {
        let mean = QosLoss::mean([QosLoss::new(0.1), QosLoss::new(0.3)]).unwrap();
        assert!((mean.value() - 0.2).abs() < 1e-12);
        assert!(QosLoss::mean(std::iter::empty()).is_none());
        let sum = QosLoss::new(0.1) + QosLoss::new(0.2);
        assert!((sum.value() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn qos_loss_rejects_negative_values() {
        QosLoss::new(-0.1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn finite_component() -> impl Strategy<Value = f64> {
        prop_oneof![
            (-1e6f64..1e6).prop_filter("nonzero-ish", |v| v.abs() > 1e-6),
            Just(0.0)
        ]
    }

    proptest! {
        /// Distortion is zero exactly when the candidate equals the baseline.
        #[test]
        fn self_distortion_is_zero(values in proptest::collection::vec(finite_component(), 1..20)) {
            let a = OutputAbstraction::from_components(values);
            prop_assert_eq!(distortion(&a, &a).unwrap(), QosLoss::ZERO);
        }

        /// Distortion is symmetric in sign of the perturbation and always
        /// non-negative.
        #[test]
        fn distortion_nonnegative_and_sign_symmetric(
            values in proptest::collection::vec(1e-3f64..1e3, 1..20),
            deltas in proptest::collection::vec(-10f64..10.0, 1..20),
        ) {
            let n = values.len().min(deltas.len());
            let baseline = OutputAbstraction::from_components(values[..n].iter().copied());
            let plus = OutputAbstraction::from_components(
                values[..n].iter().zip(&deltas[..n]).map(|(v, d)| v + d),
            );
            let minus = OutputAbstraction::from_components(
                values[..n].iter().zip(&deltas[..n]).map(|(v, d)| v - d),
            );
            let loss_plus = distortion(&baseline, &plus).unwrap().value();
            let loss_minus = distortion(&baseline, &minus).unwrap().value();
            prop_assert!(loss_plus >= 0.0);
            prop_assert!((loss_plus - loss_minus).abs() < 1e-9 * loss_plus.max(1.0));
        }

        /// Scaling every weight by the same positive constant scales the
        /// distortion by that constant.
        #[test]
        fn weights_are_linear(
            values in proptest::collection::vec(1e-2f64..1e2, 2..10),
            scale in 0.1f64..10.0,
        ) {
            let baseline = OutputAbstraction::from_components(values.iter().copied());
            let candidate = OutputAbstraction::from_components(values.iter().map(|v| v * 1.1));
            let unit_weights = vec![1.0; values.len()];
            let scaled_weights: Vec<f64> = unit_weights.iter().map(|w| w * scale).collect();
            let base = weighted_distortion(&baseline, &candidate, &unit_weights).unwrap().value();
            let scaled = weighted_distortion(&baseline, &candidate, &scaled_weights).unwrap().value();
            prop_assert!((scaled - base * scale).abs() < 1e-9 * scaled.max(1.0));
        }
    }
}
