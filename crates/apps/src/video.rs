//! A block-based motion-compensated video encoder (the PARSEC `x264`
//! benchmark).
//!
//! The encoder reproduces the computational structure that gives x264 its
//! performance-versus-quality knobs: motion estimation searches previous
//! reconstructed frames for the best-matching block (`merange` bounds the
//! search window, `ref` the number of reference frames searched), optional
//! sub-pixel refinement improves the match (`subme` levels), and the residual
//! is quantized and entropy-coded. Larger knob values find better predictions
//! — fewer residual bits at similar quality — at the cost of more search
//! work, exactly the trade-off the paper exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use powerdial_knobs::{
    ConfigParameter, DistortionComparator, ParameterSetting, ParameterSpace, QosComparator,
};
use powerdial_qos::{OutputAbstraction, Psnr};

use crate::traits::{InputSet, KnobbedApplication, WorkUnitResult};

/// Name of the sub-pixel motion-estimation knob.
pub const SUBME_KNOB: &str = "subme";
/// Name of the motion-search-range knob.
pub const MERANGE_KNOB: &str = "merange";
/// Name of the reference-frame-count knob.
pub const REF_KNOB: &str = "ref";

/// Sizing and knob-range configuration of the encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Frame width in pixels.
    pub frame_width: usize,
    /// Frame height in pixels.
    pub frame_height: usize,
    /// Macroblock edge length in pixels.
    pub block_size: usize,
    /// Frames per input video.
    pub frames_per_video: usize,
    /// Quantizer step for residual coding.
    pub quantizer_step: f64,
    /// Values explored for the `subme` knob.
    pub subme_values: Vec<f64>,
    /// Values explored for the `merange` knob.
    pub merange_values: Vec<f64>,
    /// Values explored for the `ref` knob.
    pub ref_values: Vec<f64>,
    /// Number of training videos.
    pub training_videos: usize,
    /// Number of production videos.
    pub production_videos: usize,
}

impl VideoConfig {
    /// A configuration mirroring the paper's knob ranges (subme 1–7,
    /// merange 1–16, ref 1–5) on synthetic video scaled to run everywhere.
    pub fn parsec_like() -> Self {
        VideoConfig {
            frame_width: 64,
            frame_height: 64,
            block_size: 8,
            frames_per_video: 8,
            quantizer_step: 8.0,
            subme_values: vec![1.0, 3.0, 5.0, 7.0],
            merange_values: vec![1.0, 4.0, 8.0, 16.0],
            ref_values: vec![1.0, 3.0, 5.0],
            training_videos: 4,
            production_videos: 12,
        }
    }

    /// A tiny configuration for unit tests and debug builds.
    pub fn tiny() -> Self {
        VideoConfig {
            frame_width: 32,
            frame_height: 32,
            block_size: 8,
            frames_per_video: 4,
            quantizer_step: 8.0,
            subme_values: vec![1.0, 4.0, 7.0],
            merange_values: vec![1.0, 4.0, 8.0],
            ref_values: vec![1.0, 2.0, 3.0],
            training_videos: 2,
            production_videos: 3,
        }
    }
}

/// A frame of luma samples.
#[derive(Debug, Clone, PartialEq)]
struct Frame {
    width: usize,
    height: usize,
    samples: Vec<f64>,
}

impl Frame {
    fn new(width: usize, height: usize, value: f64) -> Self {
        Frame {
            width,
            height,
            samples: vec![value; width * height],
        }
    }

    fn at(&self, x: isize, y: isize) -> f64 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.samples[y * self.width + x]
    }

    fn set(&mut self, x: usize, y: usize, value: f64) {
        self.samples[y * self.width + x] = value;
    }

    /// Samples the frame at a fractional position with bilinear
    /// interpolation (used for sub-pixel motion estimation).
    fn sample(&self, x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let x0 = x0 as isize;
        let y0 = y0 as isize;
        let a = self.at(x0, y0);
        let b = self.at(x0 + 1, y0);
        let c = self.at(x0, y0 + 1);
        let d = self.at(x0 + 1, y0 + 1);
        a * (1.0 - fx) * (1.0 - fy) + b * fx * (1.0 - fy) + c * (1.0 - fx) * fy + d * fx * fy
    }
}

/// Statistics of one encoded video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodeStats {
    /// Peak signal-to-noise ratio of the reconstruction, in decibels.
    pub psnr_db: f64,
    /// Total size of the encoded stream, in (estimated) bits.
    pub bits: f64,
    /// Abstract work units the encode consumed (pixel operations).
    pub work: f64,
}

/// The video-encoding application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoEncoderApp {
    seed: u64,
    config: VideoConfig,
}

impl VideoEncoderApp {
    /// Creates an encoder with the paper-like configuration.
    pub fn parsec_scale(seed: u64) -> Self {
        VideoEncoderApp::with_config(seed, VideoConfig::parsec_like())
    }

    /// Creates an encoder with the tiny test configuration.
    pub fn test_scale(seed: u64) -> Self {
        VideoEncoderApp::with_config(seed, VideoConfig::tiny())
    }

    /// Creates an encoder with a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (zero-sized frames or
    /// blocks, no frames, empty knob ranges, or zero inputs).
    pub fn with_config(seed: u64, config: VideoConfig) -> Self {
        assert!(
            config.frame_width >= config.block_size && config.frame_height >= config.block_size
        );
        assert!(config.block_size > 0 && config.frames_per_video > 1);
        assert!(
            !config.subme_values.is_empty()
                && !config.merange_values.is_empty()
                && !config.ref_values.is_empty()
        );
        assert!(config.training_videos > 0 && config.production_videos > 0);
        VideoEncoderApp { seed, config }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// Generates the synthetic source video for one input.
    fn generate_video(&self, set: InputSet, index: usize) -> Vec<Frame> {
        let set_tag = match set {
            InputSet::Training => 1u64,
            InputSet::Production => 2u64,
        };
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x517C_C1B7_2722_0A95)
                .wrapping_add(set_tag << 40)
                .wrapping_add(index as u64),
        );
        let width = self.config.frame_width;
        let height = self.config.frame_height;

        // Moving rectangular objects over a static gradient background.
        let object_count = rng.gen_range(2..5);
        let objects: Vec<(f64, f64, f64, f64, usize, f64)> = (0..object_count)
            .map(|_| {
                (
                    rng.gen_range(0.0..width as f64),  // x
                    rng.gen_range(0.0..height as f64), // y
                    rng.gen_range(-2.0..2.0),          // vx
                    rng.gen_range(-2.0..2.0),          // vy
                    rng.gen_range(4..10),              // size
                    rng.gen_range(40.0..215.0),        // intensity
                )
            })
            .collect();
        let noise_amplitude = rng.gen_range(1.0..4.0);

        (0..self.config.frames_per_video)
            .map(|t| {
                let mut frame = Frame::new(width, height, 0.0);
                for y in 0..height {
                    for x in 0..width {
                        let background = 64.0
                            + 96.0 * (x as f64 / width as f64)
                            + 32.0 * (y as f64 / height as f64);
                        let mut value = background;
                        for &(ox, oy, vx, vy, size, intensity) in &objects {
                            let cx = ox + vx * t as f64;
                            let cy = oy + vy * t as f64;
                            if (x as f64 - cx).abs() < size as f64
                                && (y as f64 - cy).abs() < size as f64
                            {
                                value = intensity;
                            }
                        }
                        value += rng.gen_range(-noise_amplitude..noise_amplitude);
                        frame.set(x, y, value.clamp(0.0, 255.0));
                    }
                }
                frame
            })
            .collect()
    }

    /// Encodes one video with the given knob values, returning quality,
    /// bitrate, and work statistics.
    pub fn encode(
        &self,
        set: InputSet,
        index: usize,
        subme: u32,
        merange: u32,
        refs: u32,
    ) -> EncodeStats {
        let source = self.generate_video(set, index);
        let block = self.config.block_size;
        let q = self.config.quantizer_step;

        let mut reconstructed: Vec<Frame> = Vec::with_capacity(source.len());
        let mut total_bits = 0.0;
        let mut work = 0.0;
        let mut sum_squared_error = 0.0;
        let mut sample_count = 0usize;

        for (t, original) in source.iter().enumerate() {
            let mut recon = Frame::new(original.width, original.height, 0.0);
            for by in (0..original.height).step_by(block) {
                for bx in (0..original.width).step_by(block) {
                    let (prediction, search_work) = if t == 0 {
                        // Intra frame: flat mid-gray prediction.
                        (vec![128.0; block * block], 0.0)
                    } else {
                        self.motion_search(original, &reconstructed, bx, by, subme, merange, refs)
                    };
                    work += search_work;

                    // Residual coding.
                    let mut block_bits = 0.0;
                    for dy in 0..block {
                        for dx in 0..block {
                            let orig = original.at((bx + dx) as isize, (by + dy) as isize);
                            let pred = prediction[dy * block + dx];
                            let residual = orig - pred;
                            let quantized = (residual / q).round();
                            block_bits += if quantized == 0.0 {
                                0.1
                            } else {
                                1.0 + 2.0 * (quantized.abs() + 1.0).log2().ceil()
                            };
                            let value = (pred + quantized * q).clamp(0.0, 255.0);
                            recon.set(bx + dx, by + dy, value);
                            sum_squared_error += (orig - value).powi(2);
                            sample_count += 1;
                        }
                    }
                    work += (block * block) as f64;
                    total_bits += block_bits;
                }
            }
            reconstructed.push(recon);
        }

        let mse = sum_squared_error / sample_count as f64;
        EncodeStats {
            psnr_db: Psnr::from_mse(mse, 255.0).decibels(),
            bits: total_bits,
            work,
        }
    }

    /// Searches the reference frames for the best prediction of the block at
    /// `(bx, by)` of `original`. Returns the predicted samples and the work
    /// spent searching.
    #[allow(clippy::too_many_arguments)]
    fn motion_search(
        &self,
        original: &Frame,
        reconstructed: &[Frame],
        bx: usize,
        by: usize,
        subme: u32,
        merange: u32,
        refs: u32,
    ) -> (Vec<f64>, f64) {
        let block = self.config.block_size;
        let block_area = (block * block) as f64;
        let merange = merange as isize;
        let mut work = 0.0;

        let mut best_sad = f64::INFINITY;
        let mut best: (usize, f64, f64) = (reconstructed.len() - 1, 0.0, 0.0);

        let first_ref = reconstructed.len().saturating_sub(refs as usize);
        for (ref_index, reference) in reconstructed.iter().enumerate().skip(first_ref) {
            // Coarse integer search on a step-4 grid, then a step-1
            // refinement around the best coarse position.
            let coarse_step = 4isize.min(merange.max(1));
            let mut ref_best_sad = f64::INFINITY;
            let mut ref_best = (0.0f64, 0.0f64);
            let mut dy = -merange;
            while dy <= merange {
                let mut dx = -merange;
                while dx <= merange {
                    let sad = self.block_sad(original, reference, bx, by, dx as f64, dy as f64);
                    work += block_area;
                    if sad < ref_best_sad {
                        ref_best_sad = sad;
                        ref_best = (dx as f64, dy as f64);
                    }
                    dx += coarse_step;
                }
                dy += coarse_step;
            }
            for dy in -2isize..=2 {
                for dx in -2isize..=2 {
                    let mx = (ref_best.0 + dx as f64).clamp(-(merange as f64), merange as f64);
                    let my = (ref_best.1 + dy as f64).clamp(-(merange as f64), merange as f64);
                    let sad = self.block_sad(original, reference, bx, by, mx, my);
                    work += block_area;
                    if sad < ref_best_sad {
                        ref_best_sad = sad;
                        ref_best = (mx, my);
                    }
                }
            }

            // Sub-pixel refinement: each subme level above 1 evaluates the
            // eight half-pel (then quarter-pel) neighbors of the current
            // best.
            let refinement_passes = subme.saturating_sub(1).min(6);
            let mut precision = 0.5;
            for pass in 0..refinement_passes {
                for dy in [-1.0, 0.0, 1.0] {
                    for dx in [-1.0f64, 0.0, 1.0] {
                        if dx == 0.0 && dy == 0.0 {
                            continue;
                        }
                        let mx = ref_best.0 + dx * precision;
                        let my = ref_best.1 + dy * precision;
                        let sad = self.block_sad(original, reference, bx, by, mx, my);
                        work += block_area;
                        if sad < ref_best_sad {
                            ref_best_sad = sad;
                            ref_best = (mx, my);
                        }
                    }
                }
                if pass % 2 == 1 {
                    precision /= 2.0;
                }
            }

            if ref_best_sad < best_sad {
                best_sad = ref_best_sad;
                best = (ref_index, ref_best.0, ref_best.1);
            }
        }

        let (ref_index, mx, my) = best;
        let reference = &reconstructed[ref_index];
        let mut prediction = vec![0.0; block * block];
        for dy in 0..block {
            for dx in 0..block {
                prediction[dy * block + dx] =
                    reference.sample(bx as f64 + dx as f64 + mx, by as f64 + dy as f64 + my);
            }
        }
        (prediction, work)
    }

    fn block_sad(
        &self,
        original: &Frame,
        reference: &Frame,
        bx: usize,
        by: usize,
        mx: f64,
        my: f64,
    ) -> f64 {
        let block = self.config.block_size;
        let mut sad = 0.0;
        for dy in 0..block {
            for dx in 0..block {
                let orig = original.at((bx + dx) as isize, (by + dy) as isize);
                let pred = reference.sample(bx as f64 + dx as f64 + mx, by as f64 + dy as f64 + my);
                sad += (orig - pred).abs();
            }
        }
        sad
    }
}

impl KnobbedApplication for VideoEncoderApp {
    fn name(&self) -> &str {
        "x264"
    }

    fn parameter_space(&self) -> ParameterSpace {
        let default_of = |values: &[f64]| *values.last().expect("knob ranges are non-empty");
        ParameterSpace::builder()
            .parameter(
                ConfigParameter::new(
                    SUBME_KNOB,
                    self.config.subme_values.clone(),
                    default_of(&self.config.subme_values),
                )
                .expect("subme values are valid"),
            )
            .parameter(
                ConfigParameter::new(
                    MERANGE_KNOB,
                    self.config.merange_values.clone(),
                    default_of(&self.config.merange_values),
                )
                .expect("merange values are valid"),
            )
            .parameter(
                ConfigParameter::new(
                    REF_KNOB,
                    self.config.ref_values.clone(),
                    default_of(&self.config.ref_values),
                )
                .expect("ref values are valid"),
            )
            .build()
            .expect("the space has three distinct parameters")
    }

    fn qos_comparator(&self) -> Box<dyn QosComparator> {
        // PSNR and bitrate weighted equally, as in the paper.
        Box::new(DistortionComparator::new())
    }

    fn input_count(&self, set: InputSet) -> usize {
        match set {
            InputSet::Training => self.config.training_videos,
            InputSet::Production => self.config.production_videos,
        }
    }

    fn run_input(&self, set: InputSet, index: usize, setting: &ParameterSetting) -> WorkUnitResult {
        assert!(
            index < self.input_count(set),
            "video index {index} out of range for the {set} set"
        );
        let subme = setting.value(SUBME_KNOB).expect("setting assigns subme") as u32;
        let merange = setting
            .value(MERANGE_KNOB)
            .expect("setting assigns merange") as u32;
        let refs = setting.value(REF_KNOB).expect("setting assigns ref") as u32;
        let stats = self.encode(set, index, subme, merange, refs);
        WorkUnitResult {
            work: stats.work,
            output: OutputAbstraction::builder()
                .component("psnr", stats.psnr_db)
                .component("bitrate", stats.bits)
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> VideoEncoderApp {
        VideoEncoderApp::test_scale(11)
    }

    #[test]
    fn configuration_presets_are_valid() {
        let tiny = VideoEncoderApp::test_scale(0);
        assert_eq!(tiny.parameter_space().parameter_count(), 3);
        assert_eq!(tiny.parameter_space().setting_count(), 27);
        let paper = VideoEncoderApp::parsec_scale(0);
        assert_eq!(paper.parameter_space().setting_count(), 48);
        assert_eq!(paper.name(), "x264");
        assert_eq!(paper.config().frame_width, 64);
        assert_eq!(paper.input_count(InputSet::Training), 4);
        assert_eq!(paper.input_count(InputSet::Production), 12);
    }

    #[test]
    fn default_setting_does_more_work_than_fastest() {
        let app = tiny_app();
        let space = app.parameter_space();
        let fastest = app.run_input(InputSet::Training, 0, &space.setting(0).unwrap());
        let default = app.run_input(InputSet::Training, 0, &space.default_setting());
        assert!(
            default.work > 2.0 * fastest.work,
            "default work {} should clearly exceed fastest work {}",
            default.work,
            fastest.work
        );
    }

    #[test]
    fn default_setting_produces_no_worse_quality_and_fewer_bits() {
        let app = tiny_app();
        let default = app.encode(InputSet::Training, 0, 7, 8, 3);
        let fastest = app.encode(InputSet::Training, 0, 1, 1, 1);
        // Better motion search cannot hurt the reconstruction quality and
        // should find cheaper residuals.
        assert!(default.psnr_db >= fastest.psnr_db - 0.5);
        assert!(default.bits <= fastest.bits);
        assert!(
            default.psnr_db > 25.0,
            "psnr {} should be reasonable",
            default.psnr_db
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        let a = app.run_input(InputSet::Production, 1, &setting);
        let b = app.run_input(InputSet::Production, 1, &setting);
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_produce_different_outputs() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        let a = app.run_input(InputSet::Training, 0, &setting);
        let b = app.run_input(InputSet::Training, 1, &setting);
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn output_abstraction_has_psnr_and_bitrate() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        let result = app.run_input(InputSet::Training, 0, &setting);
        assert_eq!(result.output.label(0), Some("psnr"));
        assert_eq!(result.output.label(1), Some("bitrate"));
        assert!(result.output.component(0).unwrap() > 20.0);
        assert!(result.output.component(1).unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_input_panics() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        app.run_input(InputSet::Training, 99, &setting);
    }

    #[test]
    fn frame_sampling_interpolates() {
        let mut frame = Frame::new(4, 4, 0.0);
        frame.set(1, 1, 100.0);
        frame.set(2, 1, 200.0);
        assert_eq!(frame.sample(1.0, 1.0), 100.0);
        assert_eq!(frame.sample(2.0, 1.0), 200.0);
        assert!((frame.sample(1.5, 1.0) - 150.0).abs() < 1e-9);
        // Clamped access outside the frame.
        assert_eq!(frame.at(-5, -5), frame.at(0, 0));
    }
}
