//! The common interface every benchmark application implements.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_influence::{TraceLog, Tracer};
use powerdial_knobs::{ParameterSetting, ParameterSpace, QosComparator};
use powerdial_qos::OutputAbstraction;

/// Which input set a run draws from.
///
/// The paper randomly partitions each benchmark's inputs into a *training*
/// set (used to calibrate the dynamic knobs) and a *production* set (used to
/// evaluate how well the calibration generalizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSet {
    /// Inputs used during knob calibration.
    Training,
    /// Previously unseen inputs used during evaluation.
    Production,
}

impl fmt::Display for InputSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSet::Training => write!(f, "training"),
            InputSet::Production => write!(f, "production"),
        }
    }
}

/// The result of processing one input unit: the computational work it cost
/// and the output abstraction it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkUnitResult {
    /// Abstract work units consumed (proportional to execution time on a
    /// machine of constant speed).
    pub work: f64,
    /// The numeric abstraction of the unit's output.
    pub output: OutputAbstraction,
}

/// A benchmark application whose configuration parameters PowerDial can turn
/// into dynamic knobs.
///
/// Implementations are deterministic pure functions of
/// `(seed, input set, input index, setting)`, which makes calibration,
/// experiments, and tests reproducible.
pub trait KnobbedApplication {
    /// The application's name (as used in the paper's tables and figures).
    fn name(&self) -> &str;

    /// The configuration parameters and value ranges exposed as knobs.
    fn parameter_space(&self) -> ParameterSpace;

    /// The QoS comparator used to score outputs against the baseline
    /// (distortion by default; applications override when the paper uses a
    /// different metric).
    fn qos_comparator(&self) -> Box<dyn QosComparator>;

    /// Number of inputs in the given set.
    fn input_count(&self, set: InputSet) -> usize;

    /// Processes input `index` of `set` under `setting`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `index` is out of range for the set or when
    /// the setting does not assign every parameter of
    /// [`KnobbedApplication::parameter_space`].
    fn run_input(&self, set: InputSet, index: usize, setting: &ParameterSetting) -> WorkUnitResult;

    /// Runs a dynamic influence trace of one execution under `setting`,
    /// producing the [`TraceLog`] the control-variable analysis consumes.
    ///
    /// The default implementation reflects the structure shared by all four
    /// benchmarks: during initialization each configuration parameter's value
    /// is parsed and stored in one control variable, and the main control
    /// loop (one iteration per input unit, one heartbeat per iteration) reads
    /// those variables without writing them.
    fn trace_run(&self, setting: &ParameterSetting) -> TraceLog {
        let mut tracer = Tracer::new(self.name());
        let mut variables = Vec::new();
        for (name, value) in setting.iter() {
            let param = tracer.register_parameter(name);
            let traced = tracer.parameter_value(param, value);
            let variable = tracer.declare_variable(format!("{name}_control"));
            tracer
                .write_variable(variable, traced, "parse_configuration")
                .expect("variable was just declared");
            variables.push(variable);
        }
        tracer.first_heartbeat();
        let iterations = self.input_count(InputSet::Training).clamp(1, 8);
        for _ in 0..iterations {
            for &variable in &variables {
                tracer
                    .read_variable(variable, "main_loop")
                    .expect("control variables are written during initialization");
            }
            tracer.heartbeat();
        }
        tracer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_influence::ControlVariableAnalysis;
    use powerdial_knobs::{ConfigParameter, DistortionComparator};

    /// A minimal application used to exercise the trait's default methods.
    struct ToyApp;

    impl KnobbedApplication for ToyApp {
        fn name(&self) -> &str {
            "toy"
        }

        fn parameter_space(&self) -> ParameterSpace {
            ParameterSpace::builder()
                .parameter(ConfigParameter::new("effort", vec![1.0, 2.0, 4.0], 4.0).unwrap())
                .build()
                .unwrap()
        }

        fn qos_comparator(&self) -> Box<dyn QosComparator> {
            Box::new(DistortionComparator::new())
        }

        fn input_count(&self, set: InputSet) -> usize {
            match set {
                InputSet::Training => 3,
                InputSet::Production => 5,
            }
        }

        fn run_input(
            &self,
            _set: InputSet,
            index: usize,
            setting: &ParameterSetting,
        ) -> WorkUnitResult {
            let effort = setting.value("effort").unwrap();
            WorkUnitResult {
                work: effort * 10.0,
                output: OutputAbstraction::from_components([index as f64 + 1.0 / effort]),
            }
        }
    }

    #[test]
    fn input_set_display() {
        assert_eq!(InputSet::Training.to_string(), "training");
        assert_eq!(InputSet::Production.to_string(), "production");
    }

    #[test]
    fn default_trace_produces_valid_control_variables() {
        let app = ToyApp;
        let space = app.parameter_space();
        let traces: Vec<TraceLog> = space
            .settings()
            .map(|setting| app.trace_run(&setting))
            .collect();
        let params: Vec<_> = (0..space.parameter_count())
            .map(|i| {
                // Parameter ids are assigned in registration order, which
                // matches the setting's declaration order.
                powerdial_influence::ParamId::from(i)
            })
            .collect();
        let analysis = ControlVariableAnalysis::new(params);
        let set = analysis.analyze(&traces).unwrap();
        assert_eq!(set.variable_names(), vec!["effort_control"]);
        assert_eq!(set.setting_count(), 3);
    }

    #[test]
    fn toy_app_work_scales_with_effort() {
        let app = ToyApp;
        let space = app.parameter_space();
        let cheap = app.run_input(InputSet::Training, 0, &space.setting(0).unwrap());
        let expensive = app.run_input(InputSet::Training, 0, &space.default_setting());
        assert!(expensive.work > cheap.work);
        assert_ne!(cheap.output, expensive.output);
    }
}
