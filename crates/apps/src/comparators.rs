//! Application-specific QoS comparators.

use powerdial_knobs::QosComparator;
use powerdial_qos::{
    retrieval::RetrievalScore, weighted_distortion, OutputAbstraction, QosError, QosLoss,
};

/// Distortion with weights proportional to the magnitude of the baseline
/// components.
///
/// The bodytrack benchmark weights each body-part vector component by its
/// magnitude, so large components (the torso) influence the QoS metric more
/// than small ones (forearms). Weights are normalized so that a uniform
/// relative error `e` on every component produces a QoS loss of `e`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MagnitudeWeightedDistortion;

impl MagnitudeWeightedDistortion {
    /// Creates the comparator.
    pub fn new() -> Self {
        MagnitudeWeightedDistortion
    }
}

impl QosComparator for MagnitudeWeightedDistortion {
    fn name(&self) -> &str {
        "magnitude-weighted distortion"
    }

    fn qos_loss(
        &self,
        baseline: &OutputAbstraction,
        candidate: &OutputAbstraction,
    ) -> Result<QosLoss, QosError> {
        baseline.validate()?;
        let total: f64 = baseline.components().iter().map(|c| c.abs()).sum();
        let m = baseline.len() as f64;
        let weights: Vec<f64> = if total == 0.0 {
            vec![1.0; baseline.len()]
        } else {
            baseline
                .components()
                .iter()
                .map(|c| c.abs() / total * m)
                .collect()
        };
        weighted_distortion(baseline, candidate, &weights)
    }
}

/// F-measure over ranked result lists, evaluated at an optional cutoff
/// (`P@N` in the paper's notation).
///
/// The output abstraction of the search benchmark is the ranked list of
/// returned document identifiers. The baseline (default `max-results`)
/// configuration defines the relevant set; the candidate's QoS loss is
/// `1 − F` where `F` is the harmonic mean of precision and recall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankedListFMeasure {
    cutoff: Option<usize>,
}

impl RankedListFMeasure {
    /// F-measure over the full result lists.
    pub fn new() -> Self {
        RankedListFMeasure { cutoff: None }
    }

    /// F-measure evaluated at `P@n`: both lists are truncated to their top
    /// `n` entries before scoring.
    pub fn at(n: usize) -> Self {
        RankedListFMeasure { cutoff: Some(n) }
    }

    /// The configured cutoff, if any.
    pub fn cutoff(&self) -> Option<usize> {
        self.cutoff
    }
}

impl QosComparator for RankedListFMeasure {
    fn name(&self) -> &str {
        "ranked-list F-measure"
    }

    fn qos_loss(
        &self,
        baseline: &OutputAbstraction,
        candidate: &OutputAbstraction,
    ) -> Result<QosLoss, QosError> {
        baseline.validate()?;
        candidate.validate()?;
        let relevant: Vec<u64> = baseline.components().iter().map(|&c| c as u64).collect();
        let retrieved: Vec<u64> = candidate.components().iter().map(|&c| c as u64).collect();
        let score = match self.cutoff {
            Some(n) => RetrievalScore::evaluate_at(&retrieved, &relevant, n),
            None => RetrievalScore::evaluate(&retrieved, &relevant),
        };
        Ok(QosLoss::new(score.qos_loss()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_weighting_emphasizes_large_components() {
        let comparator = MagnitudeWeightedDistortion::new();
        let baseline = OutputAbstraction::from_components([100.0, 1.0]);
        // 10 % error on the large component vs 10 % error on the small one.
        let large_err = OutputAbstraction::from_components([110.0, 1.0]);
        let small_err = OutputAbstraction::from_components([100.0, 1.1]);
        let loss_large = comparator.qos_loss(&baseline, &large_err).unwrap();
        let loss_small = comparator.qos_loss(&baseline, &small_err).unwrap();
        assert!(loss_large.value() > loss_small.value());
        assert_eq!(comparator.name(), "magnitude-weighted distortion");
    }

    #[test]
    fn uniform_relative_error_gives_that_error() {
        let comparator = MagnitudeWeightedDistortion::new();
        let baseline = OutputAbstraction::from_components([10.0, 200.0, 5.0]);
        let candidate = OutputAbstraction::from_components([10.5, 210.0, 5.25]);
        let loss = comparator.qos_loss(&baseline, &candidate).unwrap();
        assert!((loss.value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_falls_back_to_uniform_weights() {
        let comparator = MagnitudeWeightedDistortion::new();
        let baseline = OutputAbstraction::from_components([0.0, 0.0]);
        let candidate = OutputAbstraction::from_components([0.1, 0.0]);
        let loss = comparator.qos_loss(&baseline, &candidate).unwrap();
        assert!(loss.value() > 0.0);
    }

    #[test]
    fn fmeasure_of_identical_lists_is_zero_loss() {
        let comparator = RankedListFMeasure::new();
        let list = OutputAbstraction::from_components([3.0, 1.0, 7.0]);
        assert_eq!(comparator.qos_loss(&list, &list).unwrap(), QosLoss::ZERO);
        assert_eq!(comparator.name(), "ranked-list F-measure");
        assert_eq!(comparator.cutoff(), None);
    }

    #[test]
    fn truncated_list_loses_recall_not_precision() {
        let comparator = RankedListFMeasure::new();
        let baseline = OutputAbstraction::from_components((0..100).map(|i| i as f64));
        let truncated = OutputAbstraction::from_components((0..5).map(|i| i as f64));
        let loss = comparator.qos_loss(&baseline, &truncated).unwrap();
        // Precision 1, recall 0.05 -> F ≈ 0.095, loss ≈ 0.905.
        assert!(loss.value() > 0.85 && loss.value() < 0.95);
    }

    #[test]
    fn p_at_n_ignores_truncation_beyond_the_cutoff() {
        let comparator = RankedListFMeasure::at(5);
        assert_eq!(comparator.cutoff(), Some(5));
        let baseline = OutputAbstraction::from_components((0..100).map(|i| i as f64));
        let truncated = OutputAbstraction::from_components((0..5).map(|i| i as f64));
        // The top five results are identical, so at P@5 there is no loss.
        assert_eq!(
            comparator.qos_loss(&baseline, &truncated).unwrap(),
            QosLoss::ZERO
        );

        let at_ten = RankedListFMeasure::at(10);
        let loss = at_ten.qos_loss(&baseline, &truncated).unwrap();
        assert!(loss.value() > 0.0);
    }
}
