//! A document search engine (the `swish++` benchmark).
//!
//! The engine indexes a synthetic corpus whose word frequencies follow a Zipf
//! distribution (standing in for the Project Gutenberg books the paper uses),
//! generates queries by sampling words from a power-law distribution
//! (following the Middleton & Baeza-Yates methodology the paper cites), and
//! answers each query from an inverted index with tf–idf ranking. The single
//! knob is `max-results`: returning fewer results skips the per-result
//! processing of low-ranked hits, trading recall for throughput exactly as
//! swish++'s `-m` flag does.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use powerdial_knobs::{ConfigParameter, ParameterSetting, ParameterSpace, QosComparator};
use powerdial_qos::OutputAbstraction;

use crate::comparators::RankedListFMeasure;
use crate::traits::{InputSet, KnobbedApplication, WorkUnitResult};

/// Name of the maximum-results knob (swish++'s `-m` / `max-results` option).
pub const MAX_RESULTS_KNOB: &str = "max_results";

/// Sizing configuration of the search engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Number of documents in the corpus.
    pub documents: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Words per document.
    pub words_per_document: usize,
    /// Values explored for the `max_results` knob.
    pub max_results_values: Vec<f64>,
    /// Number of training queries.
    pub training_queries: usize,
    /// Number of production queries.
    pub production_queries: usize,
    /// Minimum and maximum number of terms per query.
    pub query_terms: (usize, usize),
}

impl SearchConfig {
    /// A configuration mirroring the paper's setup (2000 documents, the
    /// default `max-results` ladder 5–100) at a corpus size that indexes
    /// quickly.
    pub fn swish_like() -> Self {
        SearchConfig {
            documents: 2000,
            vocabulary: 4000,
            words_per_document: 200,
            max_results_values: vec![5.0, 10.0, 25.0, 50.0, 75.0, 100.0],
            training_queries: 40,
            production_queries: 60,
            query_terms: (1, 3),
        }
    }

    /// A tiny configuration for unit tests and debug builds.
    pub fn tiny() -> Self {
        SearchConfig {
            documents: 250,
            vocabulary: 600,
            words_per_document: 60,
            max_results_values: vec![5.0, 10.0, 25.0, 50.0, 100.0],
            training_queries: 8,
            production_queries: 12,
            query_terms: (1, 3),
        }
    }
}

/// One parsed query: the distinct term identifiers to search for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Term identifiers, most significant first.
    pub terms: Vec<u32>,
}

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Document identifier.
    pub document: u32,
    /// tf–idf relevance score.
    pub score: f64,
}

/// The outcome of answering one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The returned hits, best first, truncated to `max_results`.
    pub hits: Vec<SearchHit>,
    /// Total matching documents before truncation.
    pub matched: usize,
    /// Abstract work units the query consumed.
    pub work: f64,
}

/// The document search application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchApp {
    seed: u64,
    config: SearchConfig,
    /// Inverted index: term id -> postings of `(document, term frequency)`.
    index: HashMap<u32, Vec<(u32, u32)>>,
    training_queries: Vec<Query>,
    production_queries: Vec<Query>,
}

impl SearchApp {
    /// Creates a search engine with the paper-like configuration.
    pub fn swish_scale(seed: u64) -> Self {
        SearchApp::with_config(seed, SearchConfig::swish_like())
    }

    /// Creates a search engine with the tiny test configuration.
    pub fn test_scale(seed: u64) -> Self {
        SearchApp::with_config(seed, SearchConfig::tiny())
    }

    /// Creates a search engine with a custom configuration, generating and
    /// indexing the corpus and the query sets.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (no documents, empty
    /// vocabulary, no knob values, or no queries).
    pub fn with_config(seed: u64, config: SearchConfig) -> Self {
        assert!(config.documents > 0 && config.vocabulary > 0 && config.words_per_document > 0);
        assert!(!config.max_results_values.is_empty());
        assert!(config.training_queries > 0 && config.production_queries > 0);
        assert!(config.query_terms.0 >= 1 && config.query_terms.0 <= config.query_terms.1);

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));

        // Zipf-distributed word sampler: cumulative weights 1/rank.
        let zipf = ZipfSampler::new(config.vocabulary, 1.0);

        // Build the corpus and the inverted index in one pass.
        let mut index: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for document in 0..config.documents as u32 {
            let mut term_frequencies: HashMap<u32, u32> = HashMap::new();
            for _ in 0..config.words_per_document {
                let word = zipf.sample(&mut rng);
                *term_frequencies.entry(word).or_insert(0) += 1;
            }
            for (word, tf) in term_frequencies {
                index.entry(word).or_default().push((document, tf));
            }
        }
        for postings in index.values_mut() {
            postings.sort_by_key(|(document, _)| *document);
        }

        // Queries: words sampled from a steeper power law (frequent words are
        // queried more often), excluding the most common "stop words".
        let query_sampler = ZipfSampler::new(config.vocabulary, 1.2);
        let stop_words = (config.vocabulary / 100).max(3) as u32;
        let make_queries = |count: usize, rng: &mut StdRng| -> Vec<Query> {
            (0..count)
                .map(|_| {
                    let terms_wanted = rng.gen_range(config.query_terms.0..=config.query_terms.1);
                    let mut terms = Vec::with_capacity(terms_wanted);
                    while terms.len() < terms_wanted {
                        let word = query_sampler.sample(rng) + stop_words;
                        let word = word.min(config.vocabulary as u32 - 1);
                        if !terms.contains(&word) {
                            terms.push(word);
                        }
                    }
                    Query { terms }
                })
                .collect()
        };
        let training_queries = make_queries(config.training_queries, &mut rng);
        let production_queries = make_queries(config.production_queries, &mut rng);

        SearchApp {
            seed,
            config,
            index,
            training_queries,
            production_queries,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The queries of the given input set.
    pub fn queries(&self, set: InputSet) -> &[Query] {
        match set {
            InputSet::Training => &self.training_queries,
            InputSet::Production => &self.production_queries,
        }
    }

    /// Answers one query, returning at most `max_results` ranked hits.
    pub fn answer(&self, query: &Query, max_results: usize) -> QueryOutcome {
        let documents = self.config.documents as f64;
        let mut scores: HashMap<u32, f64> = HashMap::new();
        let mut postings_scanned = 0usize;

        for term in &query.terms {
            if let Some(postings) = self.index.get(term) {
                let document_frequency = postings.len() as f64;
                let idf = (documents / (1.0 + document_frequency)).ln().max(0.0);
                for &(document, tf) in postings {
                    *scores.entry(document).or_insert(0.0) += tf as f64 * idf;
                    postings_scanned += 1;
                }
            }
        }

        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(document, score)| SearchHit { document, score })
            .collect();
        // Rank by score, breaking ties by document id for determinism.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.document.cmp(&b.document))
        });
        let matched = hits.len();
        let returned = matched.min(max_results);
        hits.truncate(returned);

        // Work: scanning and scoring the postings dominates, but every
        // returned result also pays a retrieval cost (swish++ loads and
        // formats each hit). The per-result cost is calibrated so that the
        // default 100-result configuration does roughly 1.5x the work of the
        // truncated configurations, matching the paper's observed speedup.
        let scan_work = postings_scanned as f64;
        let rank_work = matched as f64 * ((matched as f64) + 1.0).log2();
        let per_result_work = (scan_work + rank_work) / 150.0;
        let work = scan_work + rank_work + per_result_work * returned as f64;

        QueryOutcome {
            hits,
            matched,
            work,
        }
    }

    /// A QoS comparator evaluating precision/recall at `P@n`, as reported in
    /// the paper's figures for P@10 and P@100.
    pub fn qos_comparator_at(&self, n: usize) -> Box<dyn QosComparator> {
        Box::new(RankedListFMeasure::at(n))
    }
}

/// Samples ranks 0..n with probability proportional to `1 / (rank+1)^exponent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        let total = *self.cumulative.last().expect("sampler is non-empty");
        let target = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&target).expect("finite weights"))
        {
            Ok(index) | Err(index) => index.min(self.cumulative.len() - 1) as u32,
        }
    }
}

impl KnobbedApplication for SearchApp {
    fn name(&self) -> &str {
        "swish++"
    }

    fn parameter_space(&self) -> ParameterSpace {
        let default = *self
            .config
            .max_results_values
            .last()
            .expect("knob values are non-empty");
        ParameterSpace::builder()
            .parameter(
                ConfigParameter::new(
                    MAX_RESULTS_KNOB,
                    self.config.max_results_values.clone(),
                    default,
                )
                .expect("max-results values are valid"),
            )
            .build()
            .expect("the space has one parameter")
    }

    fn qos_comparator(&self) -> Box<dyn QosComparator> {
        // The paper's headline swish++ numbers (Figures 6d and 8d) evaluate
        // precision and recall at a cutoff of ten results; use P@10 as the
        // default metric and expose other cutoffs through
        // [`SearchApp::qos_comparator_at`].
        Box::new(RankedListFMeasure::at(10))
    }

    fn input_count(&self, set: InputSet) -> usize {
        self.queries(set).len()
    }

    fn run_input(&self, set: InputSet, index: usize, setting: &ParameterSetting) -> WorkUnitResult {
        let query = &self.queries(set)[index];
        let max_results = setting
            .value(MAX_RESULTS_KNOB)
            .expect("setting assigns max_results")
            .round()
            .max(1.0) as usize;
        let outcome = self.answer(query, max_results);
        WorkUnitResult {
            work: outcome.work,
            output: OutputAbstraction::from_components(
                outcome.hits.iter().map(|hit| hit.document as f64),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> SearchApp {
        SearchApp::test_scale(31)
    }

    #[test]
    fn configuration_presets_are_valid() {
        let app = tiny_app();
        assert_eq!(app.name(), "swish++");
        assert_eq!(app.parameter_space().setting_count(), 5);
        assert_eq!(app.input_count(InputSet::Training), 8);
        assert_eq!(app.input_count(InputSet::Production), 12);
        assert_eq!(
            app.parameter_space()
                .default_setting()
                .value(MAX_RESULTS_KNOB),
            Some(100.0)
        );
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn common_words_appear_in_many_documents() {
        let app = tiny_app();
        let common = app.index.get(&0).map(|p| p.len()).unwrap_or(0);
        let rare = app
            .index
            .get(&(app.config.vocabulary as u32 - 1))
            .map(|p| p.len())
            .unwrap_or(0);
        assert!(
            common > rare,
            "word 0 should be in more documents ({common} vs {rare})"
        );
        assert!(common > app.config.documents / 2);
    }

    #[test]
    fn truncation_keeps_top_ranked_hits() {
        let app = tiny_app();
        let query = &app.queries(InputSet::Training)[0];
        let full = app.answer(query, 100);
        let truncated = app.answer(query, 5);
        assert!(truncated.hits.len() <= 5);
        assert_eq!(truncated.matched, full.matched);
        for (a, b) in truncated.hits.iter().zip(full.hits.iter()) {
            assert_eq!(
                a.document, b.document,
                "top results must be preserved in order"
            );
        }
        // Scores are sorted descending.
        for pair in full.hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn returning_fewer_results_costs_less_work() {
        let app = tiny_app();
        let mut total_full = 0.0;
        let mut total_truncated = 0.0;
        for query in app.queries(InputSet::Training) {
            total_full += app.answer(query, 100).work;
            total_truncated += app.answer(query, 5).work;
        }
        let speedup = total_full / total_truncated;
        assert!(
            speedup > 1.2 && speedup < 1.8,
            "speedup {speedup} should be roughly the paper's 1.5x"
        );
    }

    #[test]
    fn qos_loss_comes_from_recall_not_precision() {
        use powerdial_qos::retrieval::RetrievalScore;
        let app = tiny_app();
        let query = &app.queries(InputSet::Production)[0];
        let baseline: Vec<u32> = app
            .answer(query, 100)
            .hits
            .iter()
            .map(|h| h.document)
            .collect();
        let truncated: Vec<u32> = app
            .answer(query, 5)
            .hits
            .iter()
            .map(|h| h.document)
            .collect();
        let score = RetrievalScore::evaluate(&truncated, &baseline);
        assert_eq!(
            score.precision(),
            1.0,
            "every returned result is still relevant"
        );
        assert!(
            score.recall() < 1.0,
            "recall drops because results are dropped"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        let a = app.run_input(InputSet::Training, 3, &setting);
        let b = app.run_input(InputSet::Training, 3, &setting);
        assert_eq!(a, b);
        let rebuilt = SearchApp::test_scale(31);
        let c = rebuilt.run_input(InputSet::Training, 3, &setting);
        assert_eq!(a, c);
    }

    #[test]
    fn comparator_at_cutoff_is_available() {
        let app = tiny_app();
        let comparator = app.qos_comparator_at(10);
        assert_eq!(comparator.name(), "ranked-list F-measure");
        let default_comparator = app.qos_comparator();
        assert_eq!(default_comparator.name(), "ranked-list F-measure");
    }

    #[test]
    fn queries_respect_term_count_bounds() {
        let app = tiny_app();
        for query in app
            .queries(InputSet::Training)
            .iter()
            .chain(app.queries(InputSet::Production))
        {
            assert!(!query.terms.is_empty() && query.terms.len() <= 3);
            let mut unique = query.terms.clone();
            unique.dedup();
            assert_eq!(unique.len(), query.terms.len(), "terms are distinct");
        }
    }
}
