//! Monte Carlo swaption pricing (the PARSEC `swaptions` benchmark).
//!
//! Each input is one European payer swaption. The application prices it with
//! a Monte Carlo simulation of the terminal forward swap rate under a
//! lognormal (Black) model: accuracy approaches an asymptote as the number of
//! simulation trials grows, while execution time grows linearly — exactly the
//! trade-off the paper's `-sm` knob exposes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_free::standard_normal;
use serde::{Deserialize, Serialize};

use powerdial_knobs::{
    ConfigParameter, DistortionComparator, ParameterSetting, ParameterSpace, QosComparator,
};
use powerdial_qos::OutputAbstraction;

use crate::traits::{InputSet, KnobbedApplication, WorkUnitResult};

/// Name of the trial-count knob (the benchmark's `-sm` command-line flag).
pub const TRIALS_KNOB: &str = "sm";

/// One swaption to price.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Swaption {
    /// Current forward swap rate.
    pub forward_rate: f64,
    /// Strike rate.
    pub strike: f64,
    /// Lognormal volatility of the forward swap rate.
    pub volatility: f64,
    /// Option maturity in years.
    pub maturity_years: f64,
    /// Tenor of the underlying swap in years (determines the annuity).
    pub tenor_years: f64,
    /// Flat discount rate used for the annuity.
    pub discount_rate: f64,
}

impl Swaption {
    /// The annuity (present value of a unit coupon stream over the swap's
    /// tenor, paid annually, discounted from the option maturity).
    pub fn annuity(&self) -> f64 {
        let payments = self.tenor_years.round().max(1.0) as usize;
        (1..=payments)
            .map(|k| (-(self.maturity_years + k as f64) * self.discount_rate).exp())
            .sum()
    }

    /// The closed-form Black price of the swaption (used as the reference in
    /// convergence tests).
    pub fn black_price(&self) -> f64 {
        let sigma_sqrt_t = self.volatility * self.maturity_years.sqrt();
        if sigma_sqrt_t <= 0.0 {
            return self.annuity() * (self.forward_rate - self.strike).max(0.0);
        }
        let d1 = ((self.forward_rate / self.strike).ln() + 0.5 * sigma_sqrt_t * sigma_sqrt_t)
            / sigma_sqrt_t;
        let d2 = d1 - sigma_sqrt_t;
        self.annuity() * (self.forward_rate * normal_cdf(d1) - self.strike * normal_cdf(d2))
    }

    /// Prices the swaption with `trials` Monte Carlo paths using the given
    /// random stream.
    pub fn monte_carlo_price(&self, trials: u64, rng: &mut StdRng) -> f64 {
        let sigma_sqrt_t = self.volatility * self.maturity_years.sqrt();
        let drift = -0.5 * sigma_sqrt_t * sigma_sqrt_t;
        let annuity = self.annuity();
        let mut total = 0.0;
        for _ in 0..trials {
            let z = standard_normal(rng);
            let terminal_rate = self.forward_rate * (drift + sigma_sqrt_t * z).exp();
            total += (terminal_rate - self.strike).max(0.0);
        }
        annuity * total / trials as f64
    }
}

/// Standard normal cumulative distribution function (Abramowitz–Stegun
/// approximation, accurate to ~1e-7).
fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Minimal inline standard-normal sampler (Box–Muller) so the crate only
/// depends on `rand`'s uniform generator.
mod rand_distr_free {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Draws one standard normal variate.
    pub fn standard_normal(rng: &mut StdRng) -> f64 {
        loop {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let value = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            if value.is_finite() {
                return value;
            }
        }
    }
}

/// The Monte Carlo swaption-pricing application.
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwaptionsApp {
    seed: u64,
    trial_values: Vec<f64>,
    training: Vec<Swaption>,
    production: Vec<Swaption>,
}

impl SwaptionsApp {
    /// The configuration used for the paper-scale experiments: trial counts
    /// from 10 000 up to the PARSEC native default of 1 000 000, with 64
    /// training and 512 production swaptions.
    pub fn parsec_scale(seed: u64) -> Self {
        SwaptionsApp::with_configuration(
            seed,
            vec![
                10_000.0,
                25_000.0,
                50_000.0,
                100_000.0,
                250_000.0,
                500_000.0,
                1_000_000.0,
            ],
            64,
            512,
        )
    }

    /// A scaled-down configuration suitable for unit tests and debug builds:
    /// the same structure with far fewer trials and inputs.
    pub fn test_scale(seed: u64) -> Self {
        SwaptionsApp::with_configuration(
            seed,
            vec![200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 20_000.0],
            6,
            12,
        )
    }

    /// Fully custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `trial_values` is empty or the input counts are zero.
    pub fn with_configuration(
        seed: u64,
        trial_values: Vec<f64>,
        training_inputs: usize,
        production_inputs: usize,
    ) -> Self {
        assert!(
            !trial_values.is_empty(),
            "at least one trial count is required"
        );
        assert!(
            training_inputs > 0 && production_inputs > 0,
            "input counts must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let training = (0..training_inputs)
            .map(|_| SwaptionsApp::random_swaption(&mut rng))
            .collect();
        let production = (0..production_inputs)
            .map(|_| SwaptionsApp::random_swaption(&mut rng))
            .collect();
        SwaptionsApp {
            seed,
            trial_values,
            training,
            production,
        }
    }

    fn random_swaption(rng: &mut StdRng) -> Swaption {
        let forward_rate = rng.gen_range(0.01..0.08);
        Swaption {
            forward_rate,
            strike: forward_rate * rng.gen_range(0.8..1.2),
            volatility: rng.gen_range(0.1..0.5),
            maturity_years: rng.gen_range(1.0..10.0),
            tenor_years: rng.gen_range(1.0..10.0),
            discount_rate: rng.gen_range(0.005..0.05),
        }
    }

    /// The swaptions in the given input set.
    pub fn inputs(&self, set: InputSet) -> &[Swaption] {
        match set {
            InputSet::Training => &self.training,
            InputSet::Production => &self.production,
        }
    }

    fn rng_for(&self, set: InputSet, index: usize, trials: u64) -> StdRng {
        let set_tag = match set {
            InputSet::Training => 1u64,
            InputSet::Production => 2u64,
        };
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(set_tag << 32)
                .wrapping_add((index as u64) << 8)
                .wrapping_add(trials),
        )
    }
}

impl KnobbedApplication for SwaptionsApp {
    fn name(&self) -> &str {
        "swaptions"
    }

    fn parameter_space(&self) -> ParameterSpace {
        let default = *self
            .trial_values
            .last()
            .expect("trial values are validated to be non-empty");
        ParameterSpace::builder()
            .parameter(
                ConfigParameter::new(TRIALS_KNOB, self.trial_values.clone(), default)
                    .expect("trial values are finite and include the default"),
            )
            .build()
            .expect("the space has exactly one parameter")
    }

    fn qos_comparator(&self) -> Box<dyn QosComparator> {
        // Prices are weighted equally, so plain distortion is the paper's
        // metric.
        Box::new(DistortionComparator::new())
    }

    fn input_count(&self, set: InputSet) -> usize {
        self.inputs(set).len()
    }

    fn run_input(&self, set: InputSet, index: usize, setting: &ParameterSetting) -> WorkUnitResult {
        let swaption = self.inputs(set)[index];
        let trials = setting
            .value(TRIALS_KNOB)
            .expect("setting must assign the trial-count knob")
            .round()
            .max(1.0) as u64;
        let mut rng = self.rng_for(set, index, trials);
        let price = swaption.monte_carlo_price(trials, &mut rng);
        WorkUnitResult {
            work: trials as f64,
            output: OutputAbstraction::builder()
                .component("price", price)
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annuity_discounts_each_payment() {
        let swaption = Swaption {
            forward_rate: 0.05,
            strike: 0.05,
            volatility: 0.2,
            maturity_years: 1.0,
            tenor_years: 2.0,
            discount_rate: 0.0,
        };
        // Zero discount rate: annuity is just the number of payments.
        assert!((swaption.annuity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn monte_carlo_converges_to_black_price() {
        let swaption = Swaption {
            forward_rate: 0.05,
            strike: 0.05,
            volatility: 0.25,
            maturity_years: 3.0,
            tenor_years: 5.0,
            discount_rate: 0.02,
        };
        let reference = swaption.black_price();
        let mut rng = StdRng::seed_from_u64(17);
        let estimate = swaption.monte_carlo_price(200_000, &mut rng);
        let relative_error = ((estimate - reference) / reference).abs();
        assert!(
            relative_error < 0.02,
            "mc price {estimate} vs black {reference} (relative error {relative_error})"
        );
    }

    #[test]
    fn more_trials_means_more_accurate_prices_on_average() {
        let app = SwaptionsApp::test_scale(3);
        let space = app.parameter_space();
        let cheap_setting = space.setting(0).unwrap();
        let default_setting = space.default_setting();

        let mut cheap_error = 0.0;
        let mut default_error = 0.0;
        for (index, swaption) in app.inputs(InputSet::Training).iter().enumerate() {
            let reference = swaption.black_price();
            let cheap = app.run_input(InputSet::Training, index, &cheap_setting);
            let default = app.run_input(InputSet::Training, index, &default_setting);
            cheap_error += ((cheap.output.component(0).unwrap() - reference) / reference).abs();
            default_error += ((default.output.component(0).unwrap() - reference) / reference).abs();
        }
        assert!(
            default_error < cheap_error,
            "default-trial error {default_error} should beat cheap-trial error {cheap_error}"
        );
    }

    #[test]
    fn work_equals_trial_count() {
        let app = SwaptionsApp::test_scale(1);
        let space = app.parameter_space();
        for setting in space.settings() {
            let result = app.run_input(InputSet::Production, 0, &setting);
            assert_eq!(result.work, setting.value(TRIALS_KNOB).unwrap());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let app = SwaptionsApp::test_scale(5);
        let setting = app.parameter_space().default_setting();
        let a = app.run_input(InputSet::Training, 2, &setting);
        let b = app.run_input(InputSet::Training, 2, &setting);
        assert_eq!(a, b);
        let other_app = SwaptionsApp::test_scale(5);
        let c = other_app.run_input(InputSet::Training, 2, &setting);
        assert_eq!(a, c);
    }

    #[test]
    fn input_counts_match_configuration() {
        let app = SwaptionsApp::test_scale(0);
        assert_eq!(app.input_count(InputSet::Training), 6);
        assert_eq!(app.input_count(InputSet::Production), 12);
        assert_eq!(app.name(), "swaptions");
        let paper = SwaptionsApp::parsec_scale(0);
        assert_eq!(paper.input_count(InputSet::Training), 64);
        assert_eq!(paper.input_count(InputSet::Production), 512);
        assert_eq!(paper.parameter_space().setting_count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one trial count")]
    fn empty_trial_values_panic() {
        SwaptionsApp::with_configuration(0, vec![], 1, 1);
    }

    #[test]
    fn trace_run_yields_one_control_variable() {
        use powerdial_influence::{ControlVariableAnalysis, ParamId};
        let app = SwaptionsApp::test_scale(9);
        let space = app.parameter_space();
        let traces: Vec<_> = space.settings().map(|s| app.trace_run(&s)).collect();
        let set = ControlVariableAnalysis::new([ParamId::new(0)])
            .analyze(&traces)
            .unwrap();
        assert_eq!(set.variable_names(), vec!["sm_control"]);
    }
}
