//! Benchmark applications with performance-versus-QoS knobs.
//!
//! The PowerDial paper evaluates on three PARSEC benchmarks and one
//! open-source search engine. This crate reimplements the computational core
//! of each as a self-contained, deterministic Rust application exposing the
//! same knobs and the same QoS structure:
//!
//! | Module | Paper benchmark | Knobs | QoS metric |
//! |---|---|---|---|
//! | [`swaptions`] | PARSEC swaptions (Monte Carlo swaption pricing) | `sm` — trials per swaption | distortion of swaption prices |
//! | [`video`] | PARSEC x264 (H.264 encoding) | `subme`, `merange`, `ref` | distortion of PSNR and bitrate |
//! | [`bodytrack`] | PARSEC bodytrack (annealed particle filter) | annealing layers, particles | magnitude-weighted distortion of body-part vectors |
//! | [`search`] | swish++ (document search engine) | `max_results` | F-measure of ranked result lists |
//!
//! All four implement [`KnobbedApplication`]: given an input index (from the
//! training or production set) and a parameter setting, they perform the real
//! computation, report the *work* it required (abstract work units that the
//! platform simulator converts into time), and produce the output abstraction
//! PowerDial's calibrator compares against the baseline.
//!
//! Every application is seeded and fully deterministic: the same
//! `(seed, input, setting)` triple always produces the same work and output.
//!
//! # Example
//!
//! ```
//! use powerdial_apps::{InputSet, KnobbedApplication, SwaptionsApp};
//!
//! let app = SwaptionsApp::test_scale(7);
//! let space = app.parameter_space();
//! let baseline = space.default_setting();
//! let result = app.run_input(InputSet::Training, 0, &baseline);
//! assert!(result.work > 0.0);
//! assert_eq!(result.output.len(), 1); // one swaption price
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bodytrack;
mod comparators;
pub mod search;
pub mod swaptions;
mod traits;
pub mod video;

pub use bodytrack::BodytrackApp;
pub use comparators::{MagnitudeWeightedDistortion, RankedListFMeasure};
pub use search::SearchApp;
pub use swaptions::SwaptionsApp;
pub use traits::{InputSet, KnobbedApplication, WorkUnitResult};
pub use video::VideoEncoderApp;
