//! Annealed-particle-filter body tracking (the PARSEC `bodytrack` benchmark).
//!
//! The application tracks an articulated body through a synthetic multi-camera
//! sequence with an annealed particle filter. The two knobs are the number of
//! annealing layers and the number of particles — more of either improves the
//! tracked pose vectors and costs proportionally more computation, mirroring
//! the PARSEC benchmark's positional parameters `argv[5]` and `argv[4]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use powerdial_knobs::{ConfigParameter, ParameterSetting, ParameterSpace, QosComparator};
use powerdial_qos::OutputAbstraction;

use crate::comparators::MagnitudeWeightedDistortion;
use crate::traits::{InputSet, KnobbedApplication, WorkUnitResult};

/// Name of the annealing-layers knob.
pub const LAYERS_KNOB: &str = "layers";
/// Name of the particle-count knob.
pub const PARTICLES_KNOB: &str = "particles";

/// Dimensionality of the tracked pose vector: torso (x, y), head (x, y), and
/// the angles of four limbs.
pub const POSE_DIMENSIONS: usize = 8;

/// Number of simulated calibrated cameras observing the scene.
pub const CAMERA_COUNT: usize = 4;

/// Sizing configuration of the tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodytrackConfig {
    /// Frames in the training sequence.
    pub training_frames: usize,
    /// Frames in the production sequence.
    pub production_frames: usize,
    /// Values explored for the layers knob.
    pub layer_values: Vec<f64>,
    /// Values explored for the particles knob.
    pub particle_values: Vec<f64>,
    /// Standard deviation of the per-camera observation noise.
    pub observation_noise: f64,
}

impl BodytrackConfig {
    /// A configuration mirroring the paper's knob ranges (layers 1–5,
    /// particles 100–4000) on sequences scaled to run everywhere.
    pub fn parsec_like() -> Self {
        BodytrackConfig {
            training_frames: 25,
            production_frames: 60,
            layer_values: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            particle_values: vec![100.0, 500.0, 1000.0, 2000.0, 4000.0],
            observation_noise: 0.4,
        }
    }

    /// A tiny configuration for unit tests and debug builds.
    pub fn tiny() -> Self {
        BodytrackConfig {
            training_frames: 8,
            production_frames: 12,
            layer_values: vec![1.0, 3.0, 5.0],
            particle_values: vec![50.0, 200.0, 800.0],
            observation_noise: 0.4,
        }
    }
}

/// The body-tracking application.
///
/// Each *input* is a complete camera sequence (the training sequence or the
/// production sequence, possibly offset to create several distinct inputs);
/// running it produces the concatenated pose vectors for every frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodytrackApp {
    seed: u64,
    config: BodytrackConfig,
}

impl BodytrackApp {
    /// Creates a tracker with the paper-like configuration.
    pub fn parsec_scale(seed: u64) -> Self {
        BodytrackApp::with_config(seed, BodytrackConfig::parsec_like())
    }

    /// Creates a tracker with the tiny test configuration.
    pub fn test_scale(seed: u64) -> Self {
        BodytrackApp::with_config(seed, BodytrackConfig::tiny())
    }

    /// Creates a tracker with a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration has no frames or empty knob ranges.
    pub fn with_config(seed: u64, config: BodytrackConfig) -> Self {
        assert!(config.training_frames > 1 && config.production_frames > 1);
        assert!(!config.layer_values.is_empty() && !config.particle_values.is_empty());
        BodytrackApp { seed, config }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &BodytrackConfig {
        &self.config
    }

    /// The ground-truth pose at frame `t` of the given sequence: a smooth
    /// walking motion with sequence-specific phase and amplitude.
    fn ground_truth_pose(&self, set: InputSet, index: usize, t: usize) -> [f64; POSE_DIMENSIONS] {
        let set_tag = match set {
            InputSet::Training => 1u64,
            InputSet::Production => 2u64,
        };
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(set_tag << 48)
                .wrapping_add(index as u64),
        );
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let stride: f64 = rng.gen_range(0.05..0.15);
        let amplitude: f64 = rng.gen_range(0.5..1.5);
        let time = t as f64;
        [
            2.0 + stride * time,                                           // torso x
            1.0 + 0.1 * (time * 0.7 + phase).sin(),                        // torso y (bob)
            2.0 + stride * time,                                           // head x
            2.6 + 0.1 * (time * 0.7 + phase).sin(),                        // head y
            amplitude * (time * 0.6 + phase).sin(),                        // left arm angle
            amplitude * (time * 0.6 + phase + std::f64::consts::PI).sin(), // right arm angle
            amplitude * (time * 0.6 + phase + std::f64::consts::PI).sin(), // left leg angle
            amplitude * (time * 0.6 + phase).sin(),                        // right leg angle
        ]
    }

    fn frame_count(&self, set: InputSet) -> usize {
        match set {
            InputSet::Training => self.config.training_frames,
            InputSet::Production => self.config.production_frames,
        }
    }

    /// Generates the per-camera observations for frame `t`.
    fn observe(
        &self,
        truth: &[f64; POSE_DIMENSIONS],
        rng: &mut StdRng,
    ) -> [[f64; POSE_DIMENSIONS]; CAMERA_COUNT] {
        let mut observations = [[0.0; POSE_DIMENSIONS]; CAMERA_COUNT];
        for camera in observations.iter_mut() {
            for (slot, &value) in camera.iter_mut().zip(truth.iter()) {
                *slot = value + gaussian(rng) * self.config.observation_noise;
            }
        }
        observations
    }

    /// Runs the annealed particle filter over one sequence, returning the
    /// estimated pose vectors (one per frame) and the work performed.
    pub fn track(
        &self,
        set: InputSet,
        index: usize,
        layers: u32,
        particles: u32,
    ) -> (Vec<[f64; POSE_DIMENSIONS]>, f64) {
        let frames = self.frame_count(set);
        let particles = particles.max(1) as usize;
        let layers = layers.max(1);

        // The observation stream is independent of the knob settings: the
        // same noisy measurements are fed to every configuration.
        let mut observation_rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xD1B5_4A32_D192_ED03)
                .wrapping_add(index as u64)
                .wrapping_add(match set {
                    InputSet::Training => 0x10,
                    InputSet::Production => 0x20,
                }),
        );
        // The filter's own randomness depends on the particle count so that
        // different settings explore genuinely different particle sets.
        let mut filter_rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x94D0_49BB_1331_11EB)
                .wrapping_add((particles as u64) << 20)
                .wrapping_add(layers as u64),
        );

        let initial_truth = self.ground_truth_pose(set, index, 0);
        let mut particle_states: Vec<[f64; POSE_DIMENSIONS]> = (0..particles)
            .map(|_| {
                let mut p = initial_truth;
                for value in p.iter_mut() {
                    *value += gaussian(&mut filter_rng) * 0.2;
                }
                p
            })
            .collect();

        let mut estimates = Vec::with_capacity(frames);
        let mut work = 0.0;

        for t in 0..frames {
            let truth = self.ground_truth_pose(set, index, t);
            let observations = self.observe(&truth, &mut observation_rng);

            // Prediction: diffuse the particles.
            for particle in &mut particle_states {
                for value in particle.iter_mut() {
                    *value += gaussian(&mut filter_rng) * 0.15;
                }
            }

            // Annealing layers: progressively sharper likelihoods with
            // progressively smaller diffusion.
            for layer in 0..layers {
                let beta = (layer + 1) as f64 / layers as f64;
                let mut weights = Vec::with_capacity(particle_states.len());
                for particle in &particle_states {
                    let mut error = 0.0;
                    for camera in &observations {
                        for (p, o) in particle.iter().zip(camera.iter()) {
                            error += (p - o).powi(2);
                        }
                    }
                    work += (CAMERA_COUNT * POSE_DIMENSIONS) as f64;
                    weights.push(
                        (-beta * error / (2.0 * self.config.observation_noise.powi(2))).exp(),
                    );
                }
                let total: f64 = weights.iter().sum();
                if total <= f64::MIN_POSITIVE {
                    // Degenerate weights: keep the particles as they are.
                    continue;
                }

                // Systematic resampling.
                let mut resampled = Vec::with_capacity(particle_states.len());
                let step = total / particle_states.len() as f64;
                let mut target = filter_rng.gen_range(0.0..step);
                let mut cumulative = 0.0;
                let mut source = 0usize;
                for _ in 0..particle_states.len() {
                    while cumulative + weights[source] < target
                        && source + 1 < particle_states.len()
                    {
                        cumulative += weights[source];
                        source += 1;
                    }
                    resampled.push(particle_states[source]);
                    target += step;
                }
                particle_states = resampled;

                // Layer-dependent jitter keeps diversity while annealing.
                let jitter = 0.1 * (1.0 - beta) + 0.02;
                for particle in &mut particle_states {
                    for value in particle.iter_mut() {
                        *value += gaussian(&mut filter_rng) * jitter;
                    }
                }
            }

            // The frame's estimate is the particle mean.
            let mut estimate = [0.0; POSE_DIMENSIONS];
            for particle in &particle_states {
                for (slot, value) in estimate.iter_mut().zip(particle.iter()) {
                    *slot += value;
                }
            }
            for slot in estimate.iter_mut() {
                *slot /= particle_states.len() as f64;
            }
            estimates.push(estimate);
            let _ = t;
        }

        (estimates, work)
    }

    /// Mean absolute tracking error against the ground truth (used by tests
    /// and the calibration sanity checks; the paper's QoS metric compares
    /// against the baseline configuration instead).
    pub fn tracking_error(
        &self,
        set: InputSet,
        index: usize,
        estimates: &[[f64; POSE_DIMENSIONS]],
    ) -> f64 {
        let mut error = 0.0;
        let mut count = 0usize;
        for (t, estimate) in estimates.iter().enumerate() {
            let truth = self.ground_truth_pose(set, index, t);
            for (e, g) in estimate.iter().zip(truth.iter()) {
                error += (e - g).abs();
                count += 1;
            }
        }
        error / count as f64
    }
}

/// Draws one standard normal variate via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let value = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if value.is_finite() {
            return value;
        }
    }
}

impl KnobbedApplication for BodytrackApp {
    fn name(&self) -> &str {
        "bodytrack"
    }

    fn parameter_space(&self) -> ParameterSpace {
        let default_of = |values: &[f64]| *values.last().expect("knob ranges are non-empty");
        ParameterSpace::builder()
            .parameter(
                ConfigParameter::new(
                    LAYERS_KNOB,
                    self.config.layer_values.clone(),
                    default_of(&self.config.layer_values),
                )
                .expect("layer values are valid"),
            )
            .parameter(
                ConfigParameter::new(
                    PARTICLES_KNOB,
                    self.config.particle_values.clone(),
                    default_of(&self.config.particle_values),
                )
                .expect("particle values are valid"),
            )
            .build()
            .expect("the space has two distinct parameters")
    }

    fn qos_comparator(&self) -> Box<dyn QosComparator> {
        Box::new(MagnitudeWeightedDistortion::new())
    }

    fn input_count(&self, set: InputSet) -> usize {
        // One camera sequence per set, as in the paper (Table 1), but the
        // production sequence is longer.
        match set {
            InputSet::Training => 2,
            InputSet::Production => 2,
        }
    }

    fn run_input(&self, set: InputSet, index: usize, setting: &ParameterSetting) -> WorkUnitResult {
        assert!(
            index < self.input_count(set),
            "sequence index {index} out of range for the {set} set"
        );
        let layers = setting.value(LAYERS_KNOB).expect("setting assigns layers") as u32;
        let particles = setting
            .value(PARTICLES_KNOB)
            .expect("setting assigns particles") as u32;
        let (estimates, work) = self.track(set, index, layers, particles);
        let components: Vec<f64> = estimates
            .iter()
            .flat_map(|pose| pose.iter().copied())
            .collect();
        WorkUnitResult {
            work,
            output: OutputAbstraction::from_components(components),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> BodytrackApp {
        BodytrackApp::test_scale(23)
    }

    #[test]
    fn configuration_presets_are_valid() {
        let tiny = tiny_app();
        assert_eq!(tiny.parameter_space().setting_count(), 9);
        assert_eq!(tiny.name(), "bodytrack");
        let paper = BodytrackApp::parsec_scale(0);
        assert_eq!(paper.parameter_space().setting_count(), 25);
        assert_eq!(paper.config().particle_values.last(), Some(&4000.0));
        assert_eq!(paper.input_count(InputSet::Training), 2);
    }

    #[test]
    fn work_scales_with_particles_and_layers() {
        let app = tiny_app();
        let (_, work_small) = app.track(InputSet::Training, 0, 1, 50);
        let (_, work_large) = app.track(InputSet::Training, 0, 5, 800);
        assert!(
            work_large > 10.0 * work_small,
            "work {work_large} should dwarf {work_small}"
        );
    }

    #[test]
    fn more_particles_track_more_accurately() {
        let app = tiny_app();
        let (cheap, _) = app.track(InputSet::Training, 0, 1, 50);
        let (expensive, _) = app.track(InputSet::Training, 0, 5, 800);
        let cheap_error = app.tracking_error(InputSet::Training, 0, &cheap);
        let expensive_error = app.tracking_error(InputSet::Training, 0, &expensive);
        assert!(
            expensive_error < cheap_error,
            "default-setting error {expensive_error} should beat cheap error {cheap_error}"
        );
        // The default configuration tracks the body reasonably well.
        assert!(
            expensive_error < 0.3,
            "error {expensive_error} should be small"
        );
    }

    #[test]
    fn tracking_is_deterministic() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        let a = app.run_input(InputSet::Production, 0, &setting);
        let b = app.run_input(InputSet::Production, 0, &setting);
        assert_eq!(a, b);
    }

    #[test]
    fn output_abstraction_covers_every_frame() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        let result = app.run_input(InputSet::Training, 0, &setting);
        assert_eq!(
            result.output.len(),
            app.config().training_frames * POSE_DIMENSIONS
        );
    }

    #[test]
    fn qos_comparator_penalizes_sloppy_tracking() {
        let app = tiny_app();
        let space = app.parameter_space();
        let baseline = app.run_input(InputSet::Training, 0, &space.default_setting());
        let cheap = app.run_input(InputSet::Training, 0, &space.setting(0).unwrap());
        let comparator = app.qos_comparator();
        let loss = comparator
            .qos_loss(&baseline.output, &cheap.output)
            .unwrap();
        assert!(loss.value() > 0.0);
        let self_loss = comparator
            .qos_loss(&baseline.output, &baseline.output)
            .unwrap();
        assert_eq!(self_loss.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sequence_panics() {
        let app = tiny_app();
        let setting = app.parameter_space().default_setting();
        app.run_input(InputSet::Training, 5, &setting);
    }

    #[test]
    fn ground_truth_is_smooth() {
        let app = tiny_app();
        let a = app.ground_truth_pose(InputSet::Training, 0, 3);
        let b = app.ground_truth_pose(InputSet::Training, 0, 4);
        let jump: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            jump < 2.0,
            "consecutive poses should differ smoothly, got {jump}"
        );
    }
}
