//! Benchmarks of the offline PowerDial pipeline: influence tracing,
//! control-variable analysis, calibration, and Pareto filtering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use powerdial::apps::{KnobbedApplication, SearchApp, SwaptionsApp};
use powerdial::influence::{ControlVariableAnalysis, ParamId};
use powerdial::knobs::pareto_frontier;
use powerdial::{PowerDialConfig, PowerDialSystem};

fn bench_full_pipeline(c: &mut Criterion) {
    let app = SwaptionsApp::test_scale(2011);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("swaptions_build_system", |b| {
        b.iter(|| {
            let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
            black_box(system.knob_table().max_speedup())
        })
    });
    let search = SearchApp::test_scale(2011);
    group.bench_function("search_build_system", |b| {
        b.iter(|| {
            let system = PowerDialSystem::build(&search, PowerDialConfig::default()).unwrap();
            black_box(system.knob_table().max_speedup())
        })
    });
    group.finish();
}

fn bench_influence_analysis(c: &mut Criterion) {
    let app = SwaptionsApp::test_scale(7);
    let space = app.parameter_space();
    let traces: Vec<_> = space.settings().map(|s| app.trace_run(&s)).collect();
    let analysis = ControlVariableAnalysis::new([ParamId::new(0)]);
    c.bench_function("control_variable_analysis", |b| {
        b.iter(|| black_box(analysis.analyze(black_box(&traces)).unwrap()))
    });
}

fn bench_pareto_frontier(c: &mut Criterion) {
    let app = SwaptionsApp::test_scale(3);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let points = system.calibration().points().to_vec();
    c.bench_function("pareto_frontier", |b| {
        b.iter(|| black_box(pareto_frontier(black_box(&points))))
    });
}

/// Criterion configuration keeping the whole suite fast: short warm-up and
/// measurement windows are plenty for the nanosecond-to-millisecond
/// operations measured here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets =
    bench_full_pipeline,
    bench_influence_analysis,
    bench_pareto_frontier

}
criterion_main!(benches);
