//! Benchmarks and ablation of the actuation policies (Section 2.3.3): the
//! planning cost of race-to-idle versus minimal-speedup, the expected QoS
//! loss of each policy, and the effect of the time-quantum length.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use powerdial::control::{ActuationPolicy, Actuator};
use powerdial::knobs::{Calibrator, ConfigParameter, KnobTable, Measurement, ParameterSpace};
use powerdial::qos::{OutputAbstraction, QosLossBound};

fn knob_table(settings: usize) -> KnobTable {
    let values: Vec<f64> = (1..=settings).map(|i| (i * 100) as f64).collect();
    let default = *values.last().unwrap();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", values, default).unwrap())
        .build()
        .unwrap();
    let mut calibrator = Calibrator::new(&space);
    for (i, setting) in space.settings().enumerate() {
        let k = setting.value("k").unwrap();
        calibrator
            .record(Measurement {
                setting_index: i,
                input_index: 0,
                work: k,
                output: OutputAbstraction::from_components([1.0 + (default - k) * 1e-5]),
            })
            .unwrap();
    }
    calibrator
        .build()
        .unwrap()
        .knob_table(QosLossBound::UNBOUNDED)
        .unwrap()
}

fn bench_plan_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("actuator_plan");
    for settings in [4usize, 16, 64] {
        let table = knob_table(settings);
        for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
            let actuator = Actuator::new(policy);
            group.bench_with_input(
                BenchmarkId::new(format!("{policy}"), settings),
                &settings,
                |b, _| {
                    b.iter(|| {
                        let schedule = actuator.plan(&table, black_box(1.7));
                        black_box(schedule.achieved_speedup)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_policy_qos_ablation(c: &mut Criterion) {
    // Ablation (reported via benchmark labels): the QoS loss the two policies
    // pay for the same requested speedup.
    let table = knob_table(8);
    let minimal = Actuator::new(ActuationPolicy::MinimalSpeedup).plan(&table, 2.5);
    let race = Actuator::new(ActuationPolicy::RaceToIdle).plan(&table, 2.5);
    println!(
        "ablation: requested speedup 2.5 -> expected QoS loss {:.5} (minimal-speedup) vs {:.5} (race-to-idle)",
        minimal.expected_qos_loss(),
        race.expected_qos_loss()
    );

    let mut group = c.benchmark_group("actuator_quantum_expansion");
    for quantum in [5u32, 20, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(quantum), &quantum, |b, &q| {
            b.iter(|| black_box(minimal.beats_per_segment(black_box(q))))
        });
    }
    group.finish();
}

/// Criterion configuration keeping the whole suite fast: short warm-up and
/// measurement windows are plenty for the nanosecond-to-millisecond
/// operations measured here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_plan_cost, bench_policy_qos_ablation
}
criterion_main!(benches);
