//! Benchmarks of the full heartbeat→controller→actuator hot path and of the
//! sliding-window query kernels, each against its checked-in
//! pre-optimization baseline. The `*_naive` variants exist to keep the
//! speedup of the O(1), allocation-free rework visible PR over PR; the
//! acceptance bar is ≥5x on the `window_queries` pair.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use powerdial_bench::hotpath::{warmed_windows, HotPathLoop, NaiveHotPathLoop};

fn bench_full_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_loop");
    for window in [20usize, 100] {
        let mut optimized = HotPathLoop::new(8, window, window);
        group.bench_with_input(BenchmarkId::new("indexed", window), &window, |b, _| {
            b.iter(|| black_box(optimized.step()))
        });
        let mut naive = NaiveHotPathLoop::new(8, window);
        group.bench_with_input(BenchmarkId::new("naive", window), &window, |b, _| {
            b.iter(|| black_box(naive.step()))
        });
    }
    group.finish();
}

fn bench_window_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_queries");
    for window in [20usize, 256, 1024] {
        let (incremental, naive) = warmed_windows(window);
        group.bench_with_input(BenchmarkId::new("incremental", window), &window, |b, _| {
            b.iter(|| {
                (
                    black_box(incremental.statistics()),
                    black_box(incremental.rate()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", window), &window, |b, _| {
            b.iter(|| (black_box(naive.statistics()), black_box(naive.rate())))
        });
    }
    group.finish();
}

/// Short warm-up and measurement windows are plenty for these
/// nanosecond-scale operations.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_full_loop, bench_window_queries
}
criterion_main!(benches);
