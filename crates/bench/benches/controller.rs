//! Micro-benchmarks of the PowerDial control system: the per-heartbeat cost
//! of the controller and runtime. The paper reports that this overhead is
//! insignificant compared to run-to-run variation; these benches quantify it
//! (it is tens of nanoseconds to a few microseconds per heartbeat).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use powerdial::control::ztransform::analyze_closed_loop;
use powerdial::control::{ControllerConfig, HeartRateController, PowerDialRuntime, RuntimeConfig};
use powerdial::knobs::{Calibrator, ConfigParameter, Measurement, ParameterSpace};
use powerdial::qos::{OutputAbstraction, QosLossBound};

fn knob_table() -> powerdial::knobs::KnobTable {
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("k", vec![100.0, 400.0, 1000.0, 4000.0], 4000.0).unwrap())
        .build()
        .unwrap();
    let mut calibrator = Calibrator::new(&space);
    for (i, setting) in space.settings().enumerate() {
        let k = setting.value("k").unwrap();
        calibrator
            .record(Measurement {
                setting_index: i,
                input_index: 0,
                work: k,
                output: OutputAbstraction::from_components([1.0 + (4000.0 - k) * 1e-5]),
            })
            .unwrap();
    }
    calibrator
        .build()
        .unwrap()
        .knob_table(QosLossBound::UNBOUNDED)
        .unwrap()
}

fn bench_controller_update(c: &mut Criterion) {
    let config = ControllerConfig::new(30.0, 30.0).unwrap();
    let mut controller = HeartRateController::new(config);
    let mut observed = 20.0;
    c.bench_function("controller_update", |b| {
        b.iter(|| {
            let speedup = controller.update(black_box(observed));
            observed = 30.0 * 0.9 + speedup * 0.001;
            black_box(speedup)
        })
    });
}

fn bench_runtime_heartbeat(c: &mut Criterion) {
    let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap());
    let mut runtime = PowerDialRuntime::new(config, knob_table()).unwrap();
    c.bench_function("runtime_on_heartbeat", |b| {
        b.iter(|| {
            let decision = runtime.on_heartbeat(black_box(Some(20.0)));
            black_box(decision.gain)
        })
    });
}

fn bench_closed_loop_analysis(c: &mut Criterion) {
    c.bench_function("ztransform_closed_loop_analysis", |b| {
        b.iter(|| black_box(analyze_closed_loop(black_box(30.0))))
    });
}

/// Criterion configuration keeping the whole suite fast: short warm-up and
/// measurement windows are plenty for the nanosecond-to-millisecond
/// operations measured here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets =
    bench_controller_update,
    bench_runtime_heartbeat,
    bench_closed_loop_analysis

}
criterion_main!(benches);
