//! Benchmarks of the four benchmark applications themselves: the cost of one
//! work unit at the fastest knob setting versus the default setting. The
//! ratio of the two is the speedup PowerDial's knobs make available.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use powerdial::apps::{
    BodytrackApp, InputSet, KnobbedApplication, SearchApp, SwaptionsApp, VideoEncoderApp,
};

fn bench_app(c: &mut Criterion, app: &dyn KnobbedApplication) {
    let space = app.parameter_space();
    let fastest = space.setting(0).unwrap();
    let default = space.default_setting();
    let mut group = c.benchmark_group(app.name().replace("+", "plus"));
    group.sample_size(10);
    for (label, setting) in [("fastest_setting", &fastest), ("default_setting", &default)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), setting, |b, setting| {
            b.iter(|| {
                let result = app.run_input(InputSet::Training, 0, black_box(setting));
                black_box(result.work)
            })
        });
    }
    group.finish();
}

fn bench_all_applications(c: &mut Criterion) {
    bench_app(c, &SwaptionsApp::test_scale(2011));
    bench_app(c, &VideoEncoderApp::test_scale(2011));
    bench_app(c, &BodytrackApp::test_scale(2011));
    bench_app(c, &SearchApp::test_scale(2011));
}

/// Criterion configuration keeping the whole suite fast: short warm-up and
/// measurement windows are plenty for the nanosecond-to-millisecond
/// operations measured here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_all_applications
}
criterion_main!(benches);
