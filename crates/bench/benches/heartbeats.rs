//! Benchmarks of the Application Heartbeats framework: the cost of emitting a
//! heartbeat and of querying the derived rates. The heartbeat call sits on
//! the application's critical path, so it must be cheap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use powerdial::heartbeats::{HeartbeatMonitor, MonitorConfig, Timestamp};

fn bench_heartbeat_emission(c: &mut Criterion) {
    let mut group = c.benchmark_group("heartbeat_emission");
    for window in [20usize, 100, 1000] {
        let config = MonitorConfig::new("bench")
            .with_window_size(window)
            .with_history_capacity(Some(window));
        let mut monitor = HeartbeatMonitor::new(config);
        let mut now = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            b.iter(|| {
                now += 1_000_000;
                black_box(monitor.heartbeat(Timestamp::from_nanos(now)))
            })
        });
    }
    group.finish();
}

fn bench_rate_queries(c: &mut Criterion) {
    let mut monitor = HeartbeatMonitor::new(
        MonitorConfig::new("bench")
            .with_window_size(20)
            .with_history_capacity(Some(64)),
    );
    for i in 0..1000u64 {
        monitor.heartbeat(Timestamp::from_millis(i * 33));
    }
    c.bench_function("window_rate_query", |b| {
        b.iter(|| black_box(monitor.window_rate()))
    });
    c.bench_function("window_statistics_query", |b| {
        b.iter(|| black_box(monitor.window_statistics()))
    });
}

/// Criterion configuration keeping the whole suite fast: short warm-up and
/// measurement windows are plenty for the nanosecond-to-millisecond
/// operations measured here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_heartbeat_emission, bench_rate_queries
}
criterion_main!(benches);
