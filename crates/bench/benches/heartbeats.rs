//! Benchmarks of the Application Heartbeats framework: the cost of emitting a
//! heartbeat and of querying the derived rates. The heartbeat call sits on
//! the application's critical path, so it must be cheap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use powerdial::heartbeats::{HeartbeatMonitor, MonitorConfig, Timestamp};

fn bench_heartbeat_emission(c: &mut Criterion) {
    let mut group = c.benchmark_group("heartbeat_emission");
    for window in [20usize, 100, 1000] {
        let config = MonitorConfig::new("bench")
            .with_window_size(window)
            .with_history_capacity(Some(window));
        let mut monitor = HeartbeatMonitor::new(config);
        let mut now = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            b.iter(|| {
                now += 1_000_000;
                black_box(monitor.heartbeat(Timestamp::from_nanos(now)))
            })
        });
    }
    group.finish();
}

fn bench_rate_queries(c: &mut Criterion) {
    let mut monitor = HeartbeatMonitor::new(
        MonitorConfig::new("bench")
            .with_window_size(20)
            .with_history_capacity(Some(64)),
    );
    for i in 0..1000u64 {
        monitor.heartbeat(Timestamp::from_millis(i * 33));
    }
    c.bench_function("window_rate_query", |b| {
        b.iter(|| black_box(monitor.window_rate()))
    });
    c.bench_function("window_statistics_query", |b| {
        b.iter(|| black_box(monitor.window_statistics()))
    });
}

/// The decision-block half of the shm control plane (ABI v2): publishing
/// a decision under the seqlock on the daemon side, and reading it back
/// wait-free on the application side. The read sits on the application's
/// knob-actuation path, so it must stay in the same cost class as a beat.
fn bench_decision_block(c: &mut Criterion) {
    use powerdial::heartbeats::shm::{DecisionRead, Segment, SegmentGeometry, ShmDecision};

    let segment = Segment::create(SegmentGeometry::for_beat_samples(256).unwrap()).unwrap();
    let mut counter = 0u64;
    c.bench_function("decision_publish_seqlock", |b| {
        b.iter(|| {
            counter += 1;
            segment.header().publish_decision(ShmDecision {
                point_idx: counter as u32,
                gain_bits: counter,
                achieved_speedup_bits: counter,
                qos_loss_bits: counter,
            });
        })
    });
    c.bench_function("decision_read_seqlock", |b| {
        b.iter(|| match segment.header().read_decision() {
            DecisionRead::Ready(decision) => black_box(decision.gain_bits),
            _ => unreachable!("quiesced block always reads Ready"),
        })
    });
}

/// Criterion configuration keeping the whole suite fast: short warm-up and
/// measurement windows are plenty for the nanosecond-to-millisecond
/// operations measured here.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_heartbeat_emission, bench_rate_queries, bench_decision_block
}
criterion_main!(benches);
