//! End-to-end pin for the telemetry snapshot document.
//!
//! Runs a real multi-app daemon loop, takes a
//! `PowerDialDaemon::telemetry_snapshot`, and pushes the rendered JSON
//! back through the bench crate's strict JSON parser — the same parser
//! the perf gate trusts. This is the contract the snapshot promises:
//! hand-rolled rendering (serde is a no-op stub here) that nonetheless
//! parses under a strict grammar, with per-app quantiles and *exact*
//! fleet rollups (bucket-wise histogram merges, never averaged
//! percentiles).

use std::sync::Arc;

use powerdial::control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial::control::{ControllerConfig, RuntimeConfig};
use powerdial::heartbeats::channel::BeatSample;
use powerdial::heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial::heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial_bench::gate::Json;
use powerdial_bench::hotpath::synthetic_knob_table;
use powerdial_bench::multiapp::{DaemonMultiAppLoop, BEATS_PER_QUANTUM};

/// Pulls `key` as a number out of an object, failing loudly.
fn num(value: &Json, key: &str) -> f64 {
    value
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {key:?}"))
}

#[test]
fn snapshot_json_round_trips_through_the_strict_parser() {
    let apps = 8usize;
    let quanta = 40u64;
    let mut bench = DaemonMultiAppLoop::new(apps, 2);
    for _ in 0..quanta {
        bench.step();
    }
    let snapshot = bench.telemetry_snapshot();
    let json = snapshot.to_json();
    let document = Json::parse(&json).expect("snapshot JSON must satisfy the strict grammar");

    assert_eq!(num(&document, "version"), 1.0);
    assert_eq!(
        document.get("snapshot").and_then(Json::as_str),
        Some("powerdial-telemetry")
    );
    assert_eq!(num(&document, "ticks"), quanta as f64);
    assert_eq!(num(&document, "apps_registered"), apps as f64);

    let reports = document
        .get("apps")
        .and_then(Json::as_array)
        .expect("apps array");
    assert_eq!(reports.len(), apps);
    let mut fleet_count = 0.0;
    for report in reports {
        let beats = num(report, "beats");
        assert!(beats > 0.0, "every app beat every quantum");
        let latency = report.get("beat_latency_ns").expect("latency histogram");
        let (count, min, max) = (
            num(latency, "count"),
            num(latency, "min"),
            num(latency, "max"),
        );
        let (p50, p95, p99) = (
            num(latency, "p50"),
            num(latency, "p95"),
            num(latency, "p99"),
        );
        // Tag-0 beats carry no latency, so one beat per app is excluded.
        assert_eq!(count, beats - 1.0);
        assert!(min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= max);
        let mean = num(latency, "mean");
        assert!(mean >= min && mean <= max);
        // QoS loss is recorded once per quantum.
        let qos = report.get("qos_loss_ppm").expect("qos histogram");
        assert_eq!(num(qos, "count"), quanta as f64);
        fleet_count += count;
    }

    // The fleet rollup is the exact bucket-wise merge: its count is the
    // sum of the per-app counts, and its extrema bound every app's.
    let fleet = document
        .get("fleet")
        .and_then(|fleet| fleet.get("beat_latency_ns"))
        .expect("fleet latency rollup");
    assert_eq!(num(fleet, "count"), fleet_count);
    assert_eq!(
        fleet_count,
        (apps as u64 * quanta * BEATS_PER_QUANTUM as u64 - apps as u64) as f64,
        "fleet counts every non-tag-0 beat"
    );
    assert!(num(fleet, "p50") <= num(fleet, "p99"));

    // The decision trace carries boundary decisions with valid reasons.
    let trace = document
        .get("decision_trace")
        .and_then(Json::as_array)
        .expect("decision trace");
    assert!(!trace.is_empty(), "40 quanta must leave trace records");
    let mut last_timestamp = 0.0;
    for record in trace {
        let reason = record.get("reason").and_then(Json::as_str).expect("reason");
        assert!(
            matches!(reason, "boundary" | "warm_start" | "safe_reset"),
            "unknown trace reason {reason:?}"
        );
        let timestamp = num(record, "timestamp_ns");
        assert!(timestamp >= last_timestamp, "trace is timestamp-ordered");
        last_timestamp = timestamp;
        assert!(num(record, "gain") >= 1.0);
    }
}

/// The chaos suites prove the control plane survives SIGKILL; this is
/// the telemetry plane's version of that promise, run in-process (the
/// snapshot has no cross-process export transport yet): after a
/// producer dies mid-skip and is reaped, the snapshot must still render
/// strict JSON, drop the reaped app from the reports, and carry its
/// `safe_reset` trace record as the tombstone.
#[test]
fn snapshot_stays_sane_after_producer_sigkill_and_reap() {
    use std::sync::atomic::Ordering;

    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: 64,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 4,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .unwrap();
    let runtime = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
        .with_quantum_heartbeats(20)
        .unwrap();
    let geometry = SegmentGeometry::for_beat_samples(64).unwrap();
    let mut segments = Vec::new();
    let mut producers = Vec::new();
    let mut views = Vec::new();
    for _ in 0..2 {
        let segment = Arc::new(Segment::create(geometry).unwrap());
        producers.push(ShmProducer::attach(Arc::clone(&segment)).unwrap());
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        views.push(
            daemon
                .register_shm(runtime, synthetic_knob_table(4), consumer)
                .unwrap(),
        );
        segments.push(segment);
    }

    // A few healthy quanta so both apps accumulate telemetry.
    let mut tags = [0u64; 2];
    let mut clocks = [Timestamp::ZERO; 2];
    for _ in 0..3 {
        for (index, producer) in producers.iter_mut().enumerate() {
            for _ in 0..20 {
                let latency = if tags[index] == 0 {
                    TimestampDelta::ZERO
                } else {
                    TimestampDelta::from_millis(40)
                };
                clocks[index] += TimestampDelta::from_millis(40);
                producer
                    .try_push(BeatSample {
                        tag: HeartbeatTag(tags[index]),
                        timestamp: clocks[index],
                        latency,
                    })
                    .unwrap();
                tags[index] += 1;
            }
        }
        daemon.tick();
    }

    // App 0's producer is SIGKILLed with two beats still in the ring.
    for _ in 0..2 {
        clocks[0] += TimestampDelta::from_millis(40);
        producers[0]
            .try_push(BeatSample {
                tag: HeartbeatTag(tags[0]),
                timestamp: clocks[0],
                latency: TimestampDelta::from_millis(40),
            })
            .unwrap();
        tags[0] += 1;
    }
    segments[0]
        .header()
        .producer_pid
        .store(0x7FFF_FF00, Ordering::Release);

    // Reap protocol: probe (wakes the slot), drain the tail, collect.
    assert!(daemon.reap_dead().is_empty());
    daemon.tick();
    assert_eq!(daemon.reap_dead().len(), 1);

    let snapshot = daemon.telemetry_snapshot();
    let document = Json::parse(&snapshot.to_json())
        .expect("post-SIGKILL snapshot must still render strict JSON");
    assert_eq!(
        document.get("apps_registered").and_then(Json::as_f64),
        Some(1.0),
        "the reaped app must leave the report"
    );
    let trace = document
        .get("decision_trace")
        .and_then(Json::as_array)
        .expect("decision trace");
    assert!(
        trace
            .iter()
            .any(|record| { record.get("reason").and_then(Json::as_str) == Some("safe_reset") }),
        "the reaped app must leave a safe_reset tombstone in the trace"
    );
    // The surviving app's report is intact.
    assert!(views[1].beats_processed() > 0);
}

#[test]
fn telemetry_off_snapshot_is_empty_but_valid() {
    let mut bench = DaemonMultiAppLoop::with_telemetry(4, 0, false);
    for _ in 0..10 {
        bench.step();
    }
    let snapshot = bench.telemetry_snapshot();
    assert!(snapshot.apps.is_empty());
    assert!(snapshot.trace.is_empty());
    // Tick/beat counters live on the daemon, not the telemetry plane.
    assert_eq!(snapshot.ticks, 10);
    assert!(snapshot.total_beats > 0);
    let document =
        Json::parse(&snapshot.to_json()).expect("empty snapshot still renders strict JSON");
    assert_eq!(num(&document, "apps_registered"), 0.0);
}
