//! Regression pin for the N = 1 daemon path.
//!
//! A single app through the threaded daemon used to cost a cross-thread
//! command/ack round trip per tick, landing at ~0.24x the serial mutex
//! baseline. Inline placement (`DaemonConfig::inline_apps`) removes the
//! round trip, so N = 1 must stay near parity with the baseline. This test
//! enforces a 0.7x floor — deliberately below the benchmark's 0.9x target
//! so shared-CI timing noise cannot flake it, while the regression it
//! pins (a 4x cliff) stays unmistakable.
//!
//! Only meaningful with optimizations on; the debug build skips.

use std::time::Instant;

use powerdial_bench::multiapp::{DaemonMultiAppLoop, NaiveMultiAppLoop};

/// Parity floor for `naive_ns_per_beat / daemon_ns_per_beat` at N = 1.
const SPEEDUP_FLOOR: f64 = 0.7;

/// Beats measured per side: enough quanta (~2500) to amortize jitter
/// while keeping the test in CI-friendly time.
const MEASURE_BEATS: u64 = 50_000;

const WARM_QUANTA: u64 = 50;

fn measure(mut step: impl FnMut() -> u64) -> f64 {
    let start = Instant::now();
    let mut beats = 0u64;
    while beats < MEASURE_BEATS {
        beats += step();
    }
    start.elapsed().as_nanos() as f64 / beats as f64
}

#[test]
fn n1_daemon_keeps_pace_with_the_serial_baseline() {
    if cfg!(debug_assertions) {
        eprintln!("skipped: timing assertion needs a release build");
        return;
    }
    // The worst historical configuration: a full worker pool serving one
    // app. Inline placement must keep that app off the workers entirely.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);

    let mut fast = DaemonMultiAppLoop::new(1, workers);
    for _ in 0..WARM_QUANTA {
        fast.step();
    }
    let daemon_ns = measure(|| fast.step());

    let mut slow = NaiveMultiAppLoop::new(1);
    for _ in 0..WARM_QUANTA {
        slow.step();
    }
    let naive_ns = measure(|| slow.step());

    let speedup = naive_ns / daemon_ns;
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "N=1 regression: daemon {daemon_ns:.1} ns/beat vs naive {naive_ns:.1} ns/beat \
         ({speedup:.2}x, floor {SPEEDUP_FLOOR}x)"
    );
}
