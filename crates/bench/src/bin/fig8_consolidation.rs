//! Regenerates Figure 8: power consumption of the original and consolidated
//! systems, and the QoS loss the consolidated system pays, as a function of
//! system utilization.
//!
//! Run with `cargo run -p powerdial-bench --bin fig8_consolidation [--quick|--paper]`.

use powerdial::experiments::{
    consolidation_study, consolidation_study_live, LiveConsolidationOptions,
};
use powerdial_bench::{benchmark_suite, fmt, print_table, Scale};

fn main() {
    let scale = Scale::from_environment();
    println!("PowerDial reproduction — Figure 8 (scale: {scale:?})");
    println!("Paper expectation: the PARSEC benchmarks consolidate 4 machines to 1 (75% fewer),");
    println!("saving ~400W (~66%) at 25% utilization and ~75% power at peak load; swish++");
    println!("consolidates 3 machines to 2, saving ~25% power, with QoS loss bounded by the");
    println!("provisioning bound (5% PARSEC, 30% swish++).");

    for case in benchmark_suite(scale) {
        let system = case.build_system();
        let study = consolidation_study(
            &system,
            case.original_machines,
            case.consolidation_bound(),
            21,
        )
        .expect("consolidation study always succeeds for the benchmark suite");

        let rows: Vec<Vec<String>> = study
            .points
            .iter()
            .map(|p| {
                vec![
                    fmt(p.utilization, 2),
                    fmt(p.original_power_watts, 1),
                    fmt(p.consolidated_power_watts, 1),
                    fmt(p.original_power_watts - p.consolidated_power_watts, 1),
                    fmt(p.qos_loss_percent, 3),
                ]
            })
            .collect();

        print_table(
            &format!(
                "Figure 8 ({}) — {} machines consolidated to {} (bound {:.0}%, speedup {:.2}x)",
                case.name(),
                study.original_machines,
                study.consolidated_machines,
                study.qos_bound_percent,
                study.provisioning_speedup
            ),
            &[
                "utilization",
                "original W",
                "consolidated W",
                "savings W",
                "qos loss %",
            ],
            &rows,
        );

        println!(
            "savings at 25% utilization: {:.0} W; peak-load power reduction: {:.0}%; max QoS loss: {:.2}%",
            study.savings_at(0.25).unwrap_or(0.0),
            study.peak_load_power_savings() * 100.0,
            study.max_qos_loss_percent()
        );

        // The same sweep through the live stack: heartbeat registry →
        // SPSC channels → sharded daemon, one controller per machine.
        let live = consolidation_study_live(
            &system,
            case.original_machines,
            case.consolidation_bound(),
            21,
            LiveConsolidationOptions {
                workers: std::thread::available_parallelism()
                    .map(|n| n.get().min(4))
                    .unwrap_or(1),
                ..LiveConsolidationOptions::default()
            },
        )
        .expect("live consolidation study always succeeds for the benchmark suite");
        println!(
            "live daemon sweep:          {:.0} W at 25% utilization; peak-load reduction {:.0}%; max QoS loss {:.2}% (matches analytic within convergence wobble)",
            live.savings_at(0.25).unwrap_or(0.0),
            live.peak_load_power_savings() * 100.0,
            live.max_qos_loss_percent()
        );
    }
}
