//! Evaluates the Section 3 analytical models (Equations 12–24) on the
//! paper-platform parameters: DVFS energy with and without dynamic knobs, and
//! server-consolidation provisioning.
//!
//! Run with `cargo run -p powerdial-bench --bin analytic_models`.

use powerdial::analytic::consolidation::ConsolidationModel;
use powerdial::analytic::dvfs::DvfsScenario;
use powerdial_bench::{fmt, print_table};

fn main() {
    println!("PowerDial reproduction — Section 3 analytical models");

    // DVFS + dynamic knobs energy (Figure 3 / 4 parameters: the evaluation
    // server at full load and idle, a 60 s task with a 30 s slack window).
    let scenario = DvfsScenario::new(220.0, 165.0, 90.0, 60.0, 30.0)
        .expect("the paper-platform scenario is valid");
    let mut rows = Vec::new();
    for speedup in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0] {
        let breakdown = scenario
            .with_knobs(speedup)
            .expect("speedups of at least 1 are valid");
        rows.push(vec![
            fmt(speedup, 1),
            fmt(breakdown.race_to_idle_energy, 0),
            fmt(breakdown.dvfs_energy, 0),
            fmt(breakdown.elastic_race_to_idle_energy, 0),
            fmt(breakdown.elastic_dvfs_energy, 0),
            fmt(breakdown.elastic_energy, 0),
            fmt(breakdown.savings, 0),
        ]);
    }
    print_table(
        "Equations 12-19: task energy (J) vs available knob speedup S(QoS)",
        &[
            "S(QoS)",
            "race-to-idle",
            "dvfs",
            "knobs+race",
            "knobs+dvfs",
            "elastic best",
            "savings",
        ],
        &rows,
    );

    // Server consolidation (Equations 20-24) for the paper's two cluster
    // sizes at typical data-center utilization.
    let mut rows = Vec::new();
    for (label, machines, utilization, speedup) in [
        ("PARSEC-style", 4usize, 0.25, 4.0),
        ("PARSEC-style", 4, 0.25, 6.0),
        ("swish++-style", 3, 0.20, 1.5),
    ] {
        let model = ConsolidationModel::new(machines, 1.0, utilization, 220.0, 90.0)
            .expect("the paper-platform parameters are valid");
        let plan = model.consolidate(speedup);
        rows.push(vec![
            label.to_string(),
            machines.to_string(),
            fmt(speedup, 1),
            plan.consolidated_machines.to_string(),
            fmt(plan.original_power_watts, 0),
            fmt(plan.consolidated_power_watts, 0),
            fmt(plan.power_savings_watts, 0),
            fmt(plan.relative_savings() * 100.0, 1),
        ]);
    }
    print_table(
        "Equations 20-24: consolidation provisioning and average power",
        &[
            "scenario",
            "N_orig",
            "S(QoS)",
            "N_new",
            "P_orig W",
            "P_new W",
            "savings W",
            "savings %",
        ],
        &rows,
    );
}
