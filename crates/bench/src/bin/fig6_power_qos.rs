//! Regenerates Figure 6: mean power and QoS loss as a function of the
//! processor frequency while PowerDial holds the application at its baseline
//! performance.
//!
//! Run with `cargo run -p powerdial-bench --bin fig6_power_qos [--quick|--paper]`.

use powerdial::experiments::frequency_sweep;
use powerdial_bench::{benchmark_suite, fmt, print_table, simulation_options, Scale};

fn main() {
    let scale = Scale::from_environment();
    let options = simulation_options(scale);
    println!("PowerDial reproduction — Figure 6 (scale: {scale:?})");
    println!("Paper expectation: 16-21% system power reduction at the lowest frequency for");
    println!("small QoS losses (<0.5% x264, <2.3% bodytrack, <0.05% swaptions, <32% swish++),");
    println!("with performance held within ~5% of the target at every frequency.");

    for case in benchmark_suite(scale) {
        let system = case.build_system();
        let points = frequency_sweep(case.app.as_ref(), &system, options)
            .expect("frequency sweep always succeeds for the benchmark suite");

        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    fmt(p.frequency_ghz, 2),
                    fmt(p.mean_power_watts, 1),
                    fmt(p.mean_qos_loss_percent, 3),
                    fmt(p.tail_normalized_performance, 3),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 6 ({}) — power and QoS loss vs frequency",
                case.name()
            ),
            &[
                "frequency GHz",
                "mean power W",
                "qos loss %",
                "normalized perf",
            ],
            &rows,
        );
        if let (Some(first), Some(last)) = (points.first(), points.last()) {
            let reduction =
                100.0 * (first.mean_power_watts - last.mean_power_watts) / first.mean_power_watts;
            println!(
                "power reduction at {:.2} GHz: {:.1}% for {:.3}% QoS loss",
                last.frequency_ghz, reduction, last.mean_qos_loss_percent
            );
        }
    }
}
