//! Regenerates Table 2: correlation of training-observed speedup and QoS loss
//! with production-measured values, per benchmark.
//!
//! Run with `cargo run -p powerdial-bench --bin table2_correlation [--quick|--paper]`.

use powerdial::experiments::tradeoff_analysis;
use powerdial_bench::{benchmark_suite, fmt, print_table, Scale};

fn main() {
    let scale = Scale::from_environment();
    println!("PowerDial reproduction — Table 2 (scale: {scale:?})");

    // Paper Table 2 values for reference.
    let paper: &[(&str, f64, f64)] = &[
        ("x264", 0.995, 0.975),
        ("bodytrack", 0.999, 0.839),
        ("swaptions", 1.000, 0.999),
        ("swish++", 0.996, 0.999),
    ];

    let mut rows = Vec::new();
    for case in benchmark_suite(scale) {
        let system = case.build_system();
        let analysis = tradeoff_analysis(case.app.as_ref(), &system)
            .expect("trade-off analysis always succeeds for the benchmark suite");
        let (paper_speedup, paper_qos) = paper
            .iter()
            .find(|(name, _, _)| *name == case.name())
            .map(|(_, s, q)| (*s, *q))
            .unwrap_or((f64::NAN, f64::NAN));
        rows.push(vec![
            case.name().to_string(),
            analysis
                .speedup_correlation
                .map(|c| fmt(c, 3))
                .unwrap_or_else(|| "n/a".to_string()),
            analysis
                .qos_correlation
                .map(|c| fmt(c, 3))
                .unwrap_or_else(|| "n/a".to_string()),
            fmt(paper_speedup, 3),
            fmt(paper_qos, 3),
        ]);
    }

    print_table(
        "Table 2: correlation of training vs production behaviour (Pareto-optimal settings)",
        &[
            "benchmark",
            "speedup corr (here)",
            "qos corr (here)",
            "speedup corr (paper)",
            "qos corr (paper)",
        ],
        &rows,
    );
    println!(
        "\nA correlation near 1 means behaviour on training inputs predicts production inputs."
    );
}
