//! Regenerates Figure 5: the speedup versus QoS-loss trade-off space of every
//! benchmark (all knob settings, Pareto-optimal settings on training inputs,
//! and the same settings re-measured on production inputs).
//!
//! Run with `cargo run -p powerdial-bench --bin fig5_tradeoffs [--quick|--paper]`.

use powerdial::experiments::tradeoff_analysis;
use powerdial_bench::{benchmark_suite, fmt, print_table, Scale};

fn main() {
    let scale = Scale::from_environment();
    println!("PowerDial reproduction — Figure 5 (scale: {scale:?})");
    println!("Paper expectation: speedups up to ~100x (swaptions), ~4.5x (x264), ~7x (bodytrack),");
    println!("~1.5x (swish++), with small QoS losses along the Pareto frontier.");

    for case in benchmark_suite(scale) {
        let system = case.build_system();
        let analysis = tradeoff_analysis(case.app.as_ref(), &system)
            .expect("trade-off analysis always succeeds for the benchmark suite");

        let all_rows: Vec<Vec<String>> = analysis
            .training_points
            .iter()
            .map(|p| {
                vec![
                    p.setting.clone(),
                    fmt(p.speedup, 3),
                    fmt(p.qos_loss_percent, 3),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 5 ({}) — all knob settings, training inputs",
                case.name()
            ),
            &["setting", "speedup", "qos loss %"],
            &all_rows,
        );

        let frontier_rows: Vec<Vec<String>> = analysis
            .pareto_training
            .iter()
            .zip(&analysis.pareto_production)
            .map(|(train, prod)| {
                vec![
                    train.setting.clone(),
                    fmt(train.speedup, 3),
                    fmt(train.qos_loss_percent, 3),
                    fmt(prod.speedup, 3),
                    fmt(prod.qos_loss_percent, 3),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 5 ({}) — Pareto-optimal settings: training vs production",
                case.name()
            ),
            &[
                "setting",
                "speedup (train)",
                "qos loss % (train)",
                "speedup (prod)",
                "qos loss % (prod)",
            ],
            &frontier_rows,
        );
        println!(
            "max speedup {:.2}x at <= {:.2}% QoS loss along the frontier",
            analysis.max_training_speedup(),
            analysis.max_pareto_qos_loss_percent()
        );
    }
}
