//! Regenerates Figure 7: the dynamic response of each benchmark to a power
//! cap imposed a quarter of the way through the run and lifted at three
//! quarters, with and without dynamic knobs.
//!
//! Run with `cargo run -p powerdial-bench --bin fig7_powercap [--quick|--paper]`.

use powerdial::experiments::power_cap_response_on;
use powerdial::platform::FrequencyTable;
use powerdial_bench::{benchmark_suite, fmt, print_table, simulation_options, Scale};

fn main() {
    let scale = Scale::from_environment();
    let options = simulation_options(scale);
    // The experiment is phrased against whatever table the DVFS backend
    // discovered; here, the simulated backend running the paper's ladder.
    let table = FrequencyTable::paper();
    println!("PowerDial reproduction — Figure 7 (scale: {scale:?})");
    println!("DVFS backend table: {} ({} kHz)", table, table.format());
    println!("Paper expectation: with dynamic knobs the normalized performance dips when the cap");
    println!("is imposed, recovers to ~1.0 while the knob gain rises, and returns to gain ~1 when");
    println!("the cap is lifted; without knobs performance stays at ~2/3 for the capped interval.");

    for case in benchmark_suite(scale) {
        let system = case.build_system();
        let series = power_cap_response_on(case.app.as_ref(), &system, &table, options)
            .expect("power-cap experiment always succeeds for the benchmark suite");

        // Print the time series decimated to ~40 rows so the output stays
        // readable; the full series is available programmatically.
        let stride = (series.with_knobs.len() / 40).max(1);
        let rows: Vec<Vec<String>> = series
            .with_knobs
            .iter()
            .zip(&series.without_knobs)
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, (with, without))| {
                vec![
                    fmt(with.time_secs, 1),
                    with.normalized_performance
                        .map(|p| fmt(p, 3))
                        .unwrap_or_else(|| "-".to_string()),
                    fmt(with.knob_gain, 2),
                    without
                        .normalized_performance
                        .map(|p| fmt(p, 3))
                        .unwrap_or_else(|| "-".to_string()),
                    fmt(with.frequency_ghz, 2),
                ]
            })
            .collect();

        print_table(
            &format!(
                "Figure 7 ({}) — cap imposed at {:.0}s, lifted at {:.0}s",
                case.name(),
                series.cap_imposed_at_secs,
                series.cap_lifted_at_secs
            ),
            &[
                "time s",
                "norm perf (knobs)",
                "knob gain",
                "norm perf (no knobs)",
                "freq GHz",
            ],
            &rows,
        );

        println!(
            "capped-interval mean performance: {:.3} with knobs vs {:.3} without; peak knob gain {:.2}",
            series.capped_performance_with_knobs().unwrap_or(0.0),
            series.capped_performance_without_knobs().unwrap_or(0.0),
            series.peak_knob_gain()
        );
    }
}
