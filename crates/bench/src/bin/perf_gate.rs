//! CI performance gate: fails when a fresh benchmark run regresses more
//! than the tolerance against the committed baseline.
//!
//! Usage:
//!   perf_gate <baseline.json> <current.json> [<baseline2> <current2> ...]
//!             [--tolerance FRACTION]
//!
//! Each pair is one benchmark (`BENCH_hotpath.json`, `BENCH_multiapp.json`);
//! the documents carry a `benchmark` field and the gate dispatches on it.
//! Only relative metrics (speedups, gains) are compared — see
//! [`powerdial_bench::gate`] — so reruns on a different machine than the
//! baseline's are still meaningful.
//!
//! Exit status: 0 when every metric clears `baseline * (1 - tolerance)`,
//! 1 on any regression, 2 on usage or parse errors.
//!
//! Skipping: set `POWERDIAL_SKIP_PERF_GATE=1` to turn the gate into a
//! no-op (exit 0). Legitimate reasons to skip are a PR that intentionally
//! trades throughput for a feature (commit refreshed baselines in the same
//! PR and say so), or a CI runner known to be timing-hostile. The variable
//! is checked first so skipping never hides a parse error in freshly
//! written baselines.

use std::process::ExitCode;

use powerdial_bench::gate::{gate, Json, DEFAULT_TOLERANCE};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    if std::env::var("POWERDIAL_SKIP_PERF_GATE").is_ok_and(|v| v == "1") {
        println!("perf gate skipped (POWERDIAL_SKIP_PERF_GATE=1)");
        return ExitCode::SUCCESS;
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--tolerance" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    if paths.is_empty() || paths.len() % 2 != 0 {
        eprintln!("usage: perf_gate <baseline.json> <current.json> [...] [--tolerance FRACTION]");
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    for pair in paths.chunks(2) {
        let (baseline_path, current_path) = (&pair[0], &pair[1]);
        let checks = load(baseline_path)
            .and_then(|b| load(current_path).map(|c| (b, c)))
            .and_then(|(b, c)| gate(&b, &c, tolerance));
        let checks = match checks {
            Ok(checks) => checks,
            Err(error) => {
                eprintln!("gate error for {baseline_path} vs {current_path}: {error}");
                return ExitCode::from(2);
            }
        };
        println!(
            "== {baseline_path} vs {current_path} (tolerance {:.0}%) ==",
            tolerance * 100.0
        );
        for check in &checks {
            println!("{check}");
            if !check.passed() {
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "\nperf gate FAILED: {failures} metric(s) regressed more than {:.0}% \
             below the committed baseline",
            tolerance * 100.0
        );
        eprintln!(
            "if the regression is intentional, refresh the BENCH_*.json baselines \
             in this PR (cargo run --release -p powerdial-bench --bin <bench>)"
        );
        ExitCode::FAILURE
    } else {
        println!("\nperf gate passed");
        ExitCode::SUCCESS
    }
}
