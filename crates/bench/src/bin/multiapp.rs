//! Measures aggregate multi-application control throughput and emits
//! `BENCH_multiapp.json`: beats/sec and ns/beat of the sharded lock-free
//! daemon versus the serial mutex-guarded baseline at N = 1, 8, 64, 512,
//! and 4096 concurrent applications, plus the shared-memory (memfd/mmap)
//! transport at N = 1, 8, 64, 512 (each app holds a mapped segment, so
//! the shm sweep stops before fd limits rather than past them).
//!
//! Usage: `cargo run --release -p powerdial-bench --bin multiapp [--quick]
//! [--out PATH]`. `--quick` (or `POWERDIAL_SCALE=quick`, or a debug build)
//! shrinks the beat counts for CI.

use std::time::Instant;

use powerdial_bench::multiapp::{
    DaemonMultiAppLoop, IdleFleetLoop, NaiveMultiAppLoop, ShmMultiAppLoop, BEATS_PER_QUANTUM,
};
use powerdial_bench::Scale;

/// Application counts swept by the benchmark.
const APP_COUNTS: [usize; 5] = [1, 8, 64, 512, 4096];

/// Application counts swept over the shared-memory transport (one mapped
/// segment — one fd — per app, so the sweep respects default fd limits).
const SHM_APP_COUNTS: [usize; 4] = [1, 8, 64, 512];

/// Fleet size for the idle-channel measurement.
const IDLE_APPS: usize = 1000;

/// Idle-skip threshold measured against the poll-everything default.
const IDLE_SKIP_LIMIT: u32 = 8;

struct Measurement {
    beats: u64,
    ns_per_beat: f64,
    beats_per_sec: f64,
}

/// Runs `step` until at least `target_beats` beats have been processed
/// (always whole quanta) and returns the aggregate rate.
fn measure(target_beats: u64, mut step: impl FnMut() -> u64) -> Measurement {
    let start = Instant::now();
    let mut beats = 0u64;
    while beats < target_beats {
        beats += step();
    }
    let elapsed = start.elapsed();
    let ns_per_beat = elapsed.as_nanos() as f64 / beats as f64;
    Measurement {
        beats,
        ns_per_beat,
        beats_per_sec: 1e9 / ns_per_beat,
    }
}

fn main() {
    let scale = Scale::from_environment();
    let (fast_target, naive_target, warm_quanta) = match scale {
        Scale::Paper => (4_000_000u64, 1_000_000u64, 500u64),
        Scale::Quick => (200_000, 100_000, 50),
    };

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_multiapp.json".to_string())
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);

    println!("== multiapp daemon ({scale:?} scale, {workers} workers) ==");
    let mut rows = Vec::new();
    for apps in APP_COUNTS {
        let beats_per_quantum = (apps * BEATS_PER_QUANTUM) as u64;

        let mut fast = DaemonMultiAppLoop::new(apps, workers);
        // Warm: fill scratch buffers and planning buffers, settle shards.
        let warm = warm_quanta.min(fast_target / beats_per_quantum / 2).max(2);
        for _ in 0..warm {
            fast.step();
        }
        let sharded = measure(fast_target.max(beats_per_quantum), || fast.step());

        let mut slow = NaiveMultiAppLoop::new(apps);
        for _ in 0..warm {
            slow.step();
        }
        let naive = measure(naive_target.max(beats_per_quantum), || slow.step());

        let speedup = naive.ns_per_beat / sharded.ns_per_beat;
        println!(
            "N = {apps:4}: {:7.1} ns/beat, {:10.0} beats/sec aggregate ({:.2}x vs mutex baseline {:.1} ns/beat)",
            sharded.ns_per_beat, sharded.beats_per_sec, speedup, naive.ns_per_beat
        );
        rows.push(format!(
            "    {{\n      \"apps\": {apps},\n      \"beats\": {},\n      \
             \"ns_per_beat\": {:.2},\n      \"beats_per_sec\": {:.0},\n      \
             \"naive_beats\": {},\n      \"naive_ns_per_beat\": {:.2},\n      \
             \"speedup_vs_naive\": {:.2}\n    }}",
            sharded.beats,
            sharded.ns_per_beat,
            sharded.beats_per_sec,
            naive.beats,
            naive.ns_per_beat,
            speedup,
        ));
    }

    println!("== multiapp daemon, shared-memory transport ==");
    let mut shm_rows = Vec::new();
    for apps in SHM_APP_COUNTS {
        let beats_per_quantum = (apps * BEATS_PER_QUANTUM) as u64;
        let mut shm = match ShmMultiAppLoop::new(apps, workers) {
            Ok(shm) => shm,
            Err(error) => {
                println!("N = {apps:4}: skipped ({error})");
                continue;
            }
        };
        let warm = warm_quanta.min(fast_target / beats_per_quantum / 2).max(2);
        for _ in 0..warm {
            shm.step();
        }
        let over_shm = measure(fast_target.max(beats_per_quantum), || shm.step());
        println!(
            "N = {apps:4}: {:7.1} ns/beat, {:10.0} beats/sec aggregate (memfd/mmap transport)",
            over_shm.ns_per_beat, over_shm.beats_per_sec
        );
        shm_rows.push(format!(
            "    {{\n      \"apps\": {apps},\n      \"beats\": {},\n      \
             \"ns_per_beat\": {:.2},\n      \"beats_per_sec\": {:.0}\n    }}",
            over_shm.beats, over_shm.ns_per_beat, over_shm.beats_per_sec,
        ));
    }

    // Idle fleet: N silent apps, ticked with and without the silent-streak
    // skip. The interesting number is the fixed per-quantum cost of doing
    // *nothing* — what a mostly-idle consolidation host pays forever.
    println!("== idle fleet (N = {IDLE_APPS}, silent channels) ==");
    let idle_ticks = match scale {
        Scale::Paper => 200_000u64,
        Scale::Quick => 20_000,
    };
    let idle_ns = |skip: u32| {
        let mut fleet = IdleFleetLoop::new(IDLE_APPS, workers, skip);
        // Warm: build every channel's silent streak past the threshold so
        // the measured region is the steady skipping state.
        for _ in 0..(u64::from(IDLE_SKIP_LIMIT) * 4).max(64) {
            fleet.tick();
        }
        let start = Instant::now();
        for _ in 0..idle_ticks {
            fleet.tick();
        }
        start.elapsed().as_nanos() as f64 / idle_ticks as f64
    };
    let poll_all_ns = idle_ns(0);
    let skipping_ns = idle_ns(IDLE_SKIP_LIMIT);
    let idle_gain = poll_all_ns / skipping_ns;
    println!(
        "poll-all: {poll_all_ns:7.1} ns/tick; skip({IDLE_SKIP_LIMIT}): \
         {skipping_ns:7.1} ns/tick ({idle_gain:.2}x cheaper idle quantum)"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"multiapp\",\n  \"scale\": \"{scale:?}\",\n  \
         \"workers\": {workers},\n  \"beats_per_quantum\": {BEATS_PER_QUANTUM},\n  \
         \"points\": [\n{}\n  ],\n  \"shm_points\": [\n{}\n  ],\n  \
         \"idle_fleet\": {{\n    \"apps\": {IDLE_APPS},\n    \
         \"ns_per_tick_poll_all\": {poll_all_ns:.2},\n    \
         \"idle_skip_limit\": {IDLE_SKIP_LIMIT},\n    \
         \"ns_per_tick_skipping\": {skipping_ns:.2},\n    \
         \"skip_gain\": {idle_gain:.2}\n  }}\n}}\n",
        rows.join(",\n"),
        shm_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
