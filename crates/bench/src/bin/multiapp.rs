//! Measures aggregate multi-application control throughput and emits
//! `BENCH_multiapp.json`: beats/sec and ns/beat of the sharded lock-free
//! daemon versus the serial mutex-guarded baseline at N = 1, 8, 64, 512,
//! and 4096 concurrent applications, plus the shared-memory (memfd/mmap)
//! transport at N = 1, 8, 64, 512 (each app holds a mapped segment, so
//! the shm sweep stops before fd limits rather than past them).
//!
//! Usage: `cargo run --release -p powerdial-bench --bin multiapp [--quick]
//! [--out PATH]`. `--quick` (or `POWERDIAL_SCALE=quick`, or a debug build)
//! shrinks the beat counts for CI.

use std::time::Instant;

use powerdial_bench::multiapp::{
    DaemonMultiAppLoop, IdleFleetLoop, NaiveMultiAppLoop, ShmMultiAppLoop, BEATS_PER_QUANTUM,
};
use powerdial_bench::Scale;

/// Application counts swept by the benchmark.
const APP_COUNTS: [usize; 5] = [1, 8, 64, 512, 4096];

/// Application counts swept over the shared-memory transport (one mapped
/// segment — one fd — per app, so the sweep respects default fd limits).
const SHM_APP_COUNTS: [usize; 4] = [1, 8, 64, 512];

/// Fleet size for the idle-channel measurement.
const IDLE_APPS: usize = 1000;

/// Idle-skip threshold measured against the poll-everything default.
const IDLE_SKIP_LIMIT: u32 = 8;

/// Fleet size for the telemetry-overhead (instrumented vs uninstrumented)
/// measurement: the paper-scale consolidation point the acceptance
/// criterion pins (<5% ns/beat overhead).
const TELEMETRY_APPS: usize = 512;

struct Measurement {
    beats: u64,
    ns_per_beat: f64,
    beats_per_sec: f64,
}

/// Runs `step` until at least `target_beats` beats have been processed
/// (always whole quanta) and returns the aggregate rate.
fn measure(target_beats: u64, mut step: impl FnMut() -> u64) -> Measurement {
    let start = Instant::now();
    let mut beats = 0u64;
    while beats < target_beats {
        beats += step();
    }
    let elapsed = start.elapsed();
    let ns_per_beat = elapsed.as_nanos() as f64 / beats as f64;
    Measurement {
        beats,
        ns_per_beat,
        beats_per_sec: 1e9 / ns_per_beat,
    }
}

fn main() {
    let scale = Scale::from_environment();
    let (fast_target, naive_target, warm_quanta) = match scale {
        Scale::Paper => (4_000_000u64, 1_000_000u64, 500u64),
        Scale::Quick => (200_000, 100_000, 50),
    };

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_multiapp.json".to_string())
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);

    println!("== multiapp daemon ({scale:?} scale, {workers} workers) ==");
    let mut rows = Vec::new();
    for apps in APP_COUNTS {
        let beats_per_quantum = (apps * BEATS_PER_QUANTUM) as u64;

        let mut fast = DaemonMultiAppLoop::new(apps, workers);
        let mut slow = NaiveMultiAppLoop::new(apps);
        // Warm: fill scratch buffers and planning buffers, settle shards.
        let warm = warm_quanta.min(fast_target / beats_per_quantum / 2).max(2);
        for _ in 0..warm {
            fast.step();
            slow.step();
        }
        // The gate pins speedup_vs_naive, so both arms of the ratio are
        // measured alternately and keep their best pass — noise that hits
        // one arm's turn (scheduler, frequency) must not skew the ratio
        // the baseline commits (see the telemetry section below).
        let mut sharded = measure(fast_target.max(beats_per_quantum), || fast.step());
        let mut naive = measure(naive_target.max(beats_per_quantum), || slow.step());
        for _ in 0..2 {
            let pass = measure(fast_target.max(beats_per_quantum), || fast.step());
            if pass.ns_per_beat < sharded.ns_per_beat {
                sharded = pass;
            }
            let pass = measure(naive_target.max(beats_per_quantum), || slow.step());
            if pass.ns_per_beat < naive.ns_per_beat {
                naive = pass;
            }
        }

        let speedup = naive.ns_per_beat / sharded.ns_per_beat;
        println!(
            "N = {apps:4}: {:7.1} ns/beat, {:10.0} beats/sec aggregate ({:.2}x vs mutex baseline {:.1} ns/beat)",
            sharded.ns_per_beat, sharded.beats_per_sec, speedup, naive.ns_per_beat
        );
        rows.push(format!(
            "    {{\n      \"apps\": {apps},\n      \"beats\": {},\n      \
             \"ns_per_beat\": {:.2},\n      \"beats_per_sec\": {:.0},\n      \
             \"naive_beats\": {},\n      \"naive_ns_per_beat\": {:.2},\n      \
             \"speedup_vs_naive\": {:.2}\n    }}",
            sharded.beats,
            sharded.ns_per_beat,
            sharded.beats_per_sec,
            naive.beats,
            naive.ns_per_beat,
            speedup,
        ));
    }

    println!("== multiapp daemon, shared-memory transport ==");
    let mut shm_rows = Vec::new();
    for apps in SHM_APP_COUNTS {
        let beats_per_quantum = (apps * BEATS_PER_QUANTUM) as u64;
        let mut shm = match ShmMultiAppLoop::new(apps, workers) {
            Ok(shm) => shm,
            Err(error) => {
                println!("N = {apps:4}: skipped ({error})");
                continue;
            }
        };
        let warm = warm_quanta.min(fast_target / beats_per_quantum / 2).max(2);
        for _ in 0..warm {
            shm.step();
        }
        let over_shm = measure(fast_target.max(beats_per_quantum), || shm.step());
        println!(
            "N = {apps:4}: {:7.1} ns/beat, {:10.0} beats/sec aggregate (memfd/mmap transport)",
            over_shm.ns_per_beat, over_shm.beats_per_sec
        );
        shm_rows.push(format!(
            "    {{\n      \"apps\": {apps},\n      \"beats\": {},\n      \
             \"ns_per_beat\": {:.2},\n      \"beats_per_sec\": {:.0}\n    }}",
            over_shm.beats, over_shm.ns_per_beat, over_shm.beats_per_sec,
        ));
    }

    // Idle fleet: N silent apps, ticked with and without the silent-streak
    // skip. The interesting number is the fixed per-quantum cost of doing
    // *nothing* — what a mostly-idle consolidation host pays forever.
    println!("== idle fleet (N = {IDLE_APPS}, silent channels) ==");
    let idle_ticks = match scale {
        Scale::Paper => 200_000u64,
        Scale::Quick => 20_000,
    };
    let (poll_all_ns, skipping_ns) = {
        let mut polling = IdleFleetLoop::new(IDLE_APPS, workers, 0);
        let mut skipping = IdleFleetLoop::new(IDLE_APPS, workers, IDLE_SKIP_LIMIT);
        // Warm: build every channel's silent streak past the threshold so
        // the measured region is the steady skipping state.
        for _ in 0..(u64::from(IDLE_SKIP_LIMIT) * 4).max(64) {
            polling.tick();
            skipping.tick();
        }
        let idle_ns = |fleet: &mut IdleFleetLoop| {
            let start = Instant::now();
            for _ in 0..idle_ticks {
                fleet.tick();
            }
            start.elapsed().as_nanos() as f64 / idle_ticks as f64
        };
        // skip_gain is a gated ratio: alternate arms, keep each one's
        // best pass (same noise defense as the points sweep above).
        let mut poll_all = f64::INFINITY;
        let mut skip = f64::INFINITY;
        for _ in 0..3 {
            poll_all = poll_all.min(idle_ns(&mut polling));
            skip = skip.min(idle_ns(&mut skipping));
        }
        (poll_all, skip)
    };
    let idle_gain = poll_all_ns / skipping_ns;
    println!(
        "poll-all: {poll_all_ns:7.1} ns/tick; skip({IDLE_SKIP_LIMIT}): \
         {skipping_ns:7.1} ns/tick ({idle_gain:.2}x cheaper idle quantum)"
    );

    // Telemetry overhead: the sharded loop at N = TELEMETRY_APPS with the
    // telemetry plane on (the production default) vs off. The histogram
    // records ride the drain loop, so this prices exactly what every
    // deployment pays for observability; the gate pins the ratio.
    //
    // Scheduler/frequency noise on a shared box dwarfs the handful of ALU
    // ops a record costs, so a single pass per arm measures the machine,
    // not the instrumentation. Two defenses: the arms run on the inline
    // shard (workers = 0 — no cross-thread handoff in the loop, so the
    // delta is purely the drain-path records), and both are built and
    // warmed up front, then measured alternately with each keeping its
    // best pass. The min filters noise that hits one arm's turn without
    // biasing the on/off ratio.
    println!("== telemetry overhead (N = {TELEMETRY_APPS}, inline shard) ==");
    let (instrumented_ns, uninstrumented_ns) = {
        let beats_per_quantum = (TELEMETRY_APPS * BEATS_PER_QUANTUM) as u64;
        let mut on = DaemonMultiAppLoop::with_telemetry(TELEMETRY_APPS, 0, true);
        let mut off = DaemonMultiAppLoop::with_telemetry(TELEMETRY_APPS, 0, false);
        let warm = warm_quanta.min(fast_target / beats_per_quantum / 2).max(2);
        for _ in 0..warm {
            on.step();
            off.step();
        }
        let target = fast_target.max(beats_per_quantum);
        let mut best_on = f64::INFINITY;
        let mut best_off = f64::INFINITY;
        for _ in 0..5 {
            best_on = best_on.min(measure(target, || on.step()).ns_per_beat);
            best_off = best_off.min(measure(target, || off.step()).ns_per_beat);
        }
        (best_on, best_off)
    };
    // Higher-is-better form for the gate (current >= baseline * (1 - tol)).
    let telemetry_efficiency = uninstrumented_ns / instrumented_ns;
    let telemetry_overhead_pct = (instrumented_ns / uninstrumented_ns - 1.0) * 100.0;
    println!(
        "on: {instrumented_ns:6.1} ns/beat; off: {uninstrumented_ns:6.1} ns/beat \
         ({telemetry_overhead_pct:+.1}% overhead, efficiency {telemetry_efficiency:.3})"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"multiapp\",\n  \"scale\": \"{scale:?}\",\n  \
         \"workers\": {workers},\n  \"beats_per_quantum\": {BEATS_PER_QUANTUM},\n  \
         \"points\": [\n{}\n  ],\n  \"shm_points\": [\n{}\n  ],\n  \
         \"idle_fleet\": {{\n    \"apps\": {IDLE_APPS},\n    \
         \"ns_per_tick_poll_all\": {poll_all_ns:.2},\n    \
         \"idle_skip_limit\": {IDLE_SKIP_LIMIT},\n    \
         \"ns_per_tick_skipping\": {skipping_ns:.2},\n    \
         \"skip_gain\": {idle_gain:.2}\n  }},\n  \
         \"telemetry\": {{\n    \"apps\": {TELEMETRY_APPS},\n    \
         \"ns_per_beat_instrumented\": {instrumented_ns:.2},\n    \
         \"ns_per_beat_uninstrumented\": {uninstrumented_ns:.2},\n    \
         \"overhead_pct\": {telemetry_overhead_pct:.2},\n    \
         \"efficiency\": {telemetry_efficiency:.4}\n  }}\n}}\n",
        rows.join(",\n"),
        shm_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
