//! Measures daemon crash-recovery latency under chaos and emits
//! `BENCH_recovery.json`: p50/p99/max time from a restarted daemon's fork
//! to each client's first republished decision (read through its adopted
//! segment), the slowest full-fleet recovery, and beats dropped per kill
//! (zero on a passing run — every beat emitted during an outage survives
//! in the ring the successor adopts).
//!
//! The harness (`powerdial_bench::chaos`, shared with the
//! `chaos_recovery` integration suite) SIGKILLs the forked broker+daemon
//! process at seeded-random points under N-application load and enforces
//! the recovery invariants inline, so this binary doubles as a smoke of
//! the whole recovery path at benchmark scale.
//!
//! Usage: `cargo run --release -p powerdial-bench --bin chaos [--quick]
//! [--out PATH] [--seed N]`. `--quick` (or `POWERDIAL_SCALE=quick`, or a
//! debug build) shrinks the kill count and fleet for CI.

#[cfg(target_os = "linux")]
fn main() {
    use std::time::Duration;

    use powerdial_bench::chaos::{percentile, run, ChaosConfig};
    use powerdial_bench::Scale;

    let scale = Scale::from_environment();
    let (apps, kills) = match scale {
        Scale::Paper => (64usize, 50usize),
        Scale::Quick => (16, 10),
    };

    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let mut config = ChaosConfig::new(apps, kills);
    if let Some(seed) = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
    {
        config.seed = seed.parse().expect("--seed takes a decimal u64");
    }

    println!(
        "== chaos recovery ({scale:?} scale): {kills} SIGKILLs over {apps} apps, seed {:#x} ==",
        config.seed
    );
    let report = run(&config);

    let per_client: Vec<Duration> = report
        .kills
        .iter()
        .flat_map(|kill| kill.client_recovery.iter().copied())
        .collect();
    let per_fleet: Vec<Duration> = report.kills.iter().map(|k| k.all_republished).collect();
    let dropped_max = report.kills.iter().map(|k| k.beats_dropped).max().unwrap();
    let outage_beats: u64 = report.kills.iter().map(|k| k.outage_beats_per_app).sum();

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let (p50, p99, max) = (
        ms(percentile(&per_client, 50.0)),
        ms(percentile(&per_client, 99.0)),
        ms(*per_client.iter().max().unwrap()),
    );
    let (fleet_p50, fleet_p99, fleet_max) = (
        ms(percentile(&per_fleet, 50.0)),
        ms(percentile(&per_fleet, 99.0)),
        ms(*per_fleet.iter().max().unwrap()),
    );
    println!(
        "time-to-republished-decision: p50 {p50:.2} ms, p99 {p99:.2} ms, max {max:.2} ms per client"
    );
    println!(
        "full-fleet recovery:          p50 {fleet_p50:.2} ms, p99 {fleet_p99:.2} ms, max {fleet_max:.2} ms"
    );
    println!(
        "beats: {} pushed, {} emitted into dead daemons per app (total), {} dropped (max {dropped_max}/kill)",
        report.beats_pushed, outage_beats, report.beats_dropped
    );

    let json = format!(
        "{{\n  \"benchmark\": \"recovery\",\n  \"scale\": \"{scale:?}\",\n  \
         \"apps\": {apps},\n  \"kills\": {kills},\n  \"seed\": {seed},\n  \
         \"ring_capacity\": {capacity},\n  \
         \"client_recovery_ms\": {{ \"p50\": {p50:.3}, \"p99\": {p99:.3}, \"max\": {max:.3} }},\n  \
         \"fleet_recovery_ms\": {{ \"p50\": {fleet_p50:.3}, \"p99\": {fleet_p99:.3}, \"max\": {fleet_max:.3} }},\n  \
         \"beats_pushed\": {pushed},\n  \"outage_beats_per_app\": {outage_beats},\n  \
         \"beats_dropped\": {dropped},\n  \"beats_dropped_per_kill_max\": {dropped_max},\n  \
         \"incarnations\": {incarnations}\n}}\n",
        seed = config.seed,
        capacity = config.capacity,
        pushed = report.beats_pushed,
        dropped = report.beats_dropped,
        incarnations = report.incarnations,
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("the chaos benchmark requires Linux (fork + SIGKILL + SCM_RIGHTS broker)");
}
