//! Regenerates Table 1: training and production inputs for each benchmark.
//!
//! Run with `cargo run -p powerdial-bench --bin table1_inputs [--quick|--paper]`.

use powerdial::apps::KnobbedApplication;
use powerdial::experiments::input_summary;
use powerdial_bench::{benchmark_suite, print_table, Scale};

fn main() {
    let scale = Scale::from_environment();
    let suite = benchmark_suite(scale);
    let apps: Vec<&dyn KnobbedApplication> = suite.iter().map(|case| case.app.as_ref()).collect();
    let rows = input_summary(&apps);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.benchmark.clone(),
                row.training_inputs.to_string(),
                row.production_inputs.to_string(),
                row.paper_training.to_string(),
                row.paper_production.to_string(),
                row.paper_source.to_string(),
                row.reproduction_source.to_string(),
            ]
        })
        .collect();

    println!("PowerDial reproduction — Table 1 (scale: {scale:?})");
    print_table(
        "Table 1: training and production inputs per benchmark",
        &[
            "benchmark",
            "training (here)",
            "production (here)",
            "training (paper)",
            "production (paper)",
            "source (paper)",
            "source (here)",
        ],
        &table,
    );
}
