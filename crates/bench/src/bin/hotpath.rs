//! Measures the full heartbeat→controller→actuator hot path and emits
//! `BENCH_hotpath.json`, so successive PRs can track the perf trajectory of
//! the control loop (beats/sec, ns/beat, and the speedup over the
//! checked-in pre-optimization baselines).
//!
//! Usage: `cargo run --release -p powerdial-bench --bin hotpath [--quick]
//! [--out PATH]`. `--quick` (or `POWERDIAL_SCALE=quick`, or a debug build)
//! shrinks the iteration counts for CI.

use std::time::Instant;

use powerdial_bench::hotpath::{warmed_windows, HotPathLoop, NaiveHotPathLoop};
use powerdial_bench::Scale;

/// Sliding-window size for the full-loop measurement (the paper's default).
const WINDOW: usize = 20;
/// Window size for the statistics-query kernel comparison: large enough
/// that the O(n)-vs-O(1) gap dominates measurement noise.
const QUERY_WINDOW: usize = 256;
/// Knob-table settings in the synthetic table.
const SETTINGS: usize = 8;

struct LoopResult {
    beats: u64,
    ns_per_beat: f64,
    beats_per_sec: f64,
}

fn time_loop<F: FnMut() -> f64>(beats: u64, mut step: F) -> LoopResult {
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..beats {
        sink += step();
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    let ns_per_beat = elapsed.as_nanos() as f64 / beats as f64;
    LoopResult {
        beats,
        ns_per_beat,
        beats_per_sec: 1e9 / ns_per_beat,
    }
}

fn time_queries<F: FnMut() -> f64>(iterations: u64, mut query: F) -> f64 {
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iterations {
        sink += query();
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    elapsed.as_nanos() as f64 / iterations as f64
}

fn main() {
    let scale = Scale::from_environment();
    let (loop_beats, query_iters, warmup) = match scale {
        Scale::Paper => (4_000_000u64, 2_000_000u64, 200_000u64),
        Scale::Quick => (200_000, 100_000, 10_000),
    };

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_hotpath.json".to_string())
    };

    // Full loop, optimized vs pre-optimization baseline. The gate pins
    // speedup_vs_naive, so both arms are warmed up front and measured
    // alternately, each keeping its best pass — noise that lands on one
    // arm's turn (scheduler, frequency) must not skew the committed
    // ratio.
    let mut optimized = HotPathLoop::new(SETTINGS, WINDOW, WINDOW);
    let mut naive_loop = NaiveHotPathLoop::new(SETTINGS, WINDOW);
    // Warm past the history ring's growth phase so the measured region
    // is the allocation-free steady state.
    time_loop(warmup, || optimized.step());
    time_loop(warmup, || naive_loop.step());
    let mut fast = time_loop(loop_beats, || optimized.step());
    let mut slow = time_loop(loop_beats.min(1_000_000), || naive_loop.step());
    for _ in 0..2 {
        let pass = time_loop(loop_beats, || optimized.step());
        if pass.ns_per_beat < fast.ns_per_beat {
            fast = pass;
        }
        let pass = time_loop(loop_beats.min(1_000_000), || naive_loop.step());
        if pass.ns_per_beat < slow.ns_per_beat {
            slow = pass;
        }
    }

    // Window-query kernels: statistics() + rate() per call, alternated
    // best-of-3 like the loop arms.
    let (incremental, naive_window) = warmed_windows(QUERY_WINDOW);
    let mut fast_query_ns = f64::INFINITY;
    let mut slow_query_ns = f64::INFINITY;
    for _ in 0..3 {
        fast_query_ns = fast_query_ns.min(time_queries(query_iters, || {
            let stats = incremental.statistics().expect("warmed window");
            stats.mean_latency_secs
                + incremental
                    .rate()
                    .expect("no overflow")
                    .expect("warmed window")
                    .beats_per_second()
        }));
        slow_query_ns = slow_query_ns.min(time_queries(query_iters.min(200_000), || {
            let stats = naive_window.statistics().expect("warmed window");
            stats.mean_latency_secs
                + naive_window
                    .rate()
                    .expect("no overflow")
                    .expect("warmed window")
                    .beats_per_second()
        }));
    }

    let loop_speedup = slow.ns_per_beat / fast.ns_per_beat;
    let query_speedup = slow_query_ns / fast_query_ns;

    println!("== hot path ({scale:?} scale) ==");
    println!(
        "full loop (window {WINDOW}): {:.1} ns/beat, {:.0} beats/sec ({:.2}x vs naive {:.1} ns/beat)",
        fast.ns_per_beat, fast.beats_per_sec, loop_speedup, slow.ns_per_beat
    );
    println!(
        "window queries (window {QUERY_WINDOW}): {fast_query_ns:.1} ns/query \
         ({query_speedup:.2}x vs naive {slow_query_ns:.1} ns/query)"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"hotpath\",\n  \"scale\": \"{scale:?}\",\n  \
         \"window_size\": {WINDOW},\n  \"knob_settings\": {SETTINGS},\n  \
         \"full_loop\": {{\n    \"beats\": {},\n    \"ns_per_beat\": {:.2},\n    \
         \"beats_per_sec\": {:.0},\n    \"naive_ns_per_beat\": {:.2},\n    \
         \"speedup_vs_naive\": {:.2}\n  }},\n  \
         \"window_queries\": {{\n    \"window_size\": {QUERY_WINDOW},\n    \
         \"ns_per_query\": {:.2},\n    \"naive_ns_per_query\": {:.2},\n    \
         \"speedup_vs_naive\": {:.2}\n  }}\n}}\n",
        fast.beats,
        fast.ns_per_beat,
        fast.beats_per_sec,
        slow.ns_per_beat,
        loop_speedup,
        fast_query_ns,
        slow_query_ns,
        query_speedup,
    );
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
