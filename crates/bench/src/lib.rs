//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it on the simulated platform and prints the
//! corresponding rows or series. The binaries share this library: application
//! construction at either *paper* scale (used for the reported numbers; run
//! them in release mode) or *quick* scale (used in debug builds and CI), plus
//! small text-table helpers.
//!
//! Set the environment variable `POWERDIAL_SCALE=quick` (or pass `--quick`)
//! to force the scaled-down configuration; `POWERDIAL_SCALE=paper` forces the
//! full configuration.

use powerdial::apps::{BodytrackApp, KnobbedApplication, SearchApp, SwaptionsApp, VideoEncoderApp};
use powerdial::experiments::sim::SimulationOptions;
use powerdial::{PowerDialConfig, PowerDialSystem};
use powerdial_qos::QosLossBound;

#[cfg(target_os = "linux")]
pub mod adversarial;
#[cfg(target_os = "linux")]
pub mod chaos;
pub mod gate;
pub mod hotpath;
pub mod multiapp;

/// Which configuration scale the harness runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-like knob ranges and input counts (intended for release builds).
    Paper,
    /// Scaled-down knob ranges and input counts (fast enough for debug builds
    /// and CI).
    Quick,
}

impl Scale {
    /// Resolves the scale from the command line and the `POWERDIAL_SCALE`
    /// environment variable, defaulting to `Paper` in release builds and
    /// `Quick` in debug builds.
    pub fn from_environment() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        if args.iter().any(|a| a == "--paper") {
            return Scale::Paper;
        }
        match std::env::var("POWERDIAL_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => {
                if cfg!(debug_assertions) {
                    Scale::Quick
                } else {
                    Scale::Paper
                }
            }
        }
    }
}

/// The seed every experiment binary uses, so printed numbers are reproducible
/// run to run.
pub const EXPERIMENT_SEED: u64 = 2011;

/// One benchmark application boxed behind the common trait, with its paper
/// provisioning parameters.
pub struct BenchmarkCase {
    /// The application.
    pub app: Box<dyn KnobbedApplication>,
    /// Machines the paper provisions for the original system.
    pub original_machines: usize,
    /// QoS-loss bound the paper uses when consolidating this benchmark.
    pub consolidation_bound_percent: f64,
}

impl BenchmarkCase {
    /// The application's name.
    pub fn name(&self) -> &str {
        self.app.name()
    }

    /// Builds the PowerDial system (identification, calibration, knob table)
    /// for this case.
    pub fn build_system(&self) -> PowerDialSystem {
        PowerDialSystem::build(self.app.as_ref(), PowerDialConfig::default())
            .expect("benchmark applications always calibrate")
    }

    /// The consolidation QoS bound as a [`QosLossBound`].
    pub fn consolidation_bound(&self) -> QosLossBound {
        QosLossBound::from_percent(self.consolidation_bound_percent)
            .expect("bounds are valid percentages")
    }
}

/// Builds all four benchmark applications at the given scale, in the paper's
/// order (swaptions, x264, bodytrack, swish++).
pub fn benchmark_suite(scale: Scale) -> Vec<BenchmarkCase> {
    let seed = EXPERIMENT_SEED;
    match scale {
        Scale::Paper => vec![
            BenchmarkCase {
                app: Box::new(SwaptionsApp::parsec_scale(seed)),
                original_machines: 4,
                consolidation_bound_percent: 5.0,
            },
            BenchmarkCase {
                app: Box::new(VideoEncoderApp::parsec_scale(seed)),
                original_machines: 4,
                consolidation_bound_percent: 5.0,
            },
            BenchmarkCase {
                app: Box::new(BodytrackApp::parsec_scale(seed)),
                original_machines: 4,
                consolidation_bound_percent: 5.0,
            },
            BenchmarkCase {
                app: Box::new(SearchApp::swish_scale(seed)),
                original_machines: 3,
                consolidation_bound_percent: 30.0,
            },
        ],
        Scale::Quick => vec![
            BenchmarkCase {
                app: Box::new(SwaptionsApp::test_scale(seed)),
                original_machines: 4,
                consolidation_bound_percent: 5.0,
            },
            BenchmarkCase {
                app: Box::new(VideoEncoderApp::test_scale(seed)),
                original_machines: 4,
                consolidation_bound_percent: 5.0,
            },
            BenchmarkCase {
                app: Box::new(BodytrackApp::test_scale(seed)),
                original_machines: 4,
                consolidation_bound_percent: 5.0,
            },
            BenchmarkCase {
                app: Box::new(SearchApp::test_scale(seed)),
                original_machines: 3,
                consolidation_bound_percent: 30.0,
            },
        ],
    }
}

/// Simulation length appropriate for the scale.
pub fn simulation_options(scale: Scale) -> SimulationOptions {
    match scale {
        Scale::Paper => SimulationOptions {
            work_units: 240,
            window_size: 20,
            use_dynamic_knobs: true,
        },
        Scale::Quick => SimulationOptions {
            work_units: 120,
            window_size: 10,
            use_dynamic_knobs: true,
        },
    }
}

/// Prints a text table: a header row followed by data rows, with columns
/// padded to the widest cell.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let format_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", format_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", format_row(row));
    }
}

/// Formats a float with the given number of decimal places.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_builds_all_four_benchmarks() {
        let suite = benchmark_suite(Scale::Quick);
        let names: Vec<&str> = suite.iter().map(BenchmarkCase::name).collect();
        assert_eq!(names, vec!["swaptions", "x264", "bodytrack", "swish++"]);
        for case in &suite {
            assert!(case.original_machines >= 3);
            assert!(case.consolidation_bound().percent() >= 5.0);
        }
    }

    #[test]
    fn quick_systems_calibrate() {
        let suite = benchmark_suite(Scale::Quick);
        let system = suite[0].build_system();
        assert!(system.knob_table().max_speedup() > 1.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(std::f64::consts::PI, 2), "3.14");
        let options = simulation_options(Scale::Quick);
        assert!(options.work_units < simulation_options(Scale::Paper).work_units);
        // print_table only has observable side effects; just exercise it.
        print_table("test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
