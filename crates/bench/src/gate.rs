//! Performance gate: compares a freshly measured benchmark JSON against the
//! committed baseline and fails on regressions beyond a tolerance.
//!
//! The gate only compares *relative* metrics — `speedup_vs_naive` per point
//! and the idle fleet's `skip_gain` — never absolute nanoseconds. Both sides
//! of a ratio are measured on the same machine in the same run, so the
//! ratios transfer between the machine that committed the baseline and the
//! CI runner, while raw ns/beat figures do not.
//!
//! A check passes when `current >= baseline * (1 - tolerance)`. The default
//! tolerance is [`DEFAULT_TOLERANCE`] (15%): wide enough that shared-runner
//! jitter does not flake the gate, narrow enough that the regressions this
//! PR fixed (a 4x cliff at N = 1) could never slip through.
//!
//! The workspace vendors a no-op `serde`, so the parser below is a minimal
//! hand-rolled recursive-descent JSON reader. It supports exactly what the
//! benchmark binaries emit: objects, arrays, strings without escapes beyond
//! `\"` and `\\`, numbers, booleans, and null.

use std::fmt;

/// Default relative tolerance for the gate: a metric may be up to 15%
/// below its committed baseline before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&b| b as char),
            *pos
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

/// Parses exactly the JSON number grammar,
/// `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?`, consuming no
/// byte past the match. Anything looser (the previous version slurped
/// every sign/dot/exponent byte in sight and let `f64::parse` arbitrate)
/// quietly accepts non-JSON forms `f64::parse` happens to like — `1.`,
/// `01` — and turns digit soup like `1.2.3` into confusing
/// whole-token errors instead of a clean stop at the first bad byte.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let digits = |pos: &mut usize| {
        let first = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > first
    };
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a lone 0, or a nonzero digit then any digits —
    // leading zeros are not JSON.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            digits(pos);
        }
        _ => return Err(format!("bad number at byte {start}: no integer digits")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(pos) {
            return Err(format!("bad number at byte {start}: no fraction digits"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(format!("bad number at byte {start}: no exponent digits"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("number bytes are ASCII");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {}",
                            other.map(|&b| b as char),
                            *pos
                        ))
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                // The benchmark emitters write plain ASCII; pass through
                // whatever UTF-8 continuation bytes arrive regardless.
                out.push(b as char);
                *pos += 1;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

/// One gated metric: its baseline value, freshly measured value, and
/// pass/fail under the tolerance.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Human-readable metric path, e.g. `points[apps=64].speedup_vs_naive`.
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub current: f64,
    /// Minimum acceptable current value (`baseline * (1 - tolerance)`).
    pub floor: f64,
}

impl GateCheck {
    /// Whether the current measurement clears the floor.
    pub fn passed(&self) -> bool {
        self.current >= self.floor
    }
}

impl fmt::Display for GateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:4} {:44} baseline {:7.2}  current {:7.2}  floor {:7.2}",
            if self.passed() { "ok" } else { "FAIL" },
            self.metric,
            self.baseline,
            self.current,
            self.floor,
        )
    }
}

fn check(metric: String, baseline: f64, current: f64, tolerance: f64) -> GateCheck {
    GateCheck {
        metric,
        baseline,
        current,
        floor: baseline * (1.0 - tolerance),
    }
}

fn require_f64(doc: &Json, path: &[&str]) -> Result<f64, String> {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .ok_or_else(|| format!("missing field '{}'", path.join(".")))?;
    }
    node.as_f64()
        .ok_or_else(|| format!("field '{}' is not a number", path.join(".")))
}

/// Compares a freshly measured benchmark document against its committed
/// baseline. Dispatches on the `benchmark` field; the two documents must
/// be the same benchmark. Returns every checked metric (passes included)
/// so callers can print the full table.
pub fn gate(baseline: &Json, current: &Json, tolerance: f64) -> Result<Vec<GateCheck>, String> {
    let name = baseline
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("baseline has no 'benchmark' field")?;
    let current_name = current
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("current run has no 'benchmark' field")?;
    if name != current_name {
        return Err(format!(
            "benchmark mismatch: baseline is '{name}', current is '{current_name}'"
        ));
    }
    match name {
        "hotpath" => gate_hotpath(baseline, current, tolerance),
        "multiapp" => gate_multiapp(baseline, current, tolerance),
        other => Err(format!("unknown benchmark '{other}'")),
    }
}

fn gate_hotpath(baseline: &Json, current: &Json, tolerance: f64) -> Result<Vec<GateCheck>, String> {
    let mut checks = Vec::new();
    for section in ["full_loop", "window_queries"] {
        let path = [section, "speedup_vs_naive"];
        checks.push(check(
            format!("{section}.speedup_vs_naive"),
            require_f64(baseline, &path)?,
            require_f64(current, &path)?,
            tolerance,
        ));
    }
    Ok(checks)
}

fn gate_multiapp(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) -> Result<Vec<GateCheck>, String> {
    let mut checks = Vec::new();
    let base_points = baseline
        .get("points")
        .and_then(Json::as_array)
        .ok_or("baseline has no 'points' array")?;
    let cur_points = current
        .get("points")
        .and_then(Json::as_array)
        .ok_or("current run has no 'points' array")?;
    for point in base_points {
        let apps = require_f64(point, &["apps"])?;
        // A baseline point missing from the current sweep (e.g. a trimmed
        // quick run) is a gate error, not a silent skip.
        let matching = cur_points
            .iter()
            .find(|p| p.get("apps").and_then(Json::as_f64) == Some(apps))
            .ok_or_else(|| format!("current run has no point for apps={apps}"))?;
        checks.push(check(
            format!("points[apps={apps}].speedup_vs_naive"),
            require_f64(point, &["speedup_vs_naive"])?,
            require_f64(matching, &["speedup_vs_naive"])?,
            tolerance,
        ));
    }
    // The idle-fleet section is gated only when the baseline has it, so a
    // baseline committed before the section existed still gates cleanly.
    if baseline.get("idle_fleet").is_some() {
        let path = ["idle_fleet", "skip_gain"];
        checks.push(check(
            "idle_fleet.skip_gain".to_string(),
            require_f64(baseline, &path)?,
            require_f64(current, &path)?,
            tolerance,
        ));
    }
    // Telemetry overhead, same pattern: `efficiency` is the
    // uninstrumented/instrumented ns-per-beat ratio (1.0 = free
    // telemetry, higher is better), so the standard lower-bound check
    // fails the gate when instrumentation gets relatively more expensive.
    if baseline.get("telemetry").is_some() {
        let path = ["telemetry", "efficiency"];
        checks.push(check(
            "telemetry.efficiency".to_string(),
            require_f64(baseline, &path)?,
            require_f64(current, &path)?,
            tolerance,
        ));
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOTPATH: &str = r#"{
      "benchmark": "hotpath",
      "full_loop": { "ns_per_beat": 44.0, "speedup_vs_naive": 4.90 },
      "window_queries": { "speedup_vs_naive": 67.0 }
    }"#;

    fn multiapp_doc(n1: f64, n64: f64, skip_gain: f64) -> String {
        format!(
            r#"{{
              "benchmark": "multiapp",
              "points": [
                {{ "apps": 1, "speedup_vs_naive": {n1} }},
                {{ "apps": 64, "speedup_vs_naive": {n64} }}
              ],
              "idle_fleet": {{ "apps": 1000, "skip_gain": {skip_gain} }}
            }}"#
        )
    }

    #[test]
    fn parser_round_trips_benchmark_shapes() {
        let doc = Json::parse(HOTPATH).unwrap();
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("hotpath"));
        assert_eq!(
            doc.get("full_loop")
                .and_then(|s| s.get("speedup_vs_naive"))
                .and_then(Json::as_f64),
            Some(4.90)
        );
        let arr = Json::parse("[1, -2.5, 3e2, true, false, null, \"a\\\"b\"]").unwrap();
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(300.0));
        assert_eq!(items[3], Json::Bool(true));
        assert_eq!(items[5], Json::Null);
        assert_eq!(items[6].as_str(), Some("a\"b"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} junk").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    /// Regression: `parse_number` used to slurp every sign/dot/exponent
    /// byte and let `f64::parse` arbitrate, accepting non-JSON forms and
    /// mangling digit soup. Only the JSON number grammar passes now.
    #[test]
    fn malformed_number_rejection() {
        for soup in [
            "--1", "1.2.3", "1e", "1.", "01", "-01", "1e+", "1e-", "1..2", "1e5e5", "-.5", "-",
            "0x10", "1 2",
        ] {
            assert!(
                Json::parse(soup).is_err(),
                "digit soup {soup:?} must be rejected"
            );
            assert!(
                Json::parse(&format!("[{soup}]")).is_err(),
                "digit soup {soup:?} must be rejected inside a document"
            );
        }
        // The grammar still admits everything the benchmark emitters (and
        // JSON) produce.
        for (text, value) in [
            ("0", 0.0),
            ("-0", -0.0),
            ("42", 42.0),
            ("-17", -17.0),
            ("41.45", 41.45),
            ("0.001", 0.001),
            ("1e5", 1e5),
            ("1E5", 1e5),
            ("1.5e-3", 1.5e-3),
            ("-2.25E+2", -225.0),
        ] {
            assert_eq!(
                Json::parse(text).unwrap().as_f64(),
                Some(value),
                "valid JSON number {text:?} must parse"
            );
        }
    }

    #[test]
    fn hotpath_gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = Json::parse(HOTPATH).unwrap();
        // 10% down on one metric: inside the 15% tolerance.
        let ok = Json::parse(&HOTPATH.replace("4.90", "4.41")).unwrap();
        let checks = gate(&baseline, &ok, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(GateCheck::passed));
        // 20% down: outside.
        let bad = Json::parse(&HOTPATH.replace("4.90", "3.92")).unwrap();
        let checks = gate(&baseline, &bad, DEFAULT_TOLERANCE).unwrap();
        assert!(!checks[0].passed());
        assert!(checks[1].passed());
    }

    #[test]
    fn multiapp_gate_matches_points_by_app_count_and_gates_skip_gain() {
        let baseline = Json::parse(&multiapp_doc(2.0, 1.3, 1.6)).unwrap();
        let current = Json::parse(&multiapp_doc(1.9, 1.2, 1.5)).unwrap();
        let checks = gate(&baseline, &current, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(GateCheck::passed));

        // N=1 collapsing back to 0.24x is exactly what must fail.
        let regressed = Json::parse(&multiapp_doc(0.24, 1.3, 1.6)).unwrap();
        let checks = gate(&baseline, &regressed, DEFAULT_TOLERANCE).unwrap();
        assert!(!checks[0].passed());
        assert!(checks[0].metric.contains("apps=1"));
        assert!(checks[1].passed());
    }

    #[test]
    fn multiapp_gate_errors_on_missing_point_and_mismatched_benchmarks() {
        let baseline = Json::parse(&multiapp_doc(2.0, 1.3, 1.6)).unwrap();
        let trimmed = Json::parse(
            r#"{ "benchmark": "multiapp",
                 "points": [ { "apps": 1, "speedup_vs_naive": 2.0 } ] }"#,
        )
        .unwrap();
        assert!(gate(&baseline, &trimmed, DEFAULT_TOLERANCE)
            .unwrap_err()
            .contains("apps=64"));
        let hotpath = Json::parse(HOTPATH).unwrap();
        assert!(gate(&baseline, &hotpath, DEFAULT_TOLERANCE)
            .unwrap_err()
            .contains("mismatch"));
    }

    #[test]
    fn baseline_without_idle_fleet_skips_that_check() {
        let old = Json::parse(
            r#"{ "benchmark": "multiapp",
                 "points": [ { "apps": 1, "speedup_vs_naive": 2.0 } ] }"#,
        )
        .unwrap();
        let new = Json::parse(&multiapp_doc(2.0, 1.3, 1.6)).unwrap();
        let checks = gate(&old, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(checks.len(), 1);
    }

    fn multiapp_doc_with_telemetry(efficiency: f64) -> String {
        format!(
            r#"{{
              "benchmark": "multiapp",
              "points": [ {{ "apps": 1, "speedup_vs_naive": 2.0 }} ],
              "telemetry": {{ "apps": 512, "overhead_pct": 2.0, "efficiency": {efficiency} }}
            }}"#
        )
    }

    #[test]
    fn telemetry_efficiency_is_gated_when_the_baseline_has_it() {
        let baseline = Json::parse(&multiapp_doc_with_telemetry(0.98)).unwrap();
        // Within tolerance: telemetry 10% relatively more expensive.
        let ok = Json::parse(&multiapp_doc_with_telemetry(0.89)).unwrap();
        let checks = gate(&baseline, &ok, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(GateCheck::passed));
        // Instrumentation suddenly costing ~40% fails the gate.
        let bad = Json::parse(&multiapp_doc_with_telemetry(0.70)).unwrap();
        let checks = gate(&baseline, &bad, DEFAULT_TOLERANCE).unwrap();
        let telemetry = checks
            .iter()
            .find(|c| c.metric == "telemetry.efficiency")
            .unwrap();
        assert!(!telemetry.passed());
        // And a pre-telemetry baseline skips the check entirely.
        let old = Json::parse(
            r#"{ "benchmark": "multiapp",
                 "points": [ { "apps": 1, "speedup_vs_naive": 2.0 } ] }"#,
        )
        .unwrap();
        let current = Json::parse(&multiapp_doc_with_telemetry(0.98)).unwrap();
        let checks = gate(&old, &current, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(checks.len(), 1);
    }
}
