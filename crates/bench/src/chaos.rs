//! Deterministic chaos harness for daemon crash recovery.
//!
//! One driver thread owns N [`PowerDialClient`]s; the entire daemon side
//! — attach broker plus sharded daemon — runs in a forked child under a
//! [`Supervisor`]. The harness SIGKILLs the child at seeded-random points
//! in the beat stream, keeps the applications beating through the
//! outage, restarts the daemon, and measures how long each client takes
//! to read a *republished* decision through its (adopted, not replaced)
//! segment.
//!
//! Every run enforces the recovery invariants inline (panicking on
//! violation), so the same harness backs both the `chaos_recovery`
//! integration suite and the `chaos` benchmark binary:
//!
//! * **no false publishes** — while the daemon is dead, no client ever
//!   reads [`DecisionSource::Published`];
//! * **no torn reads** — every served decision decodes to a sane value
//!   (finite gain, in-range knob point), whatever rung it came from;
//! * **no beats lost beyond capacity** — the beat pacing keeps well under
//!   the ring capacity, so *zero* rejections are tolerated, and after
//!   each recovery every in-flight beat (including all beats emitted
//!   while the daemon was dead) drains to the successor;
//! * **bounded recovery** — every client must read a republished decision
//!   within [`ChaosConfig::recovery_deadline`] of the restart.
//!
//! Determinism note: kill points and outage lengths come from a seeded
//! splitmix64 stream, so a failing run names its seed and can be
//! replayed. Wall-clock interleavings (where exactly SIGKILL lands inside
//! the child's tick) still vary run to run — that nondeterminism is the
//! point of a chaos harness; the *workload schedule* is what the seed
//! pins down.

use std::time::{Duration, Instant};

use powerdial::control::daemon::DaemonConfig;
use powerdial::control::supervisor::{Supervisor, SupervisorConfig};
use powerdial::heartbeats::{Timestamp, TimestampDelta};
use powerdial_client::{ClientConfig, DecisionSource, PowerDialClient};

use crate::hotpath::{synthetic_knob_table, TARGET_RATE_BPS};

/// Knob settings in the synthetic table every app is served.
const SETTINGS: usize = 8;

/// Simulated beat period: 50 ms (20 beats/s against a 30 beats/s target,
/// so the controller is always actively boosting).
const BEAT_PERIOD: TimestampDelta = TimestampDelta::from_millis(50);

/// Real-time pause between driver rounds. The driver must not hot-spin:
/// the daemon is a forked child sharing the machine, and a spinning
/// parent can starve it for a whole scheduler timeslice — long enough to
/// flood a 256-slot ring and report phantom "losses" that are really
/// driver-induced overrun. ~100 µs per round keeps a 256-slot ring tens
/// of milliseconds away from overrun even with the child descheduled.
const ROUND_PACE: Duration = Duration::from_micros(100);

/// A seeded splitmix64 stream: the harness's only randomness.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[lo, hi]` (inclusive).
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Shape of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Concurrent instrumented applications (one client + segment each).
    pub apps: usize,
    /// SIGKILL/restart cycles to run.
    pub kills: usize,
    /// Seed for the kill schedule.
    pub seed: u64,
    /// Ring capacity each client requests from the broker.
    pub capacity: u64,
    /// Hard bound on time-to-republished-decision per client per cycle.
    pub recovery_deadline: Duration,
}

impl ChaosConfig {
    /// A run of `kills` cycles over `apps` applications with the default
    /// seed, 256-record rings, and a 30 s recovery bound.
    pub fn new(apps: usize, kills: usize) -> Self {
        ChaosConfig {
            apps,
            kills,
            seed: 0xD1A1_0F0F_5EED_C0DE,
            capacity: 256,
            recovery_deadline: Duration::from_secs(30),
        }
    }
}

/// What one SIGKILL/restart cycle measured.
#[derive(Debug, Clone)]
pub struct KillStats {
    /// Beats each app emitted into the dead daemon's ring.
    pub outage_beats_per_app: u64,
    /// Restart-to-republished latency for every client (one sample per
    /// app, unordered).
    pub client_recovery: Vec<Duration>,
    /// Restart-to-republished latency of the slowest client.
    pub all_republished: Duration,
    /// Beats rejected by full rings during this cycle (an invariant
    /// violation unless capacity was genuinely exceeded; the harness's
    /// pacing keeps this at zero).
    pub beats_dropped: u64,
}

/// Aggregate outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Per-cycle measurements, in order.
    pub kills: Vec<KillStats>,
    /// Total beats pushed by all clients over the whole run.
    pub beats_pushed: u64,
    /// Total beats rejected over the whole run (zero on a passing run).
    pub beats_dropped: u64,
    /// Daemon incarnations started (kills + 1 on a passing run).
    pub incarnations: u32,
}

/// Asserts a served decision is sane whatever rung it came from: a torn
/// read that leaked through the seqlock would show up here as a garbage
/// gain or an out-of-table knob point.
fn assert_decision_sane(current: &powerdial_client::CurrentDecision, context: &str) {
    assert!(
        current.decision.gain.is_finite()
            && current.decision.achieved_speedup.is_finite()
            && current.decision.expected_qos_loss.is_finite(),
        "{context}: non-finite decision {:?} — torn read leaked",
        current.decision
    );
    assert!(
        (current.decision.point_idx as usize) < SETTINGS,
        "{context}: knob point {} outside the {SETTINGS}-entry table",
        current.decision.point_idx
    );
}

/// Runs the full chaos schedule and returns its measurements, panicking
/// on any invariant violation (see the module docs for the list).
pub fn run(config: &ChaosConfig) -> ChaosReport {
    let socket_path = std::env::temp_dir().join(format!(
        "pd-chaos-{}-{:x}.sock",
        std::process::id(),
        config.seed
    ));
    let _ = std::fs::remove_file(&socket_path);
    let mut supervisor = Supervisor::new(
        SupervisorConfig {
            socket_path: socket_path.clone(),
            daemon: DaemonConfig {
                workers: 0,
                channel_capacity: config.capacity as usize,
                window_size: 20,
                inline_apps: 0,
                // Idle-skip stays off under chaos: the recovery-latency
                // assertions demand every quantum polls every channel.
                idle_skip_limit: 0,
                drain_cap: 0,
                telemetry: true,
                trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
                safe_point: 0,
            },
            target_rate: TARGET_RATE_BPS,
            baseline_rate: TARGET_RATE_BPS,
            poll_interval: Duration::from_micros(20),
            // Chaos restarts on purpose; the crash-loop guard would only
            // slow the schedule down.
            restart_backoff: Duration::ZERO,
            restart_backoff_cap: Duration::ZERO,
        },
        synthetic_knob_table(SETTINGS),
    );
    supervisor.start().expect("fork first daemon incarnation");

    let client_config = ClientConfig {
        capacity: config.capacity,
        attach_attempts: 20,
        retry_backoff: Duration::from_millis(2),
        grace: Duration::ZERO,
        ..ClientConfig::default()
    };
    let mut clients: Vec<PowerDialClient> = (0..config.apps)
        .map(|_| {
            PowerDialClient::register(&socket_path, client_config.clone())
                .expect("register with first incarnation")
        })
        .collect();

    let mut rng = SplitMix64::new(config.seed);
    let mut now = Timestamp::ZERO;
    let mut kills = Vec::with_capacity(config.kills);
    let mut dropped_so_far = 0u64;

    // Warm-up: beat until every client reads a published decision from
    // the first incarnation (the baseline state each cycle restores).
    let warm_deadline = Instant::now() + config.recovery_deadline;
    loop {
        for client in &mut clients {
            let _ = client.beat(now);
        }
        now += BEAT_PERIOD;
        let all_published = clients.iter_mut().all(|client| {
            let current = client.current_decision();
            assert_decision_sane(&current, "warm-up");
            current.source == DecisionSource::Published
        });
        if all_published {
            break;
        }
        assert!(
            Instant::now() < warm_deadline,
            "first incarnation never published to all {} apps",
            config.apps
        );
        std::thread::sleep(ROUND_PACE);
    }
    let warm_rejected: u64 = clients.iter().map(PowerDialClient::beats_rejected).sum();
    assert_eq!(warm_rejected, 0, "beats lost before the first kill");

    for cycle in 0..config.kills {
        // Run phase: a seeded stretch of healthy beating, so the kill
        // lands at a schedule point the seed controls (sometimes right
        // after a drain, sometimes deep into an undrained burst).
        let run_rounds = rng.in_range(3, 20);
        for _ in 0..run_rounds {
            for client in &mut clients {
                let _ = client.beat(now);
            }
            now += BEAT_PERIOD;
            std::thread::sleep(ROUND_PACE);
        }

        supervisor.kill().expect("SIGKILL daemon incarnation");

        // Outage phase: the apps keep beating into their rings; nobody is
        // draining. Every poll must degrade, never claim Published.
        let outage_rounds = rng.in_range(1, 10);
        for _ in 0..outage_rounds {
            for client in &mut clients {
                let _ = client.beat(now);
                let current = client.current_decision();
                assert_ne!(
                    current.source,
                    DecisionSource::Published,
                    "cycle {cycle}: published decision from a SIGKILLed daemon"
                );
                assert_decision_sane(&current, "outage");
            }
            now += BEAT_PERIOD;
            std::thread::sleep(ROUND_PACE);
        }

        // Restart and measure recovery: for each client, the time from
        // the successor's fork to its first republished decision read
        // through the *same* segment.
        let restarted_at = Instant::now();
        supervisor.start().expect("fork successor incarnation");
        let mut recovered: Vec<Option<Duration>> = vec![None; config.apps];
        let mut pending = config.apps;
        while pending > 0 {
            assert!(
                restarted_at.elapsed() < config.recovery_deadline,
                "cycle {cycle}: {pending} of {} clients not recovered within {:?} (seed {:#x})",
                config.apps,
                config.recovery_deadline,
                config.seed
            );
            for (client, slot) in clients.iter_mut().zip(recovered.iter_mut()) {
                if slot.is_some() {
                    continue;
                }
                let current = client.current_decision();
                assert_decision_sane(&current, "recovery");
                if current.source == DecisionSource::Published {
                    *slot = Some(restarted_at.elapsed());
                    pending -= 1;
                }
            }
            std::thread::sleep(ROUND_PACE);
        }
        let client_recovery: Vec<Duration> = recovered.into_iter().map(Option::unwrap).collect();
        let all_republished = *client_recovery.iter().max().unwrap();

        // Drain phase: every beat emitted during the outage is still in
        // the ring the successor adopted; it must all reach the daemon.
        let drain_deadline = Instant::now() + config.recovery_deadline;
        for client in &clients {
            while client.beats_in_flight() > 0 {
                assert!(
                    Instant::now() < drain_deadline,
                    "cycle {cycle}: successor never drained the outage beats"
                );
                std::thread::sleep(ROUND_PACE);
            }
        }

        let total_rejected: u64 = clients.iter().map(PowerDialClient::beats_rejected).sum();
        let beats_dropped = total_rejected - dropped_so_far;
        dropped_so_far = total_rejected;
        assert_eq!(
            beats_dropped, 0,
            "cycle {cycle}: beats lost without the ring ever reaching capacity"
        );

        kills.push(KillStats {
            outage_beats_per_app: outage_rounds,
            client_recovery,
            all_republished,
            beats_dropped,
        });
    }

    let beats_pushed = clients.iter().map(PowerDialClient::beats_pushed).sum();
    let incarnations = supervisor.incarnations();
    assert_eq!(
        incarnations,
        config.kills as u32 + 1,
        "every kill must be answered by exactly one restart"
    );
    supervisor.shutdown();
    let _ = std::fs::remove_file(&socket_path);

    ChaosReport {
        kills,
        beats_pushed,
        beats_dropped: dropped_so_far,
        incarnations,
    }
}

/// The `q`-th percentile (0–100) of a set of durations, by
/// nearest-rank on a sorted copy.
pub fn percentile(samples: &[Duration], q: f64) -> Duration {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q / 100.0) * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let x = a.in_range(3, 20);
            assert_eq!(x, b.in_range(3, 20));
            assert!((3..=20).contains(&x));
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
    }

    /// A miniature end-to-end run (real forks, real SIGKILLs) so the
    /// harness itself is exercised by `cargo test` at every scale; the
    /// full 50-kill, 64-app schedule lives in the workspace-level
    /// `chaos_recovery` suite.
    #[test]
    fn two_kill_smoke_run_holds_all_invariants() {
        let report = run(&ChaosConfig::new(3, 2));
        assert_eq!(report.kills.len(), 2);
        assert_eq!(report.incarnations, 3);
        assert_eq!(report.beats_dropped, 0);
        assert!(report.beats_pushed > 0);
    }
}
