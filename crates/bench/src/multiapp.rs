//! Shared harness for the multi-application daemon benchmarks.
//!
//! Models the paper's server-consolidation deployment at scale: N
//! instrumented applications each emit one heartbeat per unit of work into
//! their own channel, and one PowerDial daemon drains every channel once
//! per actuation quantum and steps the per-app O(1) controller. Two
//! variants run the identical closed loop:
//!
//! * [`DaemonMultiAppLoop`] — the lock-free path: SPSC rings into the
//!   sharded, threaded [`PowerDialDaemon`];
//! * [`ShmMultiAppLoop`] — the cross-process transport benchmarked
//!   in-process: every app's beats go through a real mapped
//!   shared-memory segment (memfd/tmpfile) drained by the same daemon;
//! * [`NaiveMultiAppLoop`] — the baseline: mutex-guarded channels into the
//!   serial [`SerialMutexDaemon`].
//!
//! Like the single-app hot path, the simulated applications respond to
//! control: each quantum's beat latencies derive from the gain the daemon
//! last decided and a stepped capacity schedule, so controllers keep
//! re-planning rather than settling into a single branch-predicted path.

use std::sync::Arc;

use powerdial::control::daemon::naive::{NaiveAppHandle, SerialMutexDaemon};
use powerdial::control::daemon::{AppHandle, DaemonConfig, DecisionView, PowerDialDaemon};
use powerdial::control::{ControllerConfig, RuntimeConfig};
use powerdial::heartbeats::channel::BeatSample;
use powerdial::heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmError, ShmProducer};
use powerdial::heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};

use crate::hotpath::{synthetic_knob_table, TARGET_RATE_BPS};

/// Heartbeats each application emits per actuation quantum (the paper's
/// 20-beat quantum).
pub const BEATS_PER_QUANTUM: usize = 20;

/// Knob settings in each application's synthetic table.
const SETTINGS: usize = 8;

/// Channel capacity: two quanta of slack over the per-tick burst.
const CHANNEL_CAPACITY: usize = BEATS_PER_QUANTUM * 3;

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(
        ControllerConfig::new(TARGET_RATE_BPS, TARGET_RATE_BPS).expect("valid controller"),
    )
}

/// The platform capacity available to app `index` at quantum `quantum`:
/// stepped per-app so different apps are in different control regimes at
/// any instant (as real consolidated machines would be).
fn capacity_at(index: usize, quantum: u64) -> f64 {
    match (quantum / 50 + index as u64) % 4 {
        0 => 1.0,
        1 => 0.5,
        2 => 0.75,
        _ => 0.35,
    }
}

/// One simulated application: its daemon handle and local clock.
struct SimApp<H> {
    handle: H,
    now: Timestamp,
}

/// Emits one quantum of beats for app `index`, paced by the last decided
/// gain, through any handle exposing a `beat`-shaped closure.
#[inline]
fn emit_quantum(
    now: &mut Timestamp,
    gain: f64,
    index: usize,
    quantum: u64,
    mut push: impl FnMut(Timestamp) -> bool,
) -> u64 {
    let capacity = capacity_at(index, quantum);
    let latency = TimestampDelta::from_secs_f64(1.0 / (TARGET_RATE_BPS * capacity * gain.max(1.0)));
    let mut emitted = 0;
    for _ in 0..BEATS_PER_QUANTUM {
        *now += latency;
        if push(*now) {
            emitted += 1;
        }
    }
    emitted
}

/// The lock-free closed loop: N apps → SPSC rings → sharded daemon.
pub struct DaemonMultiAppLoop {
    daemon: PowerDialDaemon,
    apps: Vec<SimApp<AppHandle>>,
    quantum: u64,
}

impl DaemonMultiAppLoop {
    /// Builds the loop with `app_count` registered applications and
    /// `workers` shard threads (0 = inline on the caller), telemetry on
    /// (the production default).
    pub fn new(app_count: usize, workers: usize) -> Self {
        Self::with_telemetry(app_count, workers, true)
    }

    /// [`DaemonMultiAppLoop::new`] with the telemetry plane switchable,
    /// so the benchmark can price instrumented vs uninstrumented drains
    /// (the `telemetry` section of `BENCH_multiapp.json`).
    pub fn with_telemetry(app_count: usize, workers: usize, telemetry: bool) -> Self {
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers,
            channel_capacity: CHANNEL_CAPACITY,
            window_size: BEATS_PER_QUANTUM,
            inline_apps: DaemonConfig::DEFAULT_INLINE_APPS,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .expect("valid daemon config");
        let apps = (0..app_count)
            .map(|_| SimApp {
                handle: daemon
                    .register(runtime_config(), synthetic_knob_table(SETTINGS))
                    .expect("valid runtime config"),
                now: Timestamp::ZERO,
            })
            .collect();
        DaemonMultiAppLoop {
            daemon,
            apps,
            quantum: 0,
        }
    }

    /// Runs one actuation quantum: every app emits its beats, then the
    /// daemon drains and controls. Returns beats processed this quantum.
    pub fn step(&mut self) -> u64 {
        let quantum = self.quantum;
        for (index, app) in self.apps.iter_mut().enumerate() {
            let gain = app.handle.latest_gain().unwrap_or(1.0);
            let handle = &mut app.handle;
            emit_quantum(&mut app.now, gain, index, quantum, |now| {
                handle.beat(now).is_ok()
            });
        }
        self.quantum += 1;
        self.daemon.tick()
    }

    /// Worker threads in use.
    pub fn workers(&self) -> usize {
        self.daemon.workers()
    }

    /// Total beats processed by the daemon so far.
    pub fn total_beats(&self) -> u64 {
        self.daemon.total_beats()
    }

    /// The daemon's cold-path telemetry snapshot (empty with telemetry
    /// off).
    pub fn telemetry_snapshot(&mut self) -> powerdial::control::telemetry::TelemetrySnapshot {
        self.daemon.telemetry_snapshot()
    }
}

/// One simulated shm application: its producer half, the daemon's
/// decision view, and local beat bookkeeping.
struct ShmSimApp {
    producer: ShmProducer,
    decisions: DecisionView,
    next_tag: HeartbeatTag,
    last_timestamp: Option<Timestamp>,
    now: Timestamp,
}

/// The cross-process transport under the same closed loop: N apps → mapped
/// shared-memory segments → the sharded daemon. Producer and consumer run
/// in one process here (a benchmark can't meaningfully schedule N forked
/// children), but every beat crosses a real memfd/tmpfile mapping with the
/// full protocol — so the measured delta vs [`DaemonMultiAppLoop`] is the
/// true cost of the cross-process transport.
pub struct ShmMultiAppLoop {
    daemon: PowerDialDaemon,
    apps: Vec<ShmSimApp>,
    quantum: u64,
}

impl ShmMultiAppLoop {
    /// Builds the loop with `app_count` shm-registered applications and
    /// `workers` shard threads (0 = inline on the caller).
    ///
    /// # Errors
    ///
    /// Returns the [`ShmError`] when a segment cannot be created or
    /// attached (e.g. fd exhaustion at very large `app_count`) — callers
    /// skip the shm rows rather than failing the whole benchmark.
    pub fn new(app_count: usize, workers: usize) -> Result<Self, ShmError> {
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers,
            channel_capacity: CHANNEL_CAPACITY,
            window_size: BEATS_PER_QUANTUM,
            inline_apps: DaemonConfig::DEFAULT_INLINE_APPS,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .expect("valid daemon config");
        let geometry = SegmentGeometry::for_beat_samples(CHANNEL_CAPACITY)?;
        let mut apps = Vec::with_capacity(app_count);
        for _ in 0..app_count {
            let segment = Arc::new(Segment::create(geometry)?);
            let producer = ShmProducer::attach(Arc::clone(&segment))?;
            let consumer = ShmConsumer::attach(segment)?;
            let decisions = daemon
                .register_shm(runtime_config(), synthetic_knob_table(SETTINGS), consumer)
                .expect("valid runtime config");
            apps.push(ShmSimApp {
                producer,
                decisions,
                next_tag: HeartbeatTag::default(),
                last_timestamp: None,
                now: Timestamp::ZERO,
            });
        }
        Ok(ShmMultiAppLoop {
            daemon,
            apps,
            quantum: 0,
        })
    }

    /// One actuation quantum over the shm transport.
    pub fn step(&mut self) -> u64 {
        let quantum = self.quantum;
        for (index, app) in self.apps.iter_mut().enumerate() {
            let gain = app.decisions.latest_gain().unwrap_or(1.0);
            let producer = &mut app.producer;
            let next_tag = &mut app.next_tag;
            let mut last = app.last_timestamp;
            // Same bookkeeping as `AppHandle::beat`: build the record with
            // the latency since the previous beat; tag and timestamp
            // advance even when a push is rejected.
            emit_quantum(&mut app.now, gain, index, quantum, |now| {
                let latency = match last {
                    Some(previous) => now - previous,
                    None => TimestampDelta::ZERO,
                };
                let tag = *next_tag;
                *next_tag = tag.next();
                last = Some(now);
                producer
                    .try_push(BeatSample {
                        tag,
                        timestamp: now,
                        latency,
                    })
                    .is_ok()
            });
            app.last_timestamp = last;
        }
        self.quantum += 1;
        self.daemon.tick()
    }

    /// Worker threads in use.
    pub fn workers(&self) -> usize {
        self.daemon.workers()
    }

    /// Total beats processed by the daemon so far.
    pub fn total_beats(&self) -> u64 {
        self.daemon.total_beats()
    }
}

/// An idle fleet: `app_count` registered applications that never emit a
/// beat. Ticking it measures the daemon's fixed per-quantum cost over
/// silent channels — the regime the silent-streak skip
/// (`DaemonConfig::idle_skip_limit`) targets: a consolidation host where
/// most tenants are between requests.
pub struct IdleFleetLoop {
    daemon: PowerDialDaemon,
    /// Handles kept alive so the channels stay registered (a dropped
    /// producer half would make the fleet "dead", not "idle").
    _apps: Vec<AppHandle>,
}

impl IdleFleetLoop {
    /// Builds the fleet with the given idle-skip threshold (0 = every tick
    /// polls every channel).
    pub fn new(app_count: usize, workers: usize, idle_skip_limit: u32) -> Self {
        let mut daemon = PowerDialDaemon::new(DaemonConfig {
            workers,
            channel_capacity: CHANNEL_CAPACITY,
            window_size: BEATS_PER_QUANTUM,
            inline_apps: DaemonConfig::DEFAULT_INLINE_APPS,
            idle_skip_limit,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .expect("valid daemon config");
        let apps = (0..app_count)
            .map(|_| {
                daemon
                    .register(runtime_config(), synthetic_knob_table(SETTINGS))
                    .expect("valid runtime config")
            })
            .collect();
        IdleFleetLoop {
            daemon,
            _apps: apps,
        }
    }

    /// One quantum over the silent fleet.
    pub fn tick(&mut self) {
        self.daemon.tick();
    }
}

/// The baseline closed loop: N apps → mutex channels → serial daemon.
pub struct NaiveMultiAppLoop {
    daemon: SerialMutexDaemon,
    apps: Vec<SimApp<NaiveAppHandle>>,
    quantum: u64,
}

impl NaiveMultiAppLoop {
    /// Builds the baseline loop with `app_count` registered applications.
    pub fn new(app_count: usize) -> Self {
        let mut daemon = SerialMutexDaemon::new(DaemonConfig {
            workers: 0,
            channel_capacity: CHANNEL_CAPACITY,
            window_size: BEATS_PER_QUANTUM,
            inline_apps: 0,
            idle_skip_limit: 0,
            drain_cap: 0,
            telemetry: true,
            trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
            safe_point: 0,
        })
        .expect("valid daemon config");
        let apps = (0..app_count)
            .map(|_| SimApp {
                handle: daemon
                    .register(runtime_config(), synthetic_knob_table(SETTINGS))
                    .expect("valid runtime config"),
                now: Timestamp::ZERO,
            })
            .collect();
        NaiveMultiAppLoop {
            daemon,
            apps,
            quantum: 0,
        }
    }

    /// One actuation quantum of the baseline loop.
    pub fn step(&mut self) -> u64 {
        let quantum = self.quantum;
        for (index, app) in self.apps.iter_mut().enumerate() {
            let gain = app.handle.latest_gain().unwrap_or(1.0);
            let handle = &mut app.handle;
            emit_quantum(&mut app.now, gain, index, quantum, |now| {
                handle.beat(now).is_ok()
            });
        }
        self.quantum += 1;
        self.daemon.tick()
    }

    /// Total beats processed by the serial daemon so far.
    pub fn total_beats(&self) -> u64 {
        self.daemon.total_beats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_loop_processes_every_emitted_beat() {
        let mut bench = DaemonMultiAppLoop::new(4, 0);
        let mut beats = 0;
        for _ in 0..50 {
            beats += bench.step();
        }
        assert_eq!(beats, 50 * 4 * BEATS_PER_QUANTUM as u64);
        assert_eq!(bench.total_beats(), beats);
        assert_eq!(bench.workers(), 0);
    }

    #[test]
    fn daemon_and_naive_loops_agree_beat_for_beat() {
        // Identical workload, identical control code: the lock-free and
        // mutex paths must process the same beats and reach the same
        // decisions.
        let mut fast = DaemonMultiAppLoop::new(3, 0);
        let mut slow = NaiveMultiAppLoop::new(3);
        for quantum in 0..100 {
            let a = fast.step();
            let b = slow.step();
            assert_eq!(a, b, "throughput diverged at quantum {quantum}");
        }
        for (fast_app, slow_app) in fast.apps.iter().zip(&slow.apps) {
            assert_eq!(
                fast_app.handle.latest_gain().unwrap().to_bits(),
                slow_app.handle.latest_gain().unwrap().to_bits()
            );
            assert_eq!(
                fast_app.handle.beats_processed(),
                slow_app.handle.beats_processed()
            );
        }
    }

    #[test]
    fn shm_and_daemon_loops_agree_beat_for_beat() {
        // Same workload, same control code, different transport: the
        // mapped-segment path must process the same beats and reach the
        // same decisions as the in-heap rings (extends the PR 2
        // equivalence suite across the process-boundary transport).
        let mut in_heap = DaemonMultiAppLoop::new(3, 0);
        let mut over_shm = ShmMultiAppLoop::new(3, 0).expect("shm backing available");
        for quantum in 0..100 {
            let a = in_heap.step();
            let b = over_shm.step();
            assert_eq!(a, b, "throughput diverged at quantum {quantum}");
        }
        for (heap_app, shm_app) in in_heap.apps.iter().zip(&over_shm.apps) {
            assert_eq!(
                heap_app.handle.latest_gain().unwrap().to_bits(),
                shm_app.decisions.latest_gain().unwrap().to_bits()
            );
            assert_eq!(
                heap_app.handle.beats_processed(),
                shm_app.decisions.beats_processed()
            );
        }
        assert_eq!(in_heap.total_beats(), over_shm.total_beats());
    }

    #[test]
    fn threaded_shm_loop_loses_nothing() {
        let mut bench = ShmMultiAppLoop::new(8, 2).expect("shm backing available");
        assert_eq!(bench.workers(), 2);
        let mut beats = 0;
        for _ in 0..25 {
            beats += bench.step();
        }
        assert_eq!(beats, 25 * 8 * BEATS_PER_QUANTUM as u64);
    }

    #[test]
    fn threaded_daemon_loop_loses_nothing() {
        let workers = 2;
        let mut bench = DaemonMultiAppLoop::new(8, workers);
        assert_eq!(bench.workers(), workers);
        let mut beats = 0;
        for _ in 0..25 {
            beats += bench.step();
        }
        assert_eq!(beats, 25 * 8 * BEATS_PER_QUANTUM as u64);
    }
}
