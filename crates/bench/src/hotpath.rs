//! Shared harness for the heartbeat→controller→actuator hot-path benchmarks.
//!
//! The PowerDial premise is that the control loop is cheap enough to run
//! once per heartbeat without perturbing the application it controls. This
//! module builds the closed loop the way a real deployment wires it —
//! monitor (windowed rate) → controller (speedup) → actuator (knob
//! schedule) — and steps it one heartbeat at a time, so both the Criterion
//! bench (`benches/hotpath.rs`) and the `hotpath` binary (which emits
//! `BENCH_hotpath.json`) measure the same code.
//!
//! Two variants exist:
//!
//! * [`HotPathLoop`] — the optimized O(1), allocation-free path:
//!   incremental [`SlidingWindow`] statistics plus the index-based
//!   [`PowerDialRuntime::on_heartbeat_idx`];
//! * [`NaiveHotPathLoop`] — the checked-in pre-optimization baseline:
//!   recompute-on-read [`NaiveSlidingWindow`] rates plus the clone-based
//!   [`NaivePowerDialRuntime`].

use powerdial::control::naive::NaivePowerDialRuntime;
use powerdial::control::{ControllerConfig, PowerDialRuntime, RuntimeConfig};
use powerdial::heartbeats::naive::NaiveSlidingWindow;
use powerdial::heartbeats::{HeartbeatMonitor, MonitorConfig, SlidingWindow, Timestamp};
use powerdial::knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
use powerdial_qos::{QosLoss, QosLossBound};

/// Target heart rate for the benchmark loop, in beats per second.
pub const TARGET_RATE_BPS: f64 = 30.0;

/// Builds a synthetic Pareto-optimal knob table with `settings` points whose
/// speedups rise geometrically from 1 (baseline) to ~4, mimicking the shape
/// of the paper's calibrated applications.
///
/// # Panics
///
/// Panics when `settings` is zero.
pub fn synthetic_knob_table(settings: usize) -> KnobTable {
    assert!(settings > 0, "knob table needs at least one setting");
    let values: Vec<f64> = (0..settings).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("knob", values, 0.0).expect("valid parameter"))
        .build()
        .expect("valid space");
    let points: Vec<CalibrationPoint> = (0..settings)
        .map(|i| {
            let fraction = if settings > 1 {
                i as f64 / (settings - 1) as f64
            } else {
                0.0
            };
            let speedup = 4.0f64.powf(fraction);
            CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).expect("index in range"),
                speedup,
                qos_loss: QosLoss::new((speedup - 1.0) * 0.03),
            }
        })
        .collect();
    KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).expect("non-empty table")
}

/// A power-capacity schedule: the fraction of nominal machine speed
/// available, stepped so the controller keeps re-planning (mirrors the
/// paper's power-cap experiment).
fn capacity_at(beat: u64) -> f64 {
    match (beat / 5_000) % 4 {
        0 => 1.0,
        1 => 0.5,
        2 => 0.75,
        _ => 0.35,
    }
}

/// The optimized closed loop: monitor → controller → actuator, all O(1)
/// per heartbeat and allocation-free in steady state.
pub struct HotPathLoop {
    monitor: HeartbeatMonitor,
    runtime: PowerDialRuntime,
    now: Timestamp,
    beat: u64,
}

impl HotPathLoop {
    /// Builds the loop over a synthetic `settings`-point knob table with the
    /// given sliding-window size and history retention.
    pub fn new(settings: usize, window_size: usize, history: usize) -> Self {
        let table = synthetic_knob_table(settings);
        let config = RuntimeConfig::new(
            ControllerConfig::new(TARGET_RATE_BPS, TARGET_RATE_BPS).expect("valid controller"),
        );
        let runtime = PowerDialRuntime::new(config, table).expect("valid runtime");
        let monitor = HeartbeatMonitor::new(
            MonitorConfig::new("hotpath")
                .with_window_size(window_size)
                .with_history_capacity(Some(history)),
        );
        HotPathLoop {
            monitor,
            runtime,
            now: Timestamp::ZERO,
            beat: 0,
        }
    }

    /// One full iteration: read the windowed rate, step the runtime, apply
    /// the decided gain to the simulated work unit, emit the heartbeat.
    /// Returns the decided knob gain (so callers can black-box it).
    #[inline]
    pub fn step(&mut self) -> f64 {
        let observed = self.monitor.window_rate().map(|r| r.beats_per_second());
        let decision = self.runtime.on_heartbeat_idx(observed);
        let capacity = capacity_at(self.beat);
        let latency_secs = 1.0 / (TARGET_RATE_BPS * capacity * decision.gain);
        self.now += powerdial::heartbeats::TimestampDelta::from_secs_f64(latency_secs);
        self.monitor.heartbeat(self.now);
        self.beat += 1;
        decision.gain
    }

    /// The monitor driven by this loop (for post-run inspection).
    pub fn monitor(&self) -> &HeartbeatMonitor {
        &self.monitor
    }
}

/// The pre-optimization closed loop: O(n) recompute-on-read rate queries
/// and the clone-per-beat runtime.
pub struct NaiveHotPathLoop {
    window: NaiveSlidingWindow,
    runtime: NaivePowerDialRuntime,
    last_latency_secs: f64,
    beat: u64,
}

impl NaiveHotPathLoop {
    /// Builds the baseline loop over the same synthetic table and window
    /// size as [`HotPathLoop::new`].
    pub fn new(settings: usize, window_size: usize) -> Self {
        let table = synthetic_knob_table(settings);
        let config = RuntimeConfig::new(
            ControllerConfig::new(TARGET_RATE_BPS, TARGET_RATE_BPS).expect("valid controller"),
        );
        let runtime = NaivePowerDialRuntime::new(config, table).expect("valid runtime");
        NaiveHotPathLoop {
            window: NaiveSlidingWindow::new(window_size),
            runtime,
            last_latency_secs: 0.0,
            beat: 0,
        }
    }

    /// One full iteration of the baseline loop; returns the decided gain.
    #[inline]
    pub fn step(&mut self) -> f64 {
        let observed = self
            .window
            .rate()
            .expect("no overflow")
            .map(|r| r.beats_per_second());
        let decision = self.runtime.on_heartbeat(observed);
        let capacity = capacity_at(self.beat);
        self.last_latency_secs = 1.0 / (TARGET_RATE_BPS * capacity * decision.gain);
        // The monitor-based loop never sees the first unit's latency (the
        // first heartbeat has latency zero by convention); mirror that so
        // both loops observe identical windows.
        if self.beat > 0 {
            self.window
                .push(powerdial::heartbeats::TimestampDelta::from_secs_f64(
                    self.last_latency_secs,
                ));
        }
        self.beat += 1;
        decision.gain
    }
}

/// Builds a pair of fully-warmed sliding windows (incremental and naive)
/// with identical contents, for the statistics-query micro-benchmarks.
pub fn warmed_windows(window_size: usize) -> (SlidingWindow, NaiveSlidingWindow) {
    let mut incremental = SlidingWindow::new(window_size);
    let mut naive = NaiveSlidingWindow::new(window_size);
    // Pseudo-random latencies around the 33 ms a 30 beats/s loop sees.
    let mut state = 0x9E37_79B9u64;
    for _ in 0..window_size * 2 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = (state >> 33) % 20_000_000;
        let latency = powerdial::heartbeats::TimestampDelta::from_nanos(23_000_000 + jitter);
        incremental.push(latency);
        naive.push(latency);
    }
    (incremental, naive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loops_converge_to_target_rate() {
        let mut optimized = HotPathLoop::new(8, 20, 64);
        for _ in 0..2_000 {
            optimized.step();
        }
        let rate = optimized
            .monitor()
            .window_rate()
            .unwrap()
            .beats_per_second();
        assert!(
            (rate - TARGET_RATE_BPS).abs() < 10.0,
            "hot loop should track the target, got {rate}"
        );
    }

    #[test]
    fn optimized_and_naive_loops_decide_identically() {
        let mut optimized = HotPathLoop::new(8, 20, 64);
        let mut naive = NaiveHotPathLoop::new(8, 20);
        for beat in 0..500 {
            let a = optimized.step();
            let b = naive.step();
            assert_eq!(a.to_bits(), b.to_bits(), "gain diverged at beat {beat}");
        }
    }

    #[test]
    fn warmed_windows_agree() {
        let (incremental, naive) = warmed_windows(128);
        assert_eq!(incremental.len(), 128);
        let a = incremental.statistics().unwrap();
        let b = naive.statistics().unwrap();
        assert!((a.mean_latency_secs - b.mean_latency_secs).abs() < 1e-12);
    }
}
