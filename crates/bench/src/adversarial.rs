//! Adversarial chaos: a seeded *hostile-client* campaign against one
//! in-process daemon, with a fault-free twin proving non-interference.
//!
//! Where [`crate::chaos`] SIGKILLs the daemon and measures recovery,
//! this mode attacks the daemon *from the application side* and pins the
//! fault-containment contract:
//!
//! * **hostile injections** — app panics (via the daemon's explicit
//!   fault hook), poison latency streams that overflow the rate window,
//!   beat floods far past `drain_cap`, shared-memory header scribbling,
//!   register/vanish churn, and worker-thread kills;
//! * **the daemon never aborts** — the whole campaign runs in-process,
//!   so any escaped panic fails the run on the spot;
//! * **blame is exact** — every quarantined app is one the campaign
//!   attacked; an injected panic is quarantined within one quantum, a
//!   poison stream within [`POISON_BLAME_QUANTA`];
//! * **killed shards resurrect** — every worker kill is answered by one
//!   [`respawn_dead`] that migrates the survivors back into service;
//! * **unaffected apps are bit-identical** — a twin daemon with the same
//!   fleet and the same beat schedule, but no faults, must agree with
//!   the attacked daemon on every unaffected app's decision observables
//!   (`f64`s compared by bit pattern), every quantum in which their
//!   drained-beat counts line up, and unconditionally at the end of the
//!   campaign.
//!
//! Determinism: the schedule is a seeded splitmix64 stream
//! ([`crate::chaos::SplitMix64`]); a failing run names its seed and is
//! replayed with `POWERDIAL_CHAOS_SEED` (see [`seed_from_env`]).
//!
//! [`respawn_dead`]: powerdial::control::daemon::PowerDialDaemon::respawn_dead

use std::sync::Arc;

use powerdial::control::daemon::{AppHandle, AppId, DaemonConfig, DecisionView, PowerDialDaemon};
use powerdial::control::{ControllerConfig, QuarantineReason, RuntimeConfig};
use powerdial::heartbeats::channel::BeatSample;
use powerdial::heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial::heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use powerdial::knobs::PointIdx;

use crate::chaos::SplitMix64;
use crate::hotpath::{synthetic_knob_table, TARGET_RATE_BPS};

/// Knob settings in the synthetic table every app is served.
const SETTINGS: usize = 8;
/// Heartbeats per actuation quantum; the harness feeds exactly one
/// quantum per app per tick, so decisions publish every round.
const QUANTUM_BEATS: u32 = 4;
/// Per-slot drain cap under attack — floods must not let one hostile app
/// monopolize a quantum.
const DRAIN_CAP: usize = 32;
/// A poison (window-overflow) stream must be blamed within this many
/// quanta of injection: the huge latencies fold silently, and the next
/// quantum-boundary rate read surfaces the typed overflow.
pub const POISON_BLAME_QUANTA: u64 = 3;
/// Quanta an app stays off-limits for poison after a flood: the blame
/// deadline assumes the poison beats drain promptly, so the backlog a
/// flood leaves behind must clear first (160 extra beats at a net
/// `DRAIN_CAP - QUANTUM_BEATS` per quantum).
const FLOOD_COOLDOWN_QUANTA: u64 = 10;
/// Quanta the campaign runs fault-free at the end so every backlog
/// (floods, respawn catch-up) drains before the final strict comparison.
const FINAL_SYNC_QUANTA: u64 = 24;

/// Shape of an adversarial campaign.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Fleet size (one registered app each; every fourth is shm-backed).
    pub apps: usize,
    /// Hostile injections to perform.
    pub injections: usize,
    /// Seed for the injection schedule.
    pub seed: u64,
    /// Worker threads in both daemons.
    pub workers: usize,
}

impl AdversarialConfig {
    /// A campaign of `injections` seeded attacks on `apps` applications
    /// over two worker shards.
    pub fn new(apps: usize, injections: usize) -> Self {
        AdversarialConfig {
            apps,
            injections,
            seed: 0x00BA_D5EE_D50F_BEEF,
            workers: 2,
        }
    }
}

/// What a passing campaign did.
#[derive(Debug)]
pub struct AdversarialReport {
    /// Quanta both daemons ran.
    pub quanta: u64,
    /// Apps quarantined in the attacked daemon (every one attacked).
    pub quarantined: usize,
    /// Worker kills, each answered by one respawn.
    pub worker_kills: u64,
    /// Beat floods injected (identically into both daemons).
    pub floods: usize,
    /// Shared-memory headers scribbled.
    pub scribbles: usize,
    /// Register/vanish churn apps cycled through the attacked daemon.
    pub churned: usize,
    /// Apps that stayed unaffected and were compared against the twin.
    pub compared_apps: usize,
    /// Per-app per-quantum bit-equality checks that ran (and passed).
    pub snapshots_compared: u64,
    /// The attacked daemon's final telemetry snapshot, rendered to JSON
    /// (incidents section included) for downstream gate parsing.
    pub telemetry_json: String,
}

/// The campaign seed: `POWERDIAL_CHAOS_SEED` (decimal or 0x-hex) when
/// set, else `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("POWERDIAL_CHAOS_SEED") {
        Ok(seed) => seed
            .trim()
            .parse()
            .or_else(|_| u64::from_str_radix(seed.trim().trim_start_matches("0x"), 16))
            .expect("POWERDIAL_CHAOS_SEED must be a u64 (decimal or 0x-hex)"),
        Err(_) => default,
    }
}

/// One registered victim: the transport the harness pushes through plus
/// the observables it compares. Every fourth app is shm-backed so the
/// header-scribbler fault has real shared memory to deface.
enum Victim {
    Chan(AppHandle),
    Shm {
        view: DecisionView,
        producer: ShmProducer,
        segment: Arc<Segment>,
    },
}

impl Victim {
    fn push(&mut self, sample: BeatSample) {
        // Rejections are tolerated by design: a quarantined app's parked
        // ring fills up, and a flooded ring may brim — both are the
        // attack working, not a harness bug.
        match self {
            Victim::Chan(app) => {
                let _ = app.push_sample(sample);
            }
            Victim::Shm { producer, .. } => {
                let _ = producer.try_push(sample);
            }
        }
    }

    fn beats_processed(&self) -> u64 {
        match self {
            Victim::Chan(app) => app.beats_processed(),
            Victim::Shm { view, .. } => view.beats_processed(),
        }
    }

    fn latest_point(&self) -> Option<PointIdx> {
        match self {
            Victim::Chan(app) => app.latest_point(),
            Victim::Shm { view, .. } => view.latest_point(),
        }
    }

    fn latest_gain_bits(&self) -> Option<u64> {
        match self {
            Victim::Chan(app) => app.latest_gain().map(f64::to_bits),
            Victim::Shm { view, .. } => view.latest_gain().map(f64::to_bits),
        }
    }

    fn achieved_bits(&self) -> Option<u64> {
        match self {
            Victim::Chan(app) => app.achieved_speedup().map(f64::to_bits),
            Victim::Shm { view, .. } => view.achieved_speedup().map(f64::to_bits),
        }
    }

    fn quarantine_reason(&self) -> Option<QuarantineReason> {
        match self {
            Victim::Chan(app) => app.quarantine_reason(),
            Victim::Shm { view, .. } => view.quarantine_reason(),
        }
    }

    fn id(&self) -> AppId {
        match self {
            Victim::Chan(app) => app.id(),
            Victim::Shm { view, .. } => view.id(),
        }
    }

    fn segment(&self) -> Option<&Arc<Segment>> {
        match self {
            Victim::Chan(_) => None,
            Victim::Shm { segment, .. } => Some(segment),
        }
    }
}

fn daemon(config: &AdversarialConfig) -> PowerDialDaemon {
    PowerDialDaemon::new(DaemonConfig {
        workers: config.workers,
        channel_capacity: 256,
        window_size: 8,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: DRAIN_CAP,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })
    .expect("valid adversarial daemon config")
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig::new(
        ControllerConfig::new(TARGET_RATE_BPS, TARGET_RATE_BPS).expect("valid controller"),
    )
    .with_quantum_heartbeats(QUANTUM_BEATS)
    .expect("nonzero quantum")
}

fn register_fleet(daemon: &mut PowerDialDaemon, apps: usize) -> Vec<Victim> {
    (0..apps)
        .map(|i| {
            if i % 4 == 3 {
                let segment = Arc::new(
                    Segment::create(SegmentGeometry::for_beat_samples(256).expect("geometry"))
                        .expect("create segment"),
                );
                let producer = ShmProducer::attach(Arc::clone(&segment)).expect("producer");
                let consumer = ShmConsumer::attach(Arc::clone(&segment)).expect("consumer");
                let view = daemon
                    .register_shm(runtime_config(), synthetic_knob_table(SETTINGS), consumer)
                    .expect("register shm victim");
                Victim::Shm {
                    view,
                    producer,
                    segment,
                }
            } else {
                Victim::Chan(
                    daemon
                        .register(runtime_config(), synthetic_knob_table(SETTINGS))
                        .expect("register channel victim"),
                )
            }
        })
        .collect()
}

/// The shared healthy beat stream: latencies wander around the target so
/// the controller keeps re-deciding; identical for both daemons.
fn beat(tag: u64) -> BeatSample {
    let latency_ms = 20 + (tag * 13) % 40;
    BeatSample {
        tag: HeartbeatTag(tag),
        timestamp: Timestamp::from_millis(tag * 45),
        latency: TimestampDelta::from_millis(if tag == 0 { 0 } else { latency_ms }),
    }
}

/// A half-range poison latency: two of them overflow the window's summed
/// nanoseconds, surfacing as a typed overflow at the next rate read.
fn poison_beat(tag: u64) -> BeatSample {
    BeatSample {
        tag: HeartbeatTag(tag),
        timestamp: Timestamp::from_millis(tag * 45),
        latency: TimestampDelta::from_nanos(1u64 << 63),
    }
}

/// Picks an app the campaign has not touched and that has no flood
/// backlog outstanding, or `None` when the fleet is exhausted.
fn pick_bystander(
    rng: &mut SplitMix64,
    affected: &[bool],
    busy_until: &[u64],
    quanta: u64,
) -> Option<usize> {
    let candidates: Vec<usize> = (0..affected.len())
        .filter(|&i| !affected[i] && busy_until[i] <= quanta)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.in_range(0, candidates.len() as u64 - 1) as usize])
    }
}

/// Runs the campaign, panicking on any contract violation, and returns
/// what happened.
#[allow(clippy::too_many_lines)]
pub fn run_adversarial(config: &AdversarialConfig) -> AdversarialReport {
    assert!(config.workers >= 1, "worker kills need worker threads");
    assert!(
        config.apps >= 8,
        "the fleet must outnumber the attack surface"
    );
    let mut attacked = daemon(config);
    let mut twin = daemon(config);
    let mut fleet_a = register_fleet(&mut attacked, config.apps);
    let mut fleet_t = register_fleet(&mut twin, config.apps);

    let mut rng = SplitMix64::new(config.seed);
    let mut tags = vec![0u64; config.apps];
    // Apps the campaign has touched; everything else must stay
    // bit-identical to the twin.
    let mut affected = vec![false; config.apps];
    let mut busy_until = vec![0u64; config.apps];
    let mut expected_panics: Vec<usize> = Vec::new();
    let mut pending_poisons: Vec<(usize, u64)> = Vec::new();
    let mut churn: Vec<(AppHandle, u64)> = Vec::new();
    let mut quanta = 0u64;
    let mut worker_kills = 0u64;
    let mut floods = 0usize;
    let mut scribbles = 0usize;
    let mut churned = 0usize;
    let mut snapshots_compared = 0u64;

    // One synchronized quantum: identical feeds into both fleets, one
    // tick each side. `$poison:expr` names the app (if any) whose
    // attacked-side stream is poisoned this quantum.
    macro_rules! quantum {
        ($poison:expr) => {{
            let poison: Option<usize> = $poison;
            for (i, victim) in fleet_a.iter_mut().enumerate() {
                for b in 0..u64::from(QUANTUM_BEATS) {
                    if poison == Some(i) {
                        victim.push(poison_beat(tags[i] + b));
                    } else {
                        victim.push(beat(tags[i] + b));
                    }
                }
            }
            for (i, victim) in fleet_t.iter_mut().enumerate() {
                for b in 0..u64::from(QUANTUM_BEATS) {
                    victim.push(beat(tags[i] + b));
                }
            }
            for tag in tags.iter_mut() {
                *tag += u64::from(QUANTUM_BEATS);
            }
            attacked.tick();
            twin.tick();
            quanta += 1;
        }};
    }

    // Post-quantum bookkeeping: blame deadlines, bystander innocence,
    // and bit-comparison wherever beat counts line up.
    macro_rules! settle_and_check {
        () => {{
            for &i in &expected_panics {
                assert_eq!(
                    fleet_a[i].quarantine_reason(),
                    Some(QuarantineReason::Panic),
                    "seed {:#x}: injected panic on app {i} not quarantined within one quantum",
                    config.seed
                );
            }
            expected_panics.clear();
            pending_poisons.retain(|&(i, deadline)| match fleet_a[i].quarantine_reason() {
                Some(QuarantineReason::WindowOverflow) => false,
                Some(other) => panic!(
                    "seed {:#x}: poison app {i} quarantined as {other:?}, not WindowOverflow",
                    config.seed
                ),
                None => {
                    assert!(
                        quanta < deadline,
                        "seed {:#x}: poison app {i} not blamed within \
                             {POISON_BLAME_QUANTA} quanta",
                        config.seed
                    );
                    true
                }
            });
            // Blame never lands on a bystander.
            for (i, victim) in fleet_a.iter().enumerate() {
                if !affected[i] {
                    assert!(
                        victim.quarantine_reason().is_none(),
                        "seed {:#x}: unattacked app {i} was quarantined",
                        config.seed
                    );
                }
            }
            // Bit-equality wherever the drained-beat counts line up (a
            // worker kill or flood backlog can lag the attacked side by
            // whole quanta; decisions are invariant to batch boundaries,
            // so equal counts demand bit-equal observables).
            for i in 0..config.apps {
                if affected[i] {
                    continue;
                }
                let (a, t) = (&fleet_a[i], &fleet_t[i]);
                if a.beats_processed() != t.beats_processed() {
                    continue;
                }
                assert_eq!(
                    a.latest_point(),
                    t.latest_point(),
                    "seed {:#x}: app {i} knob point diverged from the no-fault twin",
                    config.seed
                );
                assert_eq!(
                    a.latest_gain_bits(),
                    t.latest_gain_bits(),
                    "seed {:#x}: app {i} gain bits diverged",
                    config.seed
                );
                assert_eq!(
                    a.achieved_bits(),
                    t.achieved_bits(),
                    "seed {:#x}: app {i} achieved-speedup bits diverged",
                    config.seed
                );
                snapshots_compared += 1;
            }
            // Vanish half of the churn: registrations past their dwell
            // are unregistered (the "client disappeared" shape).
            churn.retain(|(handle, vanish_at)| {
                if quanta >= *vanish_at {
                    assert!(
                        attacked.unregister(handle.id()),
                        "seed {:#x}: churn app failed to unregister",
                        config.seed
                    );
                    false
                } else {
                    true
                }
            });
        }};
    }

    // Warm-up: a few clean quanta so every app has published at least
    // one decision before the attack begins.
    for _ in 0..4 {
        quantum!(None);
        settle_and_check!();
    }

    let max_affected = config.apps / 2;
    for _ in 0..config.injections {
        // A seeded stretch of healthy quanta between attacks.
        for _ in 0..rng.in_range(1, 3) {
            quantum!(None);
            settle_and_check!();
        }

        let affected_count = affected.iter().filter(|&&a| a).count();
        let mut kind = rng.next_u64() % 100;
        // Consuming attacks stop once half the fleet is gone: the
        // bit-equality claim needs a population of untouched apps.
        if affected_count >= max_affected && kind < 75 {
            kind = 45; // degrade to a flood, which consumes nobody
        }
        match kind {
            // Injected panic: quarantined within exactly one quantum.
            0..=24 => {
                let i = pick_bystander(&mut rng, &affected, &busy_until, quanta)
                    .expect("bystander available");
                affected[i] = true;
                assert!(attacked.inject_app_panic(fleet_a[i].id()));
                expected_panics.push(i);
                quantum!(None);
                settle_and_check!();
            }
            // Poison latency stream: typed overflow, blamed within
            // POISON_BLAME_QUANTA.
            25..=44 => {
                let i = pick_bystander(&mut rng, &affected, &busy_until, quanta)
                    .expect("bystander available");
                affected[i] = true;
                pending_poisons.push((i, quanta + POISON_BLAME_QUANTA));
                quantum!(Some(i));
                settle_and_check!();
            }
            // Beat flood far past drain_cap, into BOTH daemons: hostile
            // but deterministic, so the flooded app stays in the
            // compared population (drain_cap spreads the backlog over
            // quanta identically on each side).
            45..=59 => {
                floods += 1;
                let i = rng.in_range(0, config.apps as u64 - 1) as usize;
                for b in 0..(5 * DRAIN_CAP as u64) {
                    let sample = beat(tags[i] + b);
                    fleet_a[i].push(sample);
                    fleet_t[i].push(sample);
                }
                tags[i] += 5 * DRAIN_CAP as u64;
                busy_until[i] = quanta + FLOOD_COOLDOWN_QUANTA;
                quantum!(None);
                settle_and_check!();
            }
            // Header scribbler: deface a shm app's ring indices. The
            // daemon must survive whatever it drains; the app itself is
            // forfeit (garbage in, garbage or quarantine out).
            60..=74 => {
                let shm_bystander =
                    (0..config.apps).find(|&i| !affected[i] && fleet_a[i].segment().is_some());
                if let Some(i) = shm_bystander {
                    scribbles += 1;
                    affected[i] = true;
                    let header = fleet_a[i].segment().unwrap().header();
                    use std::sync::atomic::Ordering;
                    header.tail.store(rng.next_u64(), Ordering::Release);
                    header.head.store(rng.next_u64(), Ordering::Release);
                }
                quantum!(None);
                settle_and_check!();
            }
            // Worker kill: the shard dies holding its lock; one respawn
            // resurrects it at the same index with survivors migrated.
            75..=89 => {
                let w = rng.in_range(0, config.workers as u64 - 1) as usize;
                assert!(attacked.inject_worker_panic(w));
                worker_kills += 1;
                quantum!(None);
                assert_eq!(
                    attacked.respawn_dead(),
                    1,
                    "seed {:#x}: worker {w} kill not answered by one respawn",
                    config.seed
                );
                assert_eq!(attacked.live_workers(), config.workers);
                settle_and_check!();
            }
            // Register/vanish churn: appear, beat a little, disappear.
            _ => {
                churned += 1;
                let mut handle = attacked
                    .register(runtime_config(), synthetic_knob_table(SETTINGS))
                    .expect("churn registration");
                for b in 0..u64::from(QUANTUM_BEATS) {
                    let _ = handle.push_sample(beat(b));
                }
                churn.push((handle, quanta + rng.in_range(1, 3)));
                quantum!(None);
                settle_and_check!();
            }
        }
    }

    // Final sync: fault-free quanta drain every backlog, then the
    // unconditional comparison — every unaffected app must agree with
    // the twin on counts and on every observable, bit for bit.
    for _ in 0..FINAL_SYNC_QUANTA {
        quantum!(None);
        settle_and_check!();
    }
    let mut compared_apps = 0usize;
    for i in 0..config.apps {
        if affected[i] {
            continue;
        }
        compared_apps += 1;
        let (a, t) = (&fleet_a[i], &fleet_t[i]);
        assert_eq!(
            a.beats_processed(),
            t.beats_processed(),
            "seed {:#x}: app {i} never re-converged with the twin",
            config.seed
        );
        assert_eq!(a.latest_point(), t.latest_point());
        assert_eq!(a.latest_gain_bits(), t.latest_gain_bits());
        assert_eq!(a.achieved_bits(), t.achieved_bits());
    }
    assert!(
        pending_poisons.is_empty(),
        "seed {:#x}: poison blame outstanding at campaign end",
        config.seed
    );
    assert_eq!(
        attacked.shard_respawns(),
        worker_kills,
        "seed {:#x}: kills and respawns disagree",
        config.seed
    );

    let quarantined = attacked.quarantined_apps();
    let telemetry_json = attacked.telemetry_snapshot().to_json();
    AdversarialReport {
        quanta,
        quarantined,
        worker_kills,
        floods,
        scribbles,
        churned,
        compared_apps,
        snapshots_compared,
        telemetry_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_env_default_passes_through() {
        assert_eq!(seed_from_env(7), seed_from_env(7));
    }

    /// A miniature campaign so the harness itself runs under plain
    /// `cargo test`; the full 64-app, 50-injection schedule lives in the
    /// `chaos_adversarial` suite.
    #[test]
    fn small_campaign_holds_all_invariants() {
        let report = run_adversarial(&AdversarialConfig::new(8, 6));
        assert!(report.quanta > 0);
        assert!(report.compared_apps >= 4);
        assert!(report.snapshots_compared > 0);
    }
}
