//! Server-consolidation provisioning models (Equations 20–24).

use serde::{Deserialize, Serialize};

use crate::error::AnalyticError;

/// The original system being consolidated: `n_orig` machines, each able to do
/// `w_machine` units of work, running at an average utilization `u_orig`,
/// drawing `p_load` watts when loaded and `p_idle` watts when idle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationModel {
    n_orig: usize,
    w_machine: f64,
    u_orig: f64,
    p_load: f64,
    p_idle: f64,
}

/// The outcome of consolidating with a speedup `S(QoS)` available at the QoS
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationPlan {
    /// Machines in the original system (`N_orig`).
    pub original_machines: usize,
    /// Machines needed after consolidation (`N_new`, Equation 21).
    pub consolidated_machines: usize,
    /// Average utilization of the original system.
    pub original_utilization: f64,
    /// Average utilization of the consolidated system.
    pub consolidated_utilization: f64,
    /// Average power of the original system in watts (Equation 22).
    pub original_power_watts: f64,
    /// Average power of the consolidated system in watts (Equation 23).
    pub consolidated_power_watts: f64,
    /// Average power saved in watts (Equation 24).
    pub power_savings_watts: f64,
}

impl ConsolidationPlan {
    /// The fractional power reduction (savings divided by original power).
    pub fn relative_savings(&self) -> f64 {
        if self.original_power_watts == 0.0 {
            0.0
        } else {
            self.power_savings_watts / self.original_power_watts
        }
    }

    /// The fractional reduction in machine count.
    pub fn machine_reduction(&self) -> f64 {
        1.0 - self.consolidated_machines as f64 / self.original_machines as f64
    }
}

/// Per-machine speedup a consolidated system of `machines` machines needs
/// to absorb `offered_load` machine-units of work, floored at 1 (a machine
/// never slows below baseline to "absorb" light load).
///
/// This is the inversion of Equation 21 used at runtime: provisioning picks
/// `N_new` from the peak speedup, and at any instant the per-machine control
/// target is the speedup that makes `N_new` machines cover the offered load.
/// Both the analytic sweep and the daemon-driven live sweep derive their
/// control targets from this one function, so the two paths are comparable
/// point for point.
pub fn required_speedup(offered_load: f64, machines: usize) -> f64 {
    if machines == 0 {
        return 1.0;
    }
    (offered_load / machines as f64).max(1.0)
}

impl ConsolidationModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns an error when the machine count is zero, the per-machine work
    /// or powers are invalid, or the utilization is outside `[0, 1]`.
    pub fn new(
        n_orig: usize,
        w_machine: f64,
        u_orig: f64,
        p_load: f64,
        p_idle: f64,
    ) -> Result<Self, AnalyticError> {
        if n_orig == 0 {
            return Err(AnalyticError::ZeroMachines);
        }
        if !w_machine.is_finite() || w_machine <= 0.0 {
            return Err(AnalyticError::InvalidTime {
                parameter: "w_machine",
                value: w_machine,
            });
        }
        if !(0.0..=1.0).contains(&u_orig) || !u_orig.is_finite() {
            return Err(AnalyticError::InvalidUtilization {
                utilization: u_orig,
            });
        }
        for (name, value) in [("p_load", p_load), ("p_idle", p_idle)] {
            if !value.is_finite() || value < 0.0 {
                return Err(AnalyticError::InvalidPower {
                    parameter: name,
                    value,
                });
            }
        }
        if p_idle > p_load {
            return Err(AnalyticError::InvalidPower {
                parameter: "p_idle exceeds p_load",
                value: p_idle,
            });
        }
        Ok(ConsolidationModel {
            n_orig,
            w_machine,
            u_orig,
            p_load,
            p_idle,
        })
    }

    /// Total work the system is provisioned for (`W_total`, Equation 20).
    pub fn total_work(&self) -> f64 {
        self.w_machine * self.n_orig as f64
    }

    /// Number of machines needed to meet peak load with speedup `s`
    /// (`N_new`, Equation 21).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError::InvalidSpeedup`] when `s < 1` or not finite.
    pub fn machines_needed(&self, s: f64) -> Result<usize, AnalyticError> {
        if !s.is_finite() || s < 1.0 {
            return Err(AnalyticError::InvalidSpeedup { speedup: s });
        }
        let n_new = (self.total_work() / s / self.w_machine).ceil() as usize;
        Ok(n_new.max(1))
    }

    /// Average power of a system of `machines` machines whose average
    /// utilization is `utilization` (Equations 22–23): loaded machines draw
    /// `p_load`, the idle remainder draws `p_idle`.
    pub fn average_power(&self, machines: usize, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        machines as f64 * (u * self.p_load + (1.0 - u) * self.p_idle)
    }

    /// Evaluates the full consolidation plan for a speedup `s`.
    ///
    /// The consolidated system serves the same average offered load with
    /// fewer machines, so its average utilization rises by the ratio
    /// `N_orig / N_new` (capped at 1).
    ///
    /// # Panics
    ///
    /// Panics if `s < 1`; use [`ConsolidationModel::try_consolidate`] for a
    /// fallible variant.
    pub fn consolidate(&self, s: f64) -> ConsolidationPlan {
        self.try_consolidate(s).expect("speedup must be at least 1")
    }

    /// Fallible variant of [`ConsolidationModel::consolidate`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError::InvalidSpeedup`] when `s < 1` or not finite.
    pub fn try_consolidate(&self, s: f64) -> Result<ConsolidationPlan, AnalyticError> {
        let n_new = self.machines_needed(s)?;
        let u_new = (self.u_orig * self.n_orig as f64 / n_new as f64).min(1.0);
        let p_orig = self.average_power(self.n_orig, self.u_orig);
        let p_new = self.average_power(n_new, u_new);
        Ok(ConsolidationPlan {
            original_machines: self.n_orig,
            consolidated_machines: n_new,
            original_utilization: self.u_orig,
            consolidated_utilization: u_new,
            original_power_watts: p_orig,
            consolidated_power_watts: p_new,
            power_savings_watts: p_orig - p_new,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's PARSEC provisioning: four machines, 25 % average
    /// utilization, ~220 W loaded / ~90 W idle.
    fn parsec_model() -> ConsolidationModel {
        ConsolidationModel::new(4, 1.0, 0.25, 220.0, 90.0).unwrap()
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ConsolidationModel::new(0, 1.0, 0.2, 220.0, 90.0).is_err());
        assert!(ConsolidationModel::new(4, 0.0, 0.2, 220.0, 90.0).is_err());
        assert!(ConsolidationModel::new(4, 1.0, 1.2, 220.0, 90.0).is_err());
        assert!(ConsolidationModel::new(4, 1.0, 0.2, 90.0, 220.0).is_err());
        assert!(ConsolidationModel::new(4, 1.0, 0.2, 220.0, -1.0).is_err());
        assert!(parsec_model().machines_needed(0.9).is_err());
        assert!(parsec_model().try_consolidate(f64::NAN).is_err());
    }

    #[test]
    fn four_to_one_consolidation_with_4x_speedup() {
        // The paper consolidates the PARSEC benchmarks from four machines to
        // one, enabled by speedups of at least 4 within the 5 % QoS bound.
        let model = parsec_model();
        assert_eq!(model.total_work(), 4.0);
        assert_eq!(model.machines_needed(4.0).unwrap(), 1);
        let plan = model.consolidate(4.0);
        assert_eq!(plan.consolidated_machines, 1);
        assert!((plan.machine_reduction() - 0.75).abs() < 1e-12);
        // Original: 4·(0.25·220 + 0.75·90) = 490 W. Consolidated: 1·220 W.
        assert!((plan.original_power_watts - 490.0).abs() < 1e-9);
        assert!((plan.consolidated_power_watts - 220.0).abs() < 1e-9);
        assert!((plan.power_savings_watts - 270.0).abs() < 1e-9);
        assert!(plan.relative_savings() > 0.5);
        assert_eq!(plan.consolidated_utilization, 1.0);
    }

    #[test]
    fn three_to_two_consolidation_with_1_5x_speedup() {
        // swish++: three machines consolidated to two with the ~1.5x speedup
        // available at the 30 % QoS bound.
        let model = ConsolidationModel::new(3, 1.0, 0.2, 220.0, 90.0).unwrap();
        assert_eq!(model.machines_needed(1.5).unwrap(), 2);
        let plan = model.consolidate(1.5);
        assert_eq!(plan.consolidated_machines, 2);
        assert!((plan.machine_reduction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(plan.power_savings_watts > 0.0);
    }

    #[test]
    fn unit_speedup_changes_nothing() {
        let model = parsec_model();
        let plan = model.consolidate(1.0);
        assert_eq!(plan.consolidated_machines, 4);
        assert_eq!(plan.power_savings_watts, 0.0);
        assert_eq!(plan.machine_reduction(), 0.0);
        assert_eq!(plan.consolidated_utilization, plan.original_utilization);
    }

    #[test]
    fn machines_needed_rounds_up() {
        let model = parsec_model();
        // Speedup 3: 4/3 = 1.33 machines -> 2.
        assert_eq!(model.machines_needed(3.0).unwrap(), 2);
        // Speedup 8: still at least one machine.
        assert_eq!(model.machines_needed(8.0).unwrap(), 1);
    }

    #[test]
    fn required_speedup_floors_at_one() {
        assert_eq!(required_speedup(0.0, 4), 1.0);
        assert_eq!(required_speedup(2.0, 4), 1.0);
        assert_eq!(required_speedup(4.0, 1), 4.0);
        assert!((required_speedup(3.0, 2) - 1.5).abs() < 1e-12);
        assert_eq!(required_speedup(7.0, 0), 1.0);
    }

    #[test]
    fn average_power_interpolates_between_idle_and_load() {
        let model = parsec_model();
        assert_eq!(model.average_power(4, 0.0), 360.0);
        assert_eq!(model.average_power(4, 1.0), 880.0);
        assert_eq!(model.average_power(2, 0.5), 310.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Consolidation never increases machine count or power, and a larger
        /// speedup never needs more machines.
        #[test]
        fn consolidation_is_monotone(
            n_orig in 1usize..64,
            u_orig in 0.0f64..1.0,
            s_small in 1.0f64..8.0,
            s_extra in 0.0f64..8.0,
        ) {
            let model = ConsolidationModel::new(n_orig, 1.0, u_orig, 220.0, 90.0).unwrap();
            let small = model.consolidate(s_small);
            let large = model.consolidate(s_small + s_extra);
            prop_assert!(small.consolidated_machines <= n_orig);
            prop_assert!(large.consolidated_machines <= small.consolidated_machines);
            prop_assert!(small.power_savings_watts >= -1e-9);
            prop_assert!(small.consolidated_power_watts <= small.original_power_watts + 1e-9);
            prop_assert!(small.consolidated_utilization <= 1.0 + 1e-12);
        }
    }
}
