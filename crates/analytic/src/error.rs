//! Error type for the analytical models.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing analytical models with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalyticError {
    /// A power value is negative or not finite, or the ordering
    /// `idle ≤ dvfs ≤ nodvfs` is violated.
    InvalidPower {
        /// Description of the offending parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A time value is negative or not finite.
    InvalidTime {
        /// Description of the offending parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A speedup is less than 1 or not finite.
    InvalidSpeedup {
        /// The offending speedup.
        speedup: f64,
    },
    /// A utilization is outside `[0, 1]`.
    InvalidUtilization {
        /// The offending utilization.
        utilization: f64,
    },
    /// The machine count is zero.
    ZeroMachines,
}

impl fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticError::InvalidPower { parameter, value } => {
                write!(f, "power parameter `{parameter}` is invalid: {value}")
            }
            AnalyticError::InvalidTime { parameter, value } => {
                write!(f, "time parameter `{parameter}` is invalid: {value}")
            }
            AnalyticError::InvalidSpeedup { speedup } => {
                write!(f, "speedup must be at least 1, got {speedup}")
            }
            AnalyticError::InvalidUtilization { utilization } => {
                write!(f, "utilization must be in [0, 1], got {utilization}")
            }
            AnalyticError::ZeroMachines => {
                write!(f, "the original system needs at least one machine")
            }
        }
    }
}

impl Error for AnalyticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            AnalyticError::InvalidPower {
                parameter: "p_idle",
                value: -1.0,
            },
            AnalyticError::InvalidTime {
                parameter: "t1",
                value: f64::NAN,
            },
            AnalyticError::InvalidSpeedup { speedup: 0.5 },
            AnalyticError::InvalidUtilization { utilization: 2.0 },
            AnalyticError::ZeroMachines,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<AnalyticError>();
    }
}
