//! Analytical models from Section 3 of the PowerDial paper.
//!
//! Two families of closed-form models quantify what dynamic knobs buy:
//!
//! * [`dvfs`] — energy consumed by a task under DVFS with and without dynamic
//!   knobs (Equations 12–19): given the power draw in the high and low power
//!   states, the idle power, the task's execution time, and the speedup
//!   `S(QoS)` available at an acceptable QoS loss, compute the energy of the
//!   race-to-idle and DVFS strategies and the savings knobs add;
//! * [`consolidation`] — server-consolidation provisioning (Equations
//!   20–24): how many machines a knob-enabled cluster needs to serve peak
//!   load, and how much average power the consolidation saves.
//!
//! # Example
//!
//! ```
//! use powerdial_analytic::consolidation::ConsolidationModel;
//!
//! // Four machines at 25 % average utilization, consolidated with a 4x
//! // speedup available at the QoS bound.
//! let model = ConsolidationModel::new(4, 1.0, 0.25, 220.0, 90.0).unwrap();
//! let plan = model.consolidate(4.0);
//! assert_eq!(plan.consolidated_machines, 1);
//! assert!(plan.power_savings_watts > 250.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod consolidation;
pub mod dvfs;
mod error;

pub use error::AnalyticError;
