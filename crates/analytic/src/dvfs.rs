//! DVFS energy models with and without dynamic knobs (Equations 12–19).

use serde::{Deserialize, Serialize};

use crate::error::AnalyticError;

/// The task and platform parameters of Figure 3: a task that takes `t1`
/// seconds at the high power state and has `t_delay` seconds of slack before
/// its deadline, on a platform drawing `p_nodvfs` watts in the high state,
/// `p_dvfs` watts in the low state, and `p_idle` watts when idle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsScenario {
    p_nodvfs: f64,
    p_dvfs: f64,
    p_idle: f64,
    t1: f64,
    t_delay: f64,
}

/// The energy outcomes of one scenario, with and without dynamic knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsEnergyBreakdown {
    /// Energy of the better non-knob strategy (Equation 18): the minimum of
    /// running fast then idling and running slow for the full window.
    pub baseline_energy: f64,
    /// Energy of running fast then idling, without knobs.
    pub race_to_idle_energy: f64,
    /// Energy of running at the DVFS-lowered state for the full window,
    /// without knobs (Equation 12's right-hand term).
    pub dvfs_energy: f64,
    /// Energy of the knob-augmented race-to-idle strategy (Equation 14).
    pub elastic_race_to_idle_energy: f64,
    /// Energy of the knob-augmented DVFS strategy (Equation 16).
    pub elastic_dvfs_energy: f64,
    /// Energy of the better knob-augmented strategy (Equation 17).
    pub elastic_energy: f64,
    /// The savings dynamic knobs add over the best non-knob strategy
    /// (Equation 19).
    pub savings: f64,
}

impl DvfsScenario {
    /// Creates a scenario.
    ///
    /// # Errors
    ///
    /// Returns an error when a power is negative/not finite or violates
    /// `p_idle ≤ p_dvfs ≤ p_nodvfs`, or when a time is negative/not finite.
    pub fn new(
        p_nodvfs: f64,
        p_dvfs: f64,
        p_idle: f64,
        t1: f64,
        t_delay: f64,
    ) -> Result<Self, AnalyticError> {
        for (name, value) in [
            ("p_nodvfs", p_nodvfs),
            ("p_dvfs", p_dvfs),
            ("p_idle", p_idle),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(AnalyticError::InvalidPower {
                    parameter: name,
                    value,
                });
            }
        }
        if p_idle > p_dvfs || p_dvfs > p_nodvfs {
            return Err(AnalyticError::InvalidPower {
                parameter: "ordering p_idle <= p_dvfs <= p_nodvfs",
                value: p_dvfs,
            });
        }
        for (name, value) in [("t1", t1), ("t_delay", t_delay)] {
            if !value.is_finite() || value < 0.0 {
                return Err(AnalyticError::InvalidTime {
                    parameter: name,
                    value,
                });
            }
        }
        if t1 == 0.0 {
            return Err(AnalyticError::InvalidTime {
                parameter: "t1",
                value: t1,
            });
        }
        Ok(DvfsScenario {
            p_nodvfs,
            p_dvfs,
            p_idle,
            t1,
            t_delay,
        })
    }

    /// The slowdown factor the DVFS state imposes on CPU-bound work
    /// (`t2 / t1 = f_nodvfs / f_dvfs`), derived from the total window.
    pub fn t2(&self) -> f64 {
        self.t1 + self.t_delay
    }

    /// Energy of running the task fast and idling for the rest of the window
    /// (no knobs): `P_nodvfs·t1 + P_idle·t_delay`.
    pub fn race_to_idle_energy(&self) -> f64 {
        self.p_nodvfs * self.t1 + self.p_idle * self.t_delay
    }

    /// Energy of running at the DVFS-lowered state for the full window (no
    /// knobs): `P_dvfs·t2`.
    pub fn dvfs_energy(&self) -> f64 {
        self.p_dvfs * self.t2()
    }

    /// The DVFS energy savings of Equation 12 (positive when DVFS beats
    /// race-to-idle).
    pub fn dvfs_savings(&self) -> f64 {
        self.race_to_idle_energy() - self.dvfs_energy()
    }

    /// Evaluates the knob-augmented strategies of Equations 13–19 for a
    /// speedup `s` available at an acceptable QoS loss.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError::InvalidSpeedup`] when `s < 1` or not finite.
    pub fn with_knobs(&self, s: f64) -> Result<DvfsEnergyBreakdown, AnalyticError> {
        if !s.is_finite() || s < 1.0 {
            return Err(AnalyticError::InvalidSpeedup { speedup: s });
        }
        let t2 = self.t2();

        // Equations 13–14: knob-accelerated task in the high power state,
        // idling for the remainder of the window.
        let t1_prime = self.t1 / s;
        let t_delay_prime = self.t_delay + self.t1 - t1_prime;
        let e1 = self.p_nodvfs * t1_prime + self.p_idle * t_delay_prime;

        // Equations 15–16: knob-accelerated task in the DVFS-lowered state.
        let t2_prime = t2 / s;
        let t_delay_double_prime = t2 - t2_prime;
        let e2 = self.p_dvfs * t2_prime + self.p_idle * t_delay_double_prime;

        let elastic = e1.min(e2);
        let baseline = self.race_to_idle_energy().min(self.dvfs_energy());
        Ok(DvfsEnergyBreakdown {
            baseline_energy: baseline,
            race_to_idle_energy: self.race_to_idle_energy(),
            dvfs_energy: self.dvfs_energy(),
            elastic_race_to_idle_energy: e1,
            elastic_dvfs_energy: e2,
            elastic_energy: elastic,
            savings: baseline - elastic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameters roughly matching the paper's platform: 220 W loaded at
    /// 2.4 GHz, ~165 W loaded at 1.6 GHz, 90 W idle, a 60-second task with a
    /// 30-second slack window (1.5x slowdown allowed, matching the frequency
    /// ratio).
    fn server_scenario() -> DvfsScenario {
        DvfsScenario::new(220.0, 165.0, 90.0, 60.0, 30.0).unwrap()
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DvfsScenario::new(-1.0, 100.0, 50.0, 10.0, 0.0).is_err());
        assert!(DvfsScenario::new(220.0, 230.0, 90.0, 10.0, 0.0).is_err());
        assert!(DvfsScenario::new(220.0, 165.0, 170.0, 10.0, 0.0).is_err());
        assert!(DvfsScenario::new(220.0, 165.0, 90.0, 0.0, 0.0).is_err());
        assert!(DvfsScenario::new(220.0, 165.0, 90.0, 10.0, -5.0).is_err());
        assert!(server_scenario().with_knobs(0.5).is_err());
    }

    #[test]
    fn dvfs_beats_race_to_idle_on_high_idle_servers() {
        let scenario = server_scenario();
        // Race-to-idle: 220·60 + 90·30 = 15 900 J.
        assert!((scenario.race_to_idle_energy() - 15_900.0).abs() < 1e-9);
        // DVFS: 165·90 = 14 850 J.
        assert!((scenario.dvfs_energy() - 14_850.0).abs() < 1e-9);
        assert!(scenario.dvfs_savings() > 0.0);
        assert_eq!(scenario.t2(), 90.0);
    }

    #[test]
    fn knobs_add_savings_on_top_of_dvfs() {
        let scenario = server_scenario();
        let breakdown = scenario.with_knobs(2.0).unwrap();
        // E2 = 165·45 + 90·45 = 11 475 J, better than both non-knob options.
        assert!((breakdown.elastic_dvfs_energy - 11_475.0).abs() < 1e-9);
        assert!(breakdown.elastic_energy <= breakdown.baseline_energy);
        assert!(breakdown.savings > 0.0);
        assert!((breakdown.savings - (14_850.0 - 11_475.0)).abs() < 1e-9);
    }

    #[test]
    fn unit_speedup_changes_nothing() {
        let scenario = server_scenario();
        let breakdown = scenario.with_knobs(1.0).unwrap();
        assert!(
            (breakdown.elastic_race_to_idle_energy - scenario.race_to_idle_energy()).abs() < 1e-9
        );
        assert!((breakdown.elastic_dvfs_energy - scenario.dvfs_energy()).abs() < 1e-9);
        assert!(breakdown.savings.abs() < 1e-9);
    }

    #[test]
    fn zero_slack_matches_power_cap_scenario() {
        // In the power-cap scenario t_delay = 0: the knob's job is to keep
        // performance, and the energy comparison degenerates to running the
        // reduced computation in the low power state.
        let scenario = DvfsScenario::new(220.0, 165.0, 90.0, 60.0, 0.0).unwrap();
        let breakdown = scenario.with_knobs(1.5).unwrap();
        // t2' = 60/1.5 = 40 s at 165 W plus 20 s idle.
        assert!((breakdown.elastic_dvfs_energy - (165.0 * 40.0 + 90.0 * 20.0)).abs() < 1e-9);
        assert!(breakdown.savings > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Dynamic knobs never increase energy: the elastic strategy is at
        /// most the baseline for any valid speedup, and savings grow
        /// monotonically with the speedup.
        #[test]
        fn knob_savings_are_nonnegative_and_monotone(
            p_idle in 1.0f64..120.0,
            dvfs_extra in 1.0f64..80.0,
            nodvfs_extra in 1.0f64..80.0,
            t1 in 1.0f64..1000.0,
            t_delay in 0.0f64..1000.0,
            s_small in 1.0f64..4.0,
            s_extra in 0.0f64..6.0,
        ) {
            let p_dvfs = p_idle + dvfs_extra;
            let p_nodvfs = p_dvfs + nodvfs_extra;
            let scenario = DvfsScenario::new(p_nodvfs, p_dvfs, p_idle, t1, t_delay).unwrap();
            let small = scenario.with_knobs(s_small).unwrap();
            let large = scenario.with_knobs(s_small + s_extra).unwrap();
            prop_assert!(small.savings >= -1e-9);
            prop_assert!(large.savings + 1e-9 >= small.savings);
            prop_assert!(small.elastic_energy <= small.baseline_energy + 1e-9);
        }
    }
}
