//! API stand-in for `proptest` in an offline build.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], [`Just`],
//! range/tuple/`collection::vec` strategies, and
//! [`Strategy::prop_filter`]. Cases are generated from a deterministic
//! per-test seed (the hash of the test name), so failures reproduce exactly.
//!
//! Deliberate differences from the real crate:
//!
//! * **no shrinking** — a failure reports the sampled inputs as-is;
//! * a fixed case count per property: 256, or the `PROPTEST_CASES`
//!   environment variable.

use std::fmt;
use std::ops::Range;

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample an index from an empty set");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A failed test case, carrying the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only sampled values satisfying `predicate`, re-sampling up to a
    /// bounded number of times.
    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.sample(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// A uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Creates a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let choice = rng.index(self.options.len());
        self.options[choice].sample(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = rng.unit_f64() as $ty;
                let value = self.start + (self.end - self.start) * unit;
                if value >= self.end { self.start } else { value }
            }
        }
    )*};
}

impl_range_strategy_float!(f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty length range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases to run per property (`PROPTEST_CASES` overrides).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Derives a deterministic seed from a test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Declares property tests: each `fn` samples its arguments from the given
/// strategies and runs its body for [`case_count`] cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let mut rng = $crate::TestRng::from_seed($crate::seed_for(stringify!($name)));
                for case in 0..cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = result {
                        panic!(
                            "property {} failed at case {case}/{cases}: {error}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first: negating a float comparison directly trips clippy's
        // neg_cmp_op_on_partial_ord in every caller.
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn nonzero() -> impl Strategy<Value = f64> {
        prop_oneof![
            (-10.0f64..10.0).prop_filter("nonzero", |v| v.abs() > 1e-3),
            Just(5.0),
        ]
    }

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_sample_componentwise(pair in collection::vec((0.5f64..2.0, 0usize..4), 1..5)) {
            for (f, i) in pair {
                prop_assert!((0.5..2.0).contains(&f));
                prop_assert!(i < 4);
            }
        }

        #[test]
        fn oneof_and_filter_compose(v in nonzero()) {
            prop_assert!(v.abs() > 1e-3);
        }

        #[test]
        fn mut_bindings_work(mut v in collection::vec(0u32..10, 1..4)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_per_name() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
