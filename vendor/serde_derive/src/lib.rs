//! No-op stand-ins for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! forward compatibility but never actually serializes anything, so the
//! derives only need to *compile*. Each macro accepts the item (including
//! `#[serde(...)]` helper attributes) and expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let _ = input;
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let _ = input;
    TokenStream::new()
}
