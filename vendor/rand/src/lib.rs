//! API stand-in for `rand` in an offline build.
//!
//! Implements the slice of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`]/[`Rng::gen_bool`]. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid and deterministic, but
//! its stream is **not** bit-compatible with the real `StdRng` (ChaCha12).
//! All in-repo users seed explicitly and assert statistical properties, not
//! exact values.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the subset this workspace needs).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random value generation over ranges, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits scaled by 2^-53, the standard uniform-double recipe.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[start, end)`.
    fn sample_half_open<G: Rng>(start: Self, end: Self, rng: &mut G) -> Self;

    /// Samples uniformly from `[start, end]`.
    fn sample_inclusive<G: Rng>(start: Self, end: Self, rng: &mut G) -> Self;
}

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<G: Rng>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: Rng>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<G: Rng>(self, rng: &mut G) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<G: Rng>(start: Self, end: Self, rng: &mut G) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $ty
            }

            fn sample_inclusive<G: Rng>(start: Self, end: Self, rng: &mut G) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<G: Rng>(start: Self, end: Self, rng: &mut G) -> Self {
                assert!(start < end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $ty;
                let value = start + (end - start) * unit;
                // Guard against rounding up to the exclusive bound.
                if value >= end { start } else { value }
            }

            fn sample_inclusive<G: Rng>(start: Self, end: Self, rng: &mut G) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $ty;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let i = rng.gen_range(4..10);
            assert!((4..10).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((ratio - 0.25).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn negative_integer_ranges_work() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }
}
