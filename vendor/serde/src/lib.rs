//! API stand-in for `serde` in an offline build.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! Nothing in this workspace serializes at runtime; if that changes, replace
//! this stub with the real crate (or grow real trait impls here).

pub use serde_derive::{Deserialize, Serialize};
