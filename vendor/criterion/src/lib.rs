//! API stand-in for `criterion` in an offline build.
//!
//! Implements the benchmarking surface this workspace uses: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`black_box`], [`BenchmarkId`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple wall-clock harness: warm up, then sample batches and report the
//! mean and best ns/iteration to stdout.
//!
//! When invoked with `--test` (as `cargo test --benches` does), each
//! benchmark body runs exactly once so the suite doubles as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs benchmark bodies and accumulates timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
    /// Filled in by [`Bencher::iter`]: (mean, best) ns per iteration.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `routine`, storing mean and best ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((0.0, 0.0));
            return;
        }

        // Warm-up: also estimates the per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Size each sample so the whole measurement fits the budget.
        let samples = self.sample_size.max(2);
        let budget_ns = self.measurement.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / samples as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut total_ns = 0.0;
        let mut best_ns = f64::INFINITY;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample_ns = start.elapsed().as_nanos() as f64;
            total_ns += sample_ns;
            total_iters += iters_per_sample;
            best_ns = best_ns.min(sample_ns / iters_per_sample as f64);
        }
        self.result = Some((total_ns / total_iters.max(1) as f64, best_ns));
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(600),
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(_) if self.test_mode => println!("{name:<50} ok (test mode)"),
            Some((mean, best)) => {
                println!(
                    "{name:<50} mean {:>12} best {:>12}",
                    fmt_ns(mean),
                    fmt_ns(best)
                );
            }
            None => println!("{name:<50} (no measurement: bencher.iter never called)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let saved = self.criterion.sample_size;
        if let Some(samples) = self.sample_size {
            self.criterion.sample_size = samples;
        }
        self.criterion.run_one(&name, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (reporting is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_a_result() {
        let mut c = Criterion {
            test_mode: false,
            ..Criterion::default()
        }
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_millis(5))
        .sample_size(3);
        let mut x = 0u64;
        c.bench_function("spin", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &n| b.iter(|| n + 1));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
