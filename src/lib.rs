//! Workspace umbrella for the PowerDial reproduction.
//!
//! The real code lives in the `crates/` workspace members; this package
//! exists so the repository-level integration tests (`tests/`) and examples
//! (`examples/`) have a home. It simply re-exports the [`powerdial`] facade.

#![deny(missing_docs)]

pub use powerdial;
